#!/usr/bin/env bash
# Full verification gate: formatting, release build, test suite, strict
# lints. CI runs exactly this script (see .github/workflows/ci.yml), so a
# clean local `scripts/verify.sh` means a green CI run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> trace budget + counter-drift gate (repro smoke -> tps trace)"
trace_tmp="$(mktemp -d)"
trap 'rm -rf "$trace_tmp"' EXIT
cargo run -q -p tps-bench --release --bin repro -- smoke \
  --trace-out "$trace_tmp/smoke-trace.json" > /dev/null
./target/release/tps trace check "$trace_tmp/smoke-trace.json" \
  --budgets budgets.toml
./target/release/tps trace diff results/baselines/smoke-counters.json \
  "$trace_tmp/smoke-trace.json"

echo "==> chaos fault-injection gate (repro chaos -> tps trace)"
# The chaos experiment injects transient + permanent faults into the smoke
# world; the run must still complete, quarantine the casualties, and obey
# every budget rule (including the retry-accounting ones).
cargo run -q -p tps-bench --release --bin repro -- chaos \
  --trace-out "$trace_tmp/chaos-trace.json" > /dev/null
./target/release/tps trace check "$trace_tmp/chaos-trace.json" \
  --budgets budgets.toml
grep -q '"completed": true' "$trace_tmp/chaos-trace.json" \
  || { echo "chaos trace did not complete"; exit 1; }
if grep -q '"casualties": \[\]' "$trace_tmp/chaos-trace.json"; then
  echo "chaos trace recorded no casualties despite injected faults"
  exit 1
fi

echo "==> serve load-generation gate (repro loadgen -> tps trace)"
# The loadgen experiment runs the resident server in-process: responses
# must be byte-identical to one-shot runs, the cache must collapse the
# repeats, overload must shed with structured rejections, and the drained
# aggregate trace must obey every serve.* budget rule.
cargo run -q -p tps-bench --release --bin repro -- loadgen \
  --trace-out "$trace_tmp/serve-trace.json" > /dev/null
./target/release/tps trace check "$trace_tmp/serve-trace.json" \
  --budgets budgets.toml
grep -q '"completed": true' "$trace_tmp/serve-trace.json" \
  || { echo "serve trace did not complete"; exit 1; }

echo "verify: OK"
