#!/usr/bin/env bash
# Full verification gate: formatting, release build, test suite, strict
# lints. CI runs exactly this script (see .github/workflows/ci.yml), so a
# clean local `scripts/verify.sh` means a green CI run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "verify: OK"
