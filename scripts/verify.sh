#!/usr/bin/env bash
# Full verification gate: formatting, release build, test suite, strict
# lints. CI runs exactly this script (see .github/workflows/ci.yml), so a
# clean local `scripts/verify.sh` means a green CI run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> trace budget + counter-drift gate (repro smoke -> tps trace)"
trace_tmp="$(mktemp -d)"
trap 'rm -rf "$trace_tmp"' EXIT
cargo run -q -p tps-bench --release --bin repro -- smoke \
  --trace-out "$trace_tmp/smoke-trace.json" > /dev/null
./target/release/tps trace check "$trace_tmp/smoke-trace.json" \
  --budgets budgets.toml
./target/release/tps trace diff results/baselines/smoke-counters.json \
  "$trace_tmp/smoke-trace.json"

echo "==> chaos fault-injection gate (repro chaos -> tps trace)"
# The chaos experiment injects transient + permanent faults into the smoke
# world; the run must still complete, quarantine the casualties, and obey
# every budget rule (including the retry-accounting ones).
cargo run -q -p tps-bench --release --bin repro -- chaos \
  --trace-out "$trace_tmp/chaos-trace.json" > /dev/null
./target/release/tps trace check "$trace_tmp/chaos-trace.json" \
  --budgets budgets.toml
grep -q '"completed": true' "$trace_tmp/chaos-trace.json" \
  || { echo "chaos trace did not complete"; exit 1; }
if grep -q '"casualties": \[\]' "$trace_tmp/chaos-trace.json"; then
  echo "chaos trace recorded no casualties despite injected faults"
  exit 1
fi

echo "==> serve load-generation gate (repro loadgen -> tps trace)"
# The loadgen experiment runs the resident server in-process: responses
# must be byte-identical to one-shot runs, the cache must collapse the
# repeats, overload must shed with structured rejections, and the drained
# aggregate trace must obey every serve.* budget rule.
cargo run -q -p tps-bench --release --bin repro -- loadgen \
  --trace-out "$trace_tmp/serve-trace.json" > /dev/null
./target/release/tps trace check "$trace_tmp/serve-trace.json" \
  --budgets budgets.toml
grep -q '"completed": true' "$trace_tmp/serve-trace.json" \
  || { echo "serve trace did not complete"; exit 1; }

echo "==> ann indexed gate (streamed 10k world -> tps trace)"
# The streamed index-assisted offline build must complete on a 10k-model
# world without the dense O(M^2) path, obey the ann.* budget rules, and
# feed an indexed select whose trace shows the sublinear candidate fan-out.
# `--ann exact` (and no flag at all) must stay byte-identical.
./target/release/tps world --domain synthetic --models 10000 --benchmarks 12 \
  --targets 1 --seed 11 --out "$trace_tmp/ann-world.json"
./target/release/tps offline --world "$trace_tmp/ann-world.json" \
  --ann indexed --stream-batch 512 --out "$trace_tmp/ann-artifacts.json" \
  --trace-out "$trace_tmp/ann-offline-trace.json"
./target/release/tps trace check "$trace_tmp/ann-offline-trace.json" \
  --budgets budgets.toml
grep -q '"ann.index_nodes"' "$trace_tmp/ann-offline-trace.json" \
  || { echo "indexed offline trace missing ann.* counters"; exit 1; }
./target/release/tps select --world "$trace_tmp/ann-world.json" \
  --artifacts "$trace_tmp/ann-artifacts.json" --target target-0 \
  --ann indexed --trace-out "$trace_tmp/ann-select-trace.json" > /dev/null
./target/release/tps trace check "$trace_tmp/ann-select-trace.json" \
  --budgets budgets.toml
grep -q '"ann.candidates"' "$trace_tmp/ann-select-trace.json" \
  || { echo "indexed select trace missing ann.* counters"; exit 1; }
./target/release/tps world --domain cv --seed 7 --out "$trace_tmp/cv-world.json"
./target/release/tps offline --world "$trace_tmp/cv-world.json" \
  --out "$trace_tmp/cv-default.json"
./target/release/tps offline --world "$trace_tmp/cv-world.json" \
  --ann exact --out "$trace_tmp/cv-exact.json"
cmp "$trace_tmp/cv-default.json" "$trace_tmp/cv-exact.json" \
  || { echo "--ann exact diverged from the default offline build"; exit 1; }

echo "verify: OK"
