#!/usr/bin/env bash
# Full verification gate: release build, test suite, strict lints.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "verify: OK"
