#!/usr/bin/env bash
# Full verification gate: formatting, release build, test suite, strict
# lints. CI runs exactly this script (see .github/workflows/ci.yml), so a
# clean local `scripts/verify.sh` means a green CI run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> trace budget + counter-drift gate (repro smoke -> tps trace)"
# CI sets TRACE_DIR so the traces survive a mid-gate failure and get
# uploaded as artifacts; locally we default to a throwaway mktemp dir.
if [ -n "${TRACE_DIR:-}" ]; then
  trace_tmp="$TRACE_DIR"
  mkdir -p "$trace_tmp"
else
  trace_tmp="$(mktemp -d)"
  trap 'rm -rf "$trace_tmp"' EXIT
fi
cargo run -q -p tps-bench --release --bin repro -- smoke \
  --trace-out "$trace_tmp/smoke-trace.json" > /dev/null
./target/release/tps trace check "$trace_tmp/smoke-trace.json" \
  --budgets budgets.toml
./target/release/tps trace diff results/baselines/smoke-counters.json \
  "$trace_tmp/smoke-trace.json"

echo "==> chaos fault-injection gate (repro chaos -> tps trace)"
# The chaos experiment injects transient + permanent faults into the smoke
# world; the run must still complete, quarantine the casualties, and obey
# every budget rule (including the retry-accounting ones).
cargo run -q -p tps-bench --release --bin repro -- chaos \
  --trace-out "$trace_tmp/chaos-trace.json" > /dev/null
./target/release/tps trace check "$trace_tmp/chaos-trace.json" \
  --budgets budgets.toml
grep -q '"completed": true' "$trace_tmp/chaos-trace.json" \
  || { echo "chaos trace did not complete"; exit 1; }
if grep -q '"casualties": \[\]' "$trace_tmp/chaos-trace.json"; then
  echo "chaos trace recorded no casualties despite injected faults"
  exit 1
fi

echo "==> serve load-generation gate (repro loadgen -> tps trace)"
# The loadgen experiment runs the resident server in-process: responses
# must be byte-identical to one-shot runs, the cache must collapse the
# repeats, overload must shed with structured rejections, and the drained
# aggregate trace must obey every serve.* budget rule.
cargo run -q -p tps-bench --release --bin repro -- loadgen \
  --trace-out "$trace_tmp/serve-trace.json" > /dev/null
./target/release/tps trace check "$trace_tmp/serve-trace.json" \
  --budgets budgets.toml
grep -q '"completed": true' "$trace_tmp/serve-trace.json" \
  || { echo "serve trace did not complete"; exit 1; }

echo "==> ann indexed gate (streamed 10k world -> tps trace)"
# The streamed index-assisted offline build must complete on a 10k-model
# world without the dense O(M^2) path, obey the ann.* budget rules, and
# feed an indexed select whose trace shows the sublinear candidate fan-out.
# `--ann exact` (and no flag at all) must stay byte-identical.
./target/release/tps world --domain synthetic --models 10000 --benchmarks 12 \
  --targets 1 --seed 11 --out "$trace_tmp/ann-world.json"
./target/release/tps offline --world "$trace_tmp/ann-world.json" \
  --ann indexed --stream-batch 512 --out "$trace_tmp/ann-artifacts.json" \
  --trace-out "$trace_tmp/ann-offline-trace.json"
./target/release/tps trace check "$trace_tmp/ann-offline-trace.json" \
  --budgets budgets.toml
grep -q '"ann.index_nodes"' "$trace_tmp/ann-offline-trace.json" \
  || { echo "indexed offline trace missing ann.* counters"; exit 1; }
./target/release/tps select --world "$trace_tmp/ann-world.json" \
  --artifacts "$trace_tmp/ann-artifacts.json" --target target-0 \
  --ann indexed --trace-out "$trace_tmp/ann-select-trace.json" > /dev/null
./target/release/tps trace check "$trace_tmp/ann-select-trace.json" \
  --budgets budgets.toml
grep -q '"ann.candidates"' "$trace_tmp/ann-select-trace.json" \
  || { echo "indexed select trace missing ann.* counters"; exit 1; }
./target/release/tps world --domain cv --seed 7 --out "$trace_tmp/cv-world.json"
./target/release/tps offline --world "$trace_tmp/cv-world.json" \
  --out "$trace_tmp/cv-default.json"
./target/release/tps offline --world "$trace_tmp/cv-world.json" \
  --ann exact --out "$trace_tmp/cv-exact.json"
cmp "$trace_tmp/cv-default.json" "$trace_tmp/cv-exact.json" \
  || { echo "--ann exact diverged from the default offline build"; exit 1; }

echo "==> live-zoo generation-parity gate (tps update / store -> cmp)"
# The determinism proof as a shell gate, mirroring CI's store-smoke job:
# commit a base generation, apply an incremental churn stream with `tps
# update`, commit the delta generation, and require (a) a non-empty store
# diff, (b) the incrementally maintained artifacts to cmp byte-identical
# to a from-scratch rebuild of the mutated world, (c) rollback to restore
# the original bytes, and (d) an export/import round-trip to reproduce
# the blobs exactly.
store_dir="$trace_tmp/gen-store"
./target/release/tps world --domain synthetic --models 16 --benchmarks 8 \
  --targets 2 --seed 5 --out "$trace_tmp/live-world.json"
./target/release/tps offline --world "$trace_tmp/live-world.json" \
  --ann indexed --threshold 0.05 --out "$trace_tmp/live-artifacts.json"
cp "$trace_tmp/live-world.json" "$trace_tmp/world-v1.json"
cp "$trace_tmp/live-artifacts.json" "$trace_tmp/artifacts-v1.json"
./target/release/tps store commit --store "$store_dir" --note base \
  --world "$trace_tmp/live-world.json" \
  --artifacts "$trace_tmp/live-artifacts.json" > /dev/null
./target/release/tps update --world "$trace_tmp/live-world.json" \
  --artifacts "$trace_tmp/live-artifacts.json" --ops 6 --seed 9 \
  --ann indexed --threshold 0.05 \
  --trace-out "$trace_tmp/update-trace.json" > /dev/null
./target/release/tps trace check "$trace_tmp/update-trace.json" \
  --budgets budgets.toml
grep -q '"incremental.updates"' "$trace_tmp/update-trace.json" \
  || { echo "update trace missing incremental.* counters"; exit 1; }
./target/release/tps store commit --store "$store_dir" --note churn \
  --world "$trace_tmp/live-world.json" \
  --artifacts "$trace_tmp/live-artifacts.json" > /dev/null
./target/release/tps store diff 1 2 --store "$store_dir" \
  | grep -q 'entr(ies) differ' \
  || { echo "store diff between generations is empty"; exit 1; }
./target/release/tps offline --world "$trace_tmp/live-world.json" \
  --ann indexed --threshold 0.05 --out "$trace_tmp/scratch-artifacts.json"
cmp "$trace_tmp/scratch-artifacts.json" "$trace_tmp/live-artifacts.json" \
  || { echo "incremental artifacts diverged from a from-scratch rebuild"; exit 1; }
./target/release/tps store rollback 1 --store "$store_dir" > /dev/null
./target/release/tps store cat 1 world --store "$store_dir" \
  --out "$trace_tmp/world-restored.json"
./target/release/tps store cat 1 artifacts --store "$store_dir" \
  --out "$trace_tmp/artifacts-restored.json"
cmp "$trace_tmp/world-restored.json" "$trace_tmp/world-v1.json" \
  || { echo "rollback did not restore the original world bytes"; exit 1; }
cmp "$trace_tmp/artifacts-restored.json" "$trace_tmp/artifacts-v1.json" \
  || { echo "rollback did not restore the original artifact bytes"; exit 1; }
./target/release/tps store export 1 --store "$store_dir" \
  --out "$trace_tmp/gen1.bundle" > /dev/null
./target/release/tps store import "$trace_tmp/gen1.bundle" \
  --store "$trace_tmp/gen-store-copy" > /dev/null
./target/release/tps store cat 1 artifacts --store "$trace_tmp/gen-store-copy" \
  --out "$trace_tmp/artifacts-imported.json"
cmp "$trace_tmp/artifacts-imported.json" "$trace_tmp/artifacts-v1.json" \
  || { echo "export/import did not round-trip the artifact bytes"; exit 1; }
./target/release/tps fsck --store "$store_dir" > /dev/null

echo "==> live observability gate (tps serve -> metrics scrape / top / access log)"
# Mirrors CI's obs-smoke job: a real background server is scraped twice
# without draining; the deterministic counter lines of the two expositions
# must be byte-identical (only wall-clock histograms and point-in-time
# gauges may move), `tps top --once` must emit a machine-readable line,
# and the structured access log + drain trace must close their accounting.
./target/release/tps serve --world "$trace_tmp/cv-world.json" \
  --artifacts "$trace_tmp/cv-default.json" \
  --ready-file "$trace_tmp/obs-ready" \
  --access-log "$trace_tmp/obs-access.jsonl" --slo-ms 60000 \
  --trace-out "$trace_tmp/obs-trace.json" > /dev/null &
obs_pid=$!
for _ in $(seq 1 100); do
  [ -s "$trace_tmp/obs-ready" ] && break
  sleep 0.1
done
obs_addr="$(cat "$trace_tmp/obs-ready")"
./target/release/tps client --addr "$obs_addr" \
  --request '{"id":1,"target":"beans"}' > /dev/null
./target/release/tps client --addr "$obs_addr" \
  --request '{"id":1,"target":"beans"}' > /dev/null
./target/release/tps client --addr "$obs_addr" --metrics true \
  > "$trace_tmp/obs-scrape-1.txt"
./target/release/tps client --addr "$obs_addr" --metrics true \
  > "$trace_tmp/obs-scrape-2.txt"
grep '_total ' "$trace_tmp/obs-scrape-1.txt" > "$trace_tmp/obs-counters-1.txt"
grep '_total ' "$trace_tmp/obs-scrape-2.txt" > "$trace_tmp/obs-counters-2.txt"
cmp "$trace_tmp/obs-counters-1.txt" "$trace_tmp/obs-counters-2.txt" \
  || { echo "live scrape counter lines drifted between identical scrapes"; exit 1; }
grep -q 'tps_serve_requests_total 2' "$trace_tmp/obs-scrape-1.txt" \
  || { echo "scrape missing the request counter"; exit 1; }
grep -q '# EOF' "$trace_tmp/obs-scrape-1.txt" \
  || { echo "scrape not terminated with # EOF"; exit 1; }
./target/release/tps top --addr "$obs_addr" --once true \
  | grep -q '"requests":2' \
  || { echo "tps top --once disagrees with the request history"; exit 1; }
./target/release/tps client --addr "$obs_addr" --shutdown true > /dev/null
wait "$obs_pid"
[ "$(wc -l < "$trace_tmp/obs-access.jsonl")" = "2" ] \
  || { echo "access log does not carry one record per request"; exit 1; }
./target/release/tps trace check "$trace_tmp/obs-trace.json" \
  --budgets budgets.toml

echo "==> chaos-serve gate (repro chaos-serve + real crash-recovery drill)"
# Mirrors CI's chaos-serve-smoke job. Part 1: the in-process chaos
# experiment — commit crash matrix, scheduled connection faults with
# byte-identical retries, reload refusal under fire — whose drain trace
# must reconcile injected vs observed counters under the chaos budget
# rules (serve-conn-errors-accounted / serve-malformed-accounted /
# store-recovery-terminal).
cargo run -q -p tps-bench --release --bin repro -- chaos-serve \
  --trace-out "$trace_tmp/chaos-serve-trace.json" > /dev/null
./target/release/tps trace check "$trace_tmp/chaos-serve-trace.json" \
  --budgets budgets.toml
grep -q '"serve.injected_conn_faults"' "$trace_tmp/chaos-serve-trace.json" \
  || { echo "chaos-serve trace missing injected-fault counters"; exit 1; }

# Part 2: REAL process deaths, not in-process error returns. An armed
# TPS_STORE_CRASH aborts `tps store commit` at a named crash point; the
# next open must recover to exactly the parent (crash before the
# generation record lands) or the child (crash once the commit is fully
# recorded), and end fsck-clean either way.
crash_store="$trace_tmp/crash-store"
./target/release/tps store commit --store "$crash_store" --note base \
  --world "$trace_tmp/world-v1.json" \
  --artifacts "$trace_tmp/artifacts-v1.json" > /dev/null
set +e
TPS_STORE_CRASH="gen 0 before" ./target/release/tps store commit \
  --store "$crash_store" --note doomed \
  --world "$trace_tmp/live-world.json" \
  --artifacts "$trace_tmp/live-artifacts.json" > /dev/null 2>&1
crash_rc=$?
set -e
[ "$crash_rc" -ne 0 ] || { echo "armed crash did not abort the commit"; exit 1; }
./target/release/tps fsck --store "$crash_store" \
  | grep -q 'recovered 1 interrupted commit' \
  || { echo "reopen after pre-gen crash did not recover the journal"; exit 1; }
./target/release/tps store log --store "$crash_store" \
  | grep -q 'generation 1 (head)' \
  || { echo "pre-gen crash did not roll back to the parent"; exit 1; }
set +e
TPS_STORE_CRASH="clear 0 before" ./target/release/tps store commit \
  --store "$crash_store" --note survives \
  --world "$trace_tmp/live-world.json" \
  --artifacts "$trace_tmp/live-artifacts.json" > /dev/null 2>&1
crash_rc=$?
set -e
[ "$crash_rc" -ne 0 ] || { echo "armed crash did not abort the commit"; exit 1; }
./target/release/tps fsck --store "$crash_store" \
  | grep -q 'recovered 1 interrupted commit' \
  || { echo "reopen after post-head crash did not recover the journal"; exit 1; }
./target/release/tps store log --store "$crash_store" \
  | grep -q 'generation 2 (head)' \
  || { echo "post-head crash did not roll forward to the child"; exit 1; }
./target/release/tps fsck --store "$crash_store" > /dev/null

# fsck --repair quarantines a deliberately corrupted blob and leaves a
# store plain fsck accepts again.
repair_store="$trace_tmp/repair-store"
cp -r "$crash_store" "$repair_store"
victim="$(ls -S "$repair_store"/objects/blob-*.rec | head -1)"
printf '\xff' | dd of="$victim" bs=1 \
  seek=$(( $(stat -c %s "$victim") - 1 )) conv=notrunc status=none
./target/release/tps fsck --store "$repair_store" > /dev/null 2>&1 \
  && { echo "fsck accepted a corrupted blob"; exit 1; }
./target/release/tps fsck --store "$repair_store" --repair true \
  | grep -q 'quarantined' \
  || { echo "fsck --repair did not quarantine the corrupt blob"; exit 1; }
./target/release/tps fsck --store "$repair_store" > /dev/null

# Part 3: kill -9 a live server mid-request. The client must fail fast
# (no hang, no fabricated response), and a fresh server must come up and
# answer a retried client afterwards.
./target/release/tps serve --world "$trace_tmp/cv-world.json" \
  --artifacts "$trace_tmp/cv-default.json" \
  --ready-file "$trace_tmp/chaos-ready-1" > /dev/null 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
  [ -s "$trace_tmp/chaos-ready-1" ] && break
  sleep 0.1
done
chaos_addr="$(cat "$trace_tmp/chaos-ready-1")"
./target/release/tps client --addr "$chaos_addr" \
  --request '{"id":9,"target":"beans","hold_ms":3000}' > /dev/null 2>&1 &
client_pid=$!
sleep 0.4
kill -9 "$serve_pid"
set +e
wait "$client_pid"
client_rc=$?
wait "$serve_pid" 2>/dev/null
set -e
[ "$client_rc" -ne 0 ] \
  || { echo "client reported success from a kill -9'd server"; exit 1; }
./target/release/tps serve --world "$trace_tmp/cv-world.json" \
  --artifacts "$trace_tmp/cv-default.json" \
  --ready-file "$trace_tmp/chaos-ready-2" > /dev/null &
serve2_pid=$!
for _ in $(seq 1 100); do
  [ -s "$trace_tmp/chaos-ready-2" ] && break
  sleep 0.1
done
chaos_addr2="$(cat "$trace_tmp/chaos-ready-2")"
./target/release/tps client --addr "$chaos_addr2" --retries 2 \
  --retry-backoff-ms 100 --timeout-ms 5000 \
  --request '{"id":10,"target":"beans"}' \
  | grep -q '"status":"ok"' \
  || { echo "restarted server did not answer a retried client"; exit 1; }
./target/release/tps client --addr "$chaos_addr2" --shutdown true > /dev/null
wait "$serve2_pid"

echo "==> sharded scatter/gather gate (tps serve --shards / tps loadgen)"
# Mirrors CI's shard-smoke job: a real sharded+batched background server
# must answer the same request set byte-identically to a plain one, the
# open-loop generator must close its accounting identity against it, and
# the drained trace must carry the scatter/batch counters and pass the
# batching budget rules.
printf '%s\n' \
  '{"id":1,"target":"beans"}' \
  '{"id":2,"target":"beans","top_k":6}' \
  '{"id":3,"target":"beans","top_k":8}' \
  '{"id":4,"target":"beans","top_k":6}' > "$trace_tmp/shard-requests.jsonl"
./target/release/tps serve --world "$trace_tmp/cv-world.json" \
  --artifacts "$trace_tmp/cv-default.json" \
  --ready-file "$trace_tmp/shard-ready-1" > /dev/null &
shard1_pid=$!
./target/release/tps serve --world "$trace_tmp/cv-world.json" \
  --artifacts "$trace_tmp/cv-default.json" --shards 4 --batch-window-ticks 1 \
  --ready-file "$trace_tmp/shard-ready-4" \
  --trace-out "$trace_tmp/shard-trace.json" > /dev/null &
shard4_pid=$!
for _ in $(seq 1 100); do
  [ -s "$trace_tmp/shard-ready-1" ] && [ -s "$trace_tmp/shard-ready-4" ] && break
  sleep 0.1
done
shard1_addr="$(cat "$trace_tmp/shard-ready-1")"
shard4_addr="$(cat "$trace_tmp/shard-ready-4")"
./target/release/tps client --addr "$shard1_addr" \
  --file "$trace_tmp/shard-requests.jsonl" > "$trace_tmp/shard-responses-1.txt"
./target/release/tps client --addr "$shard4_addr" \
  --file "$trace_tmp/shard-requests.jsonl" > "$trace_tmp/shard-responses-4.txt"
cmp "$trace_tmp/shard-responses-1.txt" "$trace_tmp/shard-responses-4.txt" \
  || { echo "--shards 4 responses diverged from the unsharded server"; exit 1; }
./target/release/tps loadgen --addr "$shard4_addr" --targets beans \
  --requests 200 --interval-us 500 --conns 4 --seed 3 --format json \
  > "$trace_tmp/shard-loadgen.json"
grep -q '"requests":200' "$trace_tmp/shard-loadgen.json" \
  || { echo "loadgen did not account for every request"; exit 1; }
grep -q '"errors":0' "$trace_tmp/shard-loadgen.json" \
  || { echo "loadgen saw severed connections"; exit 1; }
./target/release/tps client --addr "$shard1_addr" --shutdown true > /dev/null
./target/release/tps client --addr "$shard4_addr" --shutdown true > /dev/null
wait "$shard1_pid"
wait "$shard4_pid"
./target/release/tps trace check "$trace_tmp/shard-trace.json" \
  --budgets budgets.toml
grep -q '"serve.sharded_requests"' "$trace_tmp/shard-trace.json" \
  || { echo "sharded drain trace missing scatter counters"; exit 1; }
grep -q '"serve.batch_calls"' "$trace_tmp/shard-trace.json" \
  || { echo "sharded drain trace missing batching counters"; exit 1; }

echo "verify: OK"
