//! Chaos-layer integration tests: the fault-injection wrappers must be
//! invisible when no fault fires, and a permanent mid-run fault must
//! degrade the pipeline exactly as if the dead model had never entered it.

use proptest::prelude::*;
use std::sync::Arc;
use tps_bench::WorldBundle;
use tps_core::fault::{FaultKind, FaultPlan, FaultSite, FaultSpec, FaultyOracle, FaultyTrainer};
use tps_core::ids::ModelId;
use tps_core::parallel::ParallelConfig;
use tps_core::pipeline::{two_phase_select_traced, PipelineConfig, PipelineOutcome};
use tps_core::select::halving::successive_halving;
use tps_core::select::FilterReason;
use tps_core::telemetry::{analysis, Telemetry, TraceReport};
use tps_zoo::{SyntheticConfig, World, ZooOracle, ZooTrainer};

/// One traced pipeline run, optionally behind the fault wrappers.
fn run(
    bundle: &WorldBundle,
    plan: Option<&FaultPlan>,
    threads: usize,
) -> (PipelineOutcome, TraceReport) {
    let (tel, sink) = Telemetry::recording();
    let config = PipelineConfig {
        total_stages: bundle.world.stages,
        parallel: ParallelConfig::with_threads(threads),
        ..Default::default()
    };
    let oracle = ZooOracle::new(&bundle.world, 0).unwrap();
    let trainer = ZooTrainer::new(&bundle.world, 0)
        .unwrap()
        .with_telemetry(tel.clone());
    let out = match plan {
        None => {
            let mut trainer = trainer;
            two_phase_select_traced(&bundle.artifacts, &oracle, &mut trainer, &config, &tel)
        }
        Some(p) => {
            let shared = Arc::new(p.clone());
            let oracle = FaultyOracle::with_shared_plan(oracle, shared.clone());
            let mut trainer = FaultyTrainer::with_shared_plan(trainer, shared);
            two_phase_select_traced(&bundle.artifacts, &oracle, &mut trainer, &config, &tel)
        }
    }
    .unwrap();
    (out, sink.report())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// An empty fault plan is transparent: for any world seed and for both
    /// serial and parallel execution, the wrapped run is bit-identical to
    /// the unwrapped one — same outcome (winner, ledger, counters) and the
    /// same deterministic trace payload, with no casualties.
    #[test]
    fn empty_fault_plan_is_transparent(seed in 0u64..1_000) {
        let world = World::synthetic(&SyntheticConfig {
            seed,
            n_families: 3,
            family_size: (2, 3),
            n_singletons: 4,
            n_benchmarks: 8,
            n_targets: 1,
            stages: 4,
        });
        let bundle = WorldBundle::from_world(world);
        for threads in [1, 4] {
            let (base_out, base_trace) = run(&bundle, None, threads);
            let (out, trace) = run(&bundle, Some(&FaultPlan::empty()), threads);
            prop_assert_eq!(&out, &base_out, "outcome drifted (threads={})", threads);
            let drift = analysis::diff(&base_trace, &trace, 0.0);
            prop_assert!(
                drift.is_clean(),
                "trace drifted (threads={}):\n{}",
                threads,
                analysis::render_diff(&drift)
            );
            prop_assert!(trace.casualties.is_empty());
        }
    }
}

/// A permanent training fault mid-halving quarantines the model and leaves
/// the rest of the run exactly as if the casualty had never been in the
/// pool: same winner, picked at the same test accuracy.
#[test]
fn mid_halving_permanent_fault_matches_dropping_the_model_upfront() {
    let world = World::cv(5);
    let stages = 4;
    let pool: Vec<ModelId> = (0..12).map(ModelId::from).collect();
    let mut clean = ZooTrainer::new(&world, 0).unwrap();
    let clean_out = successive_halving(&mut clean, &pool, stages).unwrap();

    // Kill a model that reached the stage-2 pool but is not the winner. A
    // fault-free stage is one clean batch, so every stage-2 survivor sits
    // at attempt index 2 when that stage's batch runs.
    let victim = *clean_out.pool_history[2]
        .iter()
        .find(|&&m| m != clean_out.winner)
        .expect("stage-2 pool holds more than the winner");
    let plan = FaultPlan::new(vec![FaultSpec {
        site: FaultSite::Advance,
        model: victim,
        attempt: 2,
        kind: FaultKind::Permanent,
    }]);
    let mut faulted = FaultyTrainer::new(ZooTrainer::new(&world, 0).unwrap(), plan);
    let chaos_out = successive_halving(&mut faulted, &pool, stages).unwrap();

    assert_eq!(chaos_out.casualties.len(), 1);
    assert_eq!(chaos_out.casualties[0].model, victim);
    assert_eq!(chaos_out.casualties[0].stage, "sh.stage2");
    assert!(chaos_out
        .events
        .iter()
        .any(|e| e.model == victim && e.stage == 2 && e.reason == FilterReason::Quarantined));

    let without: Vec<ModelId> = pool.iter().copied().filter(|&m| m != victim).collect();
    let mut reference = ZooTrainer::new(&world, 0).unwrap();
    let reference_out = successive_halving(&mut reference, &without, stages).unwrap();
    assert_eq!(chaos_out.winner, reference_out.winner);
    assert_eq!(chaos_out.winner_test, reference_out.winner_test);
    assert_eq!(chaos_out.winner, clean_out.winner);
}
