//! The framework running on the **real** neural-network substrate: every
//! accuracy below comes from actual SGD training, every LEEP score from
//! actual soft-max outputs.

use tps_core::ids::ModelId;
use tps_core::pipeline::{two_phase_select, OfflineArtifacts, OfflineConfig, PipelineConfig};
use tps_core::proxy::leep::leep;
use tps_core::recall::RecallConfig;
use tps_core::traits::ProxyOracle;
use tps_core::trend::TrendConfig;
use tps_nn::{RealZoo, RealZooConfig};

fn test_zoo(seed: u64) -> RealZoo {
    RealZoo::generate(&RealZooConfig {
        seed,
        n_families: 4,
        family_size: 3,
        n_singletons: 2,
        n_benchmarks: 6,
        n_targets: 2,
        stages: 3,
        pretrain_epochs: 12,
        n_train_per_class: 25,
        n_eval_per_class: 15,
        ..Default::default()
    })
}

fn artifacts_for(zoo: &RealZoo) -> OfflineArtifacts {
    let (matrix, curves) = zoo.build_offline().expect("offline");
    OfflineArtifacts::build(
        matrix,
        &curves,
        &OfflineConfig {
            similarity_top_k: 3,
            trend: TrendConfig {
                n_trends: 3,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("artifacts")
}

#[test]
fn full_pipeline_runs_on_real_training() {
    let zoo = test_zoo(23);
    let artifacts = artifacts_for(&zoo);
    let oracle = zoo.oracle(0).expect("target");
    let mut trainer = zoo.trainer(0).expect("target");
    let outcome = two_phase_select(
        &artifacts,
        &oracle,
        &mut trainer,
        &PipelineConfig {
            recall: RecallConfig {
                top_k: 6,
                ..Default::default()
            },
            total_stages: zoo.config.stages,
            ..Default::default()
        },
    )
    .expect("pipeline");

    // The pipeline must spend less than brute force would.
    let bf = (zoo.n_models() * zoo.config.stages) as f64;
    assert!(outcome.ledger.total() < bf);
    // The selected model's real fine-tuned accuracy is competitive: within
    // a modest margin of the true optimum.
    let best = (0..zoo.n_models())
        .map(|m| zoo.target_accuracy(ModelId::from(m), 0))
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        outcome.selection.winner_test >= best - 0.15,
        "selected {:.3} vs best {:.3}",
        outcome.selection.winner_test,
        best
    );
}

#[test]
fn real_leep_correlates_with_real_fine_tuning() {
    // Across both targets and two zoos, LEEP computed from genuine logits
    // must rank models better than chance: positive rank correlation with
    // the actual fine-tuning outcome in aggregate.
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for seed in [23, 51] {
        let zoo = test_zoo(seed);
        for target in 0..zoo.targets.len() {
            let oracle = zoo.oracle(target).expect("target");
            let labels = oracle.target_labels().to_vec();
            let nl = oracle.n_target_labels();
            let scores: Vec<f64> = (0..zoo.n_models())
                .map(|m| {
                    let p = oracle.predictions(ModelId::from(m)).expect("model");
                    leep(&p, &labels, nl).expect("valid predictions")
                })
                .collect();
            let truth: Vec<f64> = (0..zoo.n_models())
                .map(|m| zoo.target_accuracy(ModelId::from(m), target))
                .collect();
            for i in 0..scores.len() {
                for j in (i + 1)..scores.len() {
                    let s = (scores[i] - scores[j]).signum();
                    let t = (truth[i] - truth[j]).signum();
                    if s * t > 0.0 {
                        concordant += 1;
                    } else if s * t < 0.0 {
                        discordant += 1;
                    }
                }
            }
        }
    }
    assert!(
        concordant > discordant,
        "LEEP vs truth: {concordant} concordant vs {discordant} discordant pairs"
    );
}

#[test]
fn offline_matrix_reflects_task_relatedness() {
    let zoo = test_zoo(23);
    let (matrix, _) = zoo.build_offline().expect("offline");
    // Family f's upstream task strides prototypes 3f..3f+2; benchmark b
    // covers 3b+1..3b+3 — family 0 overlaps bench 0 heavily. Its members
    // should beat the average on that benchmark.
    let bench0 = tps_core::ids::DatasetId(0);
    let family0_mean = (0..3)
        .map(|m| matrix.accuracy(bench0, ModelId::from(m)))
        .sum::<f64>()
        / 3.0;
    let all_mean = (0..zoo.n_models())
        .map(|m| matrix.accuracy(bench0, ModelId::from(m)))
        .sum::<f64>()
        / zoo.n_models() as f64;
    assert!(
        family0_mean >= all_mean,
        "family0 {family0_mean:.3} vs repository {all_mean:.3} on bench-0"
    );
}

#[test]
fn trainer_and_simulator_share_the_selection_interface() {
    // The same selector code must run unchanged over both substrates; this
    // is a compile-time property mostly, but exercise it at runtime too.
    use tps_core::select::halving::successive_halving;

    let zoo = test_zoo(23);
    let pool: Vec<ModelId> = (0..zoo.n_models()).map(ModelId::from).collect();
    let mut real = zoo.trainer(1).expect("target");
    let real_out = successive_halving(&mut real, &pool, zoo.config.stages).expect("real SH");

    let world = tps_zoo::World::cv(23);
    let sim_pool: Vec<ModelId> = (0..world.n_models()).map(ModelId::from).collect();
    let mut sim = tps_zoo::ZooTrainer::new(&world, 0).expect("target");
    let sim_out = successive_halving(&mut sim, &sim_pool, world.stages).expect("sim SH");

    assert!((0.0..=1.0).contains(&real_out.winner_test));
    assert!((0.0..=1.0).contains(&sim_out.winner_test));
}
