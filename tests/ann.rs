//! Property tests for the ANN layer (ISSUE 6 satellite): indexed search
//! must agree with the exhaustive scan — bit-identically when the beam
//! covers the whole index, and with recall@k ≥ 0.95 at the default beam —
//! the index construction must be thread-count invariant, and the
//! `AnnMode::Exact` knob must leave the legacy recall path byte-identical.

use proptest::prelude::*;
use std::collections::HashSet;
use tps_core::ann::{AnnConfig, AnnIndex, AnnMode};
use tps_core::pipeline::{ClusterMethod, OfflineArtifacts, OfflineConfig};
use tps_core::recall::{coarse_recall_ann_traced, coarse_recall_par, RecallConfig};
use tps_core::telemetry::Telemetry;
use tps_zoo::{SyntheticConfig, World};

fn indexed_config() -> AnnConfig {
    AnnConfig {
        mode: AnnMode::Indexed,
        ..Default::default()
    }
}

/// Strategy: a batch of model performance vectors (accuracies in `[0, 1]`),
/// `n` models over `d` shared benchmark datasets.
fn vector_batch(
    models: std::ops::Range<usize>,
    dims: std::ops::Range<usize>,
) -> impl Strategy<Value = Vec<Vec<f64>>> {
    (models, dims)
        .prop_flat_map(|(n, d)| prop::collection::vec(prop::collection::vec(0.0f64..=1.0, d), n))
}

/// A clustered world: family members are near-duplicates of the family
/// anchor, so the true kNN structure has exploitable locality (the regime
/// the index is built for — uniform noise has none).
fn clustered_vectors(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let n_anchors = (n / 8).max(1);
    let anchors: Vec<Vec<f64>> = (0..n_anchors)
        .map(|_| (0..d).map(|_| next()).collect())
        .collect();
    (0..n)
        .map(|m| {
            let a = &anchors[m % n_anchors];
            a.iter().map(|&x| (x + 0.01 * next()).min(1.0)).collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With `ef_search >= n` the beam holds every node, so the graph walk
    /// degenerates to an exhaustive scan: results must be bit-identical to
    /// `exhaustive_top_k` — same ids, same order, same float distances.
    #[test]
    fn full_beam_search_is_bitwise_exhaustive(
        vectors in vector_batch(4..96, 2..8),
        k in 1usize..12,
    ) {
        let n = vectors.len();
        let config = indexed_config();
        let index = AnnIndex::build(vectors.clone(), 5, &config).unwrap();
        for q in vectors.iter().take(16) {
            let approx = index.search(q, k, n.max(config.ef_search));
            let exact = index.exhaustive_top_k(q, k);
            prop_assert_eq!(&approx, &exact);
        }
    }

    /// The level stream is keyed on insertion order, not thread count, and
    /// insertion itself is serial: the same vectors give the same graph no
    /// matter how `knn_lists` parallelises its queries.
    #[test]
    fn construction_and_knn_are_thread_count_invariant(
        vectors in vector_batch(4..96, 2..8),
    ) {
        let config = indexed_config();
        let a = AnnIndex::build(vectors.clone(), 5, &config).unwrap();
        let b = AnnIndex::build(vectors, 5, &config).unwrap();
        prop_assert_eq!(&a, &b);
        let serial = a.knn_lists(config.k, config.ef_search, 1);
        let par = a.knn_lists(config.k, config.ef_search, 4);
        prop_assert_eq!(serial, par);
    }

    /// `AnnMode::Exact` must delegate verbatim: the ANN-aware recall entry
    /// point returns the same outcome object as the legacy parallel path,
    /// down to every float.
    #[test]
    fn exact_mode_recall_is_byte_identical_to_legacy(seed in 0u64..10_000) {
        let world = World::synthetic(&SyntheticConfig {
            seed,
            n_families: 4,
            family_size: (2, 4),
            n_singletons: 4,
            n_benchmarks: 6,
            n_targets: 1,
            stages: 4,
        });
        let (matrix, curves) = world.build_offline().unwrap();
        let artifacts =
            OfflineArtifacts::build(matrix, &curves, &OfflineConfig::default()).unwrap();
        let recall = RecallConfig::default();
        let proxy = |m: tps_core::ids::ModelId| Ok((m.index() as f64 * 0.37).sin().abs());
        let legacy = coarse_recall_par(
            &artifacts.matrix,
            &artifacts.clustering,
            &artifacts.similarity,
            &recall,
            2,
            proxy,
        )
        .unwrap();
        let exact = coarse_recall_ann_traced(
            &artifacts.matrix,
            &artifacts.clustering,
            &artifacts.similarity,
            &recall,
            &AnnConfig::default(),
            None,
            2,
            proxy,
            &Telemetry::disabled(),
        )
        .unwrap();
        prop_assert_eq!(&legacy, &exact);
        prop_assert_eq!(
            serde_json::to_string(&legacy).unwrap(),
            serde_json::to_string(&exact).unwrap()
        );
    }
}

/// Average recall@k of the default-beam search against the exhaustive
/// top-k over every indexed vector used as its own query.
fn mean_recall_at_k(vectors: &[Vec<f64>], k: usize) -> f64 {
    let config = indexed_config();
    let index = AnnIndex::build(vectors.to_vec(), 5, &config).unwrap();
    let mut hits = 0usize;
    let mut total = 0usize;
    for q in vectors {
        let exact: HashSet<u32> = index
            .exhaustive_top_k(q, k)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        let approx = index.search(q, k, config.ef_search);
        total += exact.len();
        hits += approx.iter().filter(|(id, _)| exact.contains(id)).count();
    }
    hits as f64 / total as f64
}

/// The ISSUE acceptance bar: on worlds up to M = 512 the indexed search at
/// the default beam width keeps recall@k ≥ 0.95 against the exhaustive
/// scan. Checked on clustered worlds (the model-zoo regime) across sizes
/// and seeds rather than proptest-uniform noise, where "nearest" is
/// ill-conditioned and no graph index can do better than chance.
#[test]
fn default_beam_recall_at_k_meets_bar() {
    for &(n, d) in &[(64, 4), (219, 6), (512, 8)] {
        for seed in 1..=3u64 {
            let vectors = clustered_vectors(n, d, seed);
            let recall = mean_recall_at_k(&vectors, 8);
            assert!(
                recall >= 0.95,
                "recall@8 = {recall:.4} < 0.95 at n={n} d={d} seed={seed}"
            );
        }
    }
}

/// Indexed offline builds stay exact on the derived clustering when the
/// kNN edge set covers the threshold graph — spot-checked here by
/// comparing cluster *counts* on a family-structured world, where the
/// indexed kNN-threshold components and the dense hierarchical cut agree.
#[test]
fn indexed_offline_build_clusters_family_world() {
    let world = World::synthetic(&SyntheticConfig {
        seed: 29,
        n_families: 6,
        family_size: (3, 5),
        n_singletons: 6,
        n_benchmarks: 8,
        n_targets: 1,
        stages: 4,
    });
    let (matrix, curves) = world.build_offline().unwrap();
    let exact =
        OfflineArtifacts::build(matrix.clone(), &curves, &OfflineConfig::default()).unwrap();
    let indexed = OfflineArtifacts::build(
        matrix,
        &curves,
        &OfflineConfig {
            cluster: ClusterMethod::HierarchicalThreshold(0.05),
            ann: indexed_config(),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(indexed.ann.is_some());
    assert!(exact.ann.is_none());
    // Same repository, comparable granularity: the indexed clustering must
    // find real structure (more than one cluster, fewer than one per model).
    let k = indexed.clustering.n_clusters();
    assert!(k > 1 && k < indexed.matrix.n_models());
}
