//! Service-style integration: offline artifacts are built once, persisted
//! through `tps-store`, then reloaded in a "fresh process" to serve online
//! selection queries — the §VII data-management-system workflow end to end.

use std::fs;
use std::path::PathBuf;
use tps_core::pipeline::{two_phase_select, OfflineArtifacts, OfflineConfig, PipelineConfig};
use tps_store::{ArtifactKind, Store};
use tps_zoo::{World, ZooOracle, ZooTrainer};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tps-service-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn offline_once_select_many_through_the_store() {
    let dir = temp_dir("select");

    // "Offline job": build and persist.
    {
        let world = World::cv(42);
        let (matrix, curves) = world.build_offline().unwrap();
        let artifacts =
            OfflineArtifacts::build(matrix, &curves, &OfflineConfig::default()).unwrap();
        let mut store = Store::open(&dir).unwrap();
        store.put("cv.world", ArtifactKind::World, &world).unwrap();
        store
            .put("cv.artifacts", ArtifactKind::OfflineArtifacts, &artifacts)
            .unwrap();
    }

    // "Online service": reload from the store and answer all four targets.
    let store = Store::open(&dir).unwrap();
    let world: World = store.get("cv.world", ArtifactKind::World).unwrap();
    let artifacts: OfflineArtifacts = store
        .get("cv.artifacts", ArtifactKind::OfflineArtifacts)
        .unwrap();
    let bf_epochs = (world.n_models() * world.stages) as f64;

    for target in 0..world.n_targets() {
        let oracle = ZooOracle::new(&world, target).unwrap();
        let mut trainer = ZooTrainer::new(&world, target).unwrap();
        let outcome = two_phase_select(
            &artifacts,
            &oracle,
            &mut trainer,
            &PipelineConfig {
                total_stages: world.stages,
                ..Default::default()
            },
        )
        .unwrap();
        // The stored-and-reloaded artifacts must behave exactly like fresh
        // ones: near-optimal pick, far cheaper than brute force.
        let (_, best) = world.best_model_for_target(target);
        assert!(
            outcome.selection.winner_test >= best - 0.05,
            "target {target}: {:.3} vs best {best:.3}",
            outcome.selection.winner_test
        );
        assert!(outcome.ledger.total() * 4.0 < bf_epochs);
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stored_selection_is_bit_identical_to_fresh() {
    let dir = temp_dir("identical");
    let world = World::nlp(7);
    let (matrix, curves) = world.build_offline().unwrap();
    let artifacts = OfflineArtifacts::build(matrix, &curves, &OfflineConfig::default()).unwrap();

    let mut store = Store::open(&dir).unwrap();
    store
        .put("nlp.artifacts", ArtifactKind::OfflineArtifacts, &artifacts)
        .unwrap();
    let reloaded: OfflineArtifacts = store
        .get("nlp.artifacts", ArtifactKind::OfflineArtifacts)
        .unwrap();

    let run = |arts: &OfflineArtifacts| {
        let oracle = ZooOracle::new(&world, 0).unwrap();
        let mut trainer = ZooTrainer::new(&world, 0).unwrap();
        two_phase_select(
            arts,
            &oracle,
            &mut trainer,
            &PipelineConfig {
                total_stages: world.stages,
                ..Default::default()
            },
        )
        .unwrap()
    };
    let fresh = run(&artifacts);
    let stored = run(&reloaded);
    assert_eq!(fresh, stored);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn incremental_growth_persists_across_store_roundtrips() {
    use tps_core::incremental::ModelAddition;

    let dir = temp_dir("grow");
    let world = World::cv(11);
    let (matrix, curves) = world.build_offline().unwrap();
    let config = OfflineConfig::default();
    let mut artifacts = OfflineArtifacts::build(matrix, &curves, &config).unwrap();

    // Grow, persist, reload, grow again — the add must compose.
    let sibling = world.models[8].clone();
    let mk_addition = |name: &str, spec: &tps_zoo::ModelSpec| ModelAddition {
        name: name.into(),
        benchmark_curves: world
            .benchmarks
            .iter()
            .map(|b| {
                world
                    .law
                    .run(spec, b, world.stages, world.hyper, world.seed)
                    .to_curve()
            })
            .collect(),
    };
    artifacts
        .add_model(&mk_addition("grown/one", &sibling), &config)
        .unwrap();

    let mut store = Store::open(&dir).unwrap();
    store
        .put("grown", ArtifactKind::OfflineArtifacts, &artifacts)
        .unwrap();
    let mut reloaded: OfflineArtifacts =
        store.get("grown", ArtifactKind::OfflineArtifacts).unwrap();
    assert_eq!(reloaded.matrix.n_models(), 31);

    reloaded
        .add_model(&mk_addition("grown/two", &sibling), &config)
        .unwrap();
    assert_eq!(reloaded.matrix.n_models(), 32);
    assert_eq!(reloaded.trends.n_models(), 32);
    store
        .put_overwrite("grown", ArtifactKind::OfflineArtifacts, &reloaded)
        .unwrap();
    assert!(store.fsck().is_empty());
    let _ = fs::remove_dir_all(&dir);
}

// ---- generation round-trip property -----------------------------------

use proptest::prelude::*;

/// Strategy: a small set of named entries with arbitrary payload bytes.
fn entries_strategy() -> impl Strategy<Value = Vec<(String, Vec<u8>)>> {
    prop::collection::vec(
        ((0u32..1000), prop::collection::vec(0u8..=255, 0..256)),
        1..4,
    )
    .prop_map(|pairs| {
        let mut seen = std::collections::BTreeSet::new();
        pairs
            .into_iter()
            .filter_map(|(tag, bytes)| {
                let name = format!("entry-{tag}");
                seen.insert(name.clone()).then_some((name, bytes))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// commit → export → import into a fresh store reproduces every blob
    /// byte-identically, with the same generation record.
    #[test]
    fn generation_export_import_round_trips(entries in entries_strategy()) {
        static ROUND: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let round = ROUND.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = temp_dir(&format!("gen-prop-{round}"));
        let mut store = Store::open(&dir).unwrap();
        let borrowed: Vec<(&str, &[u8])> = entries
            .iter()
            .map(|(n, b)| (n.as_str(), b.as_slice()))
            .collect();
        let committed = store.commit_generation(&borrowed, "prop").unwrap();
        let bundle = dir.join("bundle.tpsg");
        store.export_generation(committed.id, &bundle).unwrap();

        let other_dir = temp_dir(&format!("gen-prop-import-{round}"));
        let mut other = Store::open(&other_dir).unwrap();
        let imported = other.import_generation(&bundle).unwrap();
        prop_assert_eq!(&imported, &committed);
        for (name, bytes) in &entries {
            prop_assert_eq!(
                &other.generation_entry(committed.id, name).unwrap(),
                bytes
            );
        }
        prop_assert!(other.fsck().is_empty());
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&other_dir);
    }
}
