//! Edge-case coverage for `tps_core::benchsel::similarity_preservation`
//! from the integration tree: degenerate model counts (n < 2), dimension
//! mismatches, and constant-column (zero-variance) matrices must all be
//! handled with structured errors or a well-defined score — never a panic
//! or a NaN.

use tps_core::benchsel::{compact_benchmarks, similarity_preservation};
use tps_core::error::SelectionError;
use tps_core::matrix::PerformanceMatrix;
use tps_core::similarity::SimilarityMatrix;

/// A performance matrix with the given per-dataset accuracy rows.
fn matrix(rows: &[&[f64]]) -> PerformanceMatrix {
    let n_models = rows[0].len();
    PerformanceMatrix::new(
        (0..n_models).map(|i| format!("m{i}")).collect(),
        (0..rows.len()).map(|i| format!("d{i}")).collect(),
        rows.iter().map(|r| r.to_vec()).collect(),
    )
    .unwrap()
}

fn similarity(rows: &[&[f64]], top_k: usize) -> SimilarityMatrix {
    SimilarityMatrix::from_performance(&matrix(rows), top_k).unwrap()
}

#[test]
fn single_model_is_a_structured_invalid_config() {
    // One model means zero upper-triangular pairs — there is no structure
    // to preserve and the comparison must refuse rather than return 0/0.
    let s1 = similarity(&[&[0.7], &[0.4]], 1);
    match similarity_preservation(&s1, &s1) {
        Err(SelectionError::InvalidConfig(msg)) => {
            assert!(msg.contains(">= 2"), "unexpected message: {msg}")
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}

#[test]
fn dimension_mismatch_reports_both_sizes() {
    let s3 = similarity(&[&[0.9, 0.5, 0.1], &[0.8, 0.4, 0.2]], 2);
    let s2 = similarity(&[&[0.9, 0.5], &[0.8, 0.4]], 1);
    match similarity_preservation(&s3, &s2) {
        Err(SelectionError::DimensionMismatch { expected, got, .. }) => {
            assert_eq!((expected, got), (3, 2));
        }
        other => panic!("expected DimensionMismatch, got {other:?}"),
    }
    // The comparison is directional about which side sets `expected`.
    match similarity_preservation(&s2, &s3) {
        Err(SelectionError::DimensionMismatch { expected, got, .. }) => {
            assert_eq!((expected, got), (2, 3));
        }
        other => panic!("expected DimensionMismatch, got {other:?}"),
    }
}

#[test]
fn constant_columns_score_zero_without_nan() {
    // Constant accuracy rows induce a similarity matrix whose upper
    // triangle has zero variance; Pearson degenerates and the score must
    // be exactly 0.0 (the documented convention), not NaN.
    let constant = similarity(&[&[0.5, 0.5, 0.5], &[0.5, 0.5, 0.5]], 2);
    let varied = similarity(&[&[0.9, 0.5, 0.1], &[0.8, 0.4, 0.2]], 2);
    for (full, compact) in [(&constant, &varied), (&varied, &constant)] {
        let score = similarity_preservation(full, compact).unwrap();
        assert_eq!(score, 0.0, "zero-variance side must pin the score to 0");
        assert!(!score.is_nan());
    }
    let score = similarity_preservation(&constant, &constant).unwrap();
    assert_eq!(score, 0.0);
}

#[test]
fn identical_structure_scores_one() {
    let varied = similarity(&[&[0.9, 0.5, 0.1], &[0.8, 0.4, 0.2]], 2);
    let score = similarity_preservation(&varied, &varied).unwrap();
    assert!((score - 1.0).abs() < 1e-12, "got {score}");
}

#[test]
fn compaction_surfaces_preservation_edge_errors() {
    // A one-model matrix can be built, but compaction over it must refuse
    // through the same structured error instead of dividing by zero.
    let one_model = matrix(&[&[0.7], &[0.4]]);
    assert!(matches!(
        compact_benchmarks(&one_model, 1, 1),
        Err(SelectionError::InvalidConfig(_))
    ));
}
