//! Invariants relating the three selectors (BF, SH, FS) on simulated
//! worlds across seeds and scales.

use tps_core::ids::ModelId;
use tps_core::pipeline::{OfflineArtifacts, OfflineConfig};
use tps_core::select::brute::brute_force;
use tps_core::select::fine::{fine_selection, FineSelectionConfig};
use tps_core::select::halving::successive_halving;
use tps_core::traits::TargetTrainer;
use tps_zoo::{SyntheticConfig, World, ZooTrainer};

fn artifacts_for(world: &World) -> OfflineArtifacts {
    let (matrix, curves) = world.build_offline().expect("offline");
    OfflineArtifacts::build(matrix, &curves, &OfflineConfig::default()).expect("artifacts")
}

/// Expected SH cost: `Σ_t max(1, ⌊n / 2^t⌋)` over `stages` stages.
fn sh_epochs(n: usize, stages: usize) -> f64 {
    let mut pool = n;
    let mut total = 0usize;
    for _ in 0..stages {
        total += pool;
        if pool > 1 {
            pool = (pool / 2).max(1);
        }
    }
    total as f64
}

#[test]
fn selector_cost_ordering_holds_across_seeds() {
    for seed in [1, 7, 42, 77, 2024] {
        let world = World::synthetic(&SyntheticConfig {
            seed,
            ..Default::default()
        });
        let artifacts = artifacts_for(&world);
        let pool: Vec<ModelId> = artifacts.matrix.model_ids().collect();
        for target in 0..world.n_targets() {
            let mut t1 = ZooTrainer::new(&world, target).unwrap();
            let bf = brute_force(&mut t1, &pool, world.stages).unwrap();
            let mut t2 = ZooTrainer::new(&world, target).unwrap();
            let sh = successive_halving(&mut t2, &pool, world.stages).unwrap();
            let mut t3 = ZooTrainer::new(&world, target).unwrap();
            let fs = fine_selection(
                &mut t3,
                &pool,
                world.stages,
                &artifacts.trends,
                &FineSelectionConfig::default(),
            )
            .unwrap();

            assert_eq!(
                bf.ledger.total(),
                (pool.len() * world.stages) as f64,
                "seed {seed}"
            );
            assert_eq!(sh.ledger.total(), sh_epochs(pool.len(), world.stages));
            assert!(
                fs.ledger.total() <= sh.ledger.total(),
                "seed {seed} target {target}: FS {} > SH {}",
                fs.ledger.total(),
                sh.ledger.total()
            );
            // Every winner is fully trained.
            for out in [&bf, &sh, &fs] {
                assert_eq!(t1.stages_trained(bf.winner), world.stages);
                assert!((0.0..=1.0).contains(&out.winner_test));
            }
        }
    }
}

#[test]
fn fs_accuracy_competitive_with_sh_across_seeds() {
    let mut fs_total = 0.0;
    let mut sh_total = 0.0;
    let mut cases = 0;
    for seed in [5, 21, 42, 63, 91] {
        let world = World::synthetic(&SyntheticConfig {
            seed,
            ..Default::default()
        });
        let artifacts = artifacts_for(&world);
        let pool: Vec<ModelId> = artifacts.matrix.model_ids().collect();
        for target in 0..world.n_targets() {
            let mut t2 = ZooTrainer::new(&world, target).unwrap();
            let sh = successive_halving(&mut t2, &pool, world.stages).unwrap();
            let mut t3 = ZooTrainer::new(&world, target).unwrap();
            let fs = fine_selection(
                &mut t3,
                &pool,
                world.stages,
                &artifacts.trends,
                &FineSelectionConfig::default(),
            )
            .unwrap();
            fs_total += fs.winner_test;
            sh_total += sh.winner_test;
            cases += 1;
        }
    }
    // Aggregate parity (Fig. 7): FS matches SH's selection quality while
    // spending fewer epochs.
    assert!(
        fs_total >= sh_total - 0.02 * cases as f64,
        "FS mean {:.3} vs SH mean {:.3}",
        fs_total / cases as f64,
        sh_total / cases as f64
    );
}

#[test]
fn fs_pool_shrinks_at_least_as_fast_as_halving() {
    let world = World::nlp(42);
    let artifacts = artifacts_for(&world);
    let pool: Vec<ModelId> = artifacts.matrix.model_ids().collect();
    let mut trainer = ZooTrainer::new(&world, 0).unwrap();
    let fs = fine_selection(
        &mut trainer,
        &pool,
        world.stages,
        &artifacts.trends,
        &FineSelectionConfig::default(),
    )
    .unwrap();
    let mut cap = pool.len();
    for stage_pool in &fs.pool_history {
        assert!(
            stage_pool.len() <= cap,
            "pool {} > cap {cap}",
            stage_pool.len()
        );
        cap = (stage_pool.len() / 2).max(1);
    }
}

#[test]
fn late_bloomer_survives_the_fine_filter() {
    // A slow-but-strong model validates poorly at stage 1 (SH would rank it
    // near the bottom) yet its convergence trends predict a high ceiling —
    // the fine filter must not remove it, because no faster model both
    // validates better *and* predicts better.
    let mut world = World::synthetic(&SyntheticConfig {
        seed: 11,
        n_families: 3,
        family_size: (3, 3),
        n_singletons: 2,
        n_benchmarks: 12,
        n_targets: 1,
        stages: 6,
    });
    world.models[0].capability = 0.98;
    world.models[0].speed = 0.45;
    world.models[0].domain = world.targets[0].domain;
    let artifacts = artifacts_for(&world);
    let pool: Vec<ModelId> = artifacts.matrix.model_ids().collect();

    // Advance every model one stage on the target and record validations.
    let mut trainer = ZooTrainer::new(&world, 0).unwrap();
    let vals: Vec<(ModelId, f64)> = pool
        .iter()
        .map(|&m| (m, trainer.advance(m).unwrap()))
        .collect();

    // Sanity: the late bloomer is NOT among the top half by validation (so
    // plain halving would be at risk of dropping it)...
    let mut by_val = vals.clone();
    by_val.sort_by(|a, b| b.1.total_cmp(&a.1));
    let val_rank = by_val.iter().position(|&(m, _)| m == ModelId(0)).unwrap();
    assert!(val_rank > 0, "late bloomer should not lead at stage 1");

    // ...but the fine filter keeps it: its predicted ceiling dominates.
    let survivors = tps_core::select::fine::fine_filter(&vals, 0, &artifacts.trends, 0.0);
    assert!(
        survivors.contains(&ModelId(0)),
        "fine filter dropped the late bloomer (val rank {val_rank}, survivors {survivors:?})"
    );
}

#[test]
fn threshold_sweep_never_decreases_epochs() {
    let world = World::cv(42);
    let artifacts = artifacts_for(&world);
    let pool: Vec<ModelId> = artifacts.matrix.model_ids().collect();
    let mut last = 0.0;
    for threshold in [0.0, 0.02, 0.05, 0.10, 0.5] {
        let mut trainer = ZooTrainer::new(&world, 1).unwrap();
        let fs = fine_selection(
            &mut trainer,
            &pool,
            world.stages,
            &artifacts.trends,
            &FineSelectionConfig {
                threshold,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            fs.ledger.total() >= last,
            "threshold {threshold}: {} < previous {last}",
            fs.ledger.total()
        );
        last = fs.ledger.total();
    }
}
