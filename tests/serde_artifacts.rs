//! Persistence: the offline artifacts are the framework's long-lived state
//! (built once, reused for every new task), so they must round-trip through
//! serde losslessly.

use tps_core::pipeline::{OfflineArtifacts, OfflineConfig};
use tps_zoo::{SyntheticConfig, World};

#[test]
fn offline_artifacts_round_trip_json() {
    let world = World::synthetic(&SyntheticConfig {
        seed: 9,
        n_families: 3,
        family_size: (2, 3),
        n_singletons: 3,
        n_benchmarks: 8,
        n_targets: 1,
        stages: 4,
    });
    let (matrix, curves) = world.build_offline().unwrap();
    let artifacts = OfflineArtifacts::build(matrix, &curves, &OfflineConfig::default()).unwrap();

    let json = serde_json::to_string(&artifacts).unwrap();
    let restored: OfflineArtifacts = serde_json::from_str(&json).unwrap();

    assert_eq!(restored.matrix, artifacts.matrix);
    assert_eq!(restored.clustering, artifacts.clustering);
    assert_eq!(restored.similarity, artifacts.similarity);
    assert_eq!(restored.trends, artifacts.trends);
}

#[test]
fn world_round_trips_json() {
    let world = World::nlp(5);
    let json = serde_json::to_string(&world).unwrap();
    let restored: World = serde_json::from_str(&json).unwrap();
    assert_eq!(restored.models, world.models);
    assert_eq!(restored.benchmarks, world.benchmarks);
    assert_eq!(restored.targets, world.targets);
    assert_eq!(restored.stages, world.stages);
    // A restored world regenerates identical offline data.
    let (m1, c1) = world.build_offline().unwrap();
    let (m2, c2) = restored.build_offline().unwrap();
    assert_eq!(m1, m2);
    assert_eq!(c1, c2);
}

#[test]
fn curves_round_trip_json() {
    let world = World::cv(5);
    let (_, curves) = world.build_offline().unwrap();
    let json = serde_json::to_string(&curves).unwrap();
    let restored: tps_core::curve::CurveSet = serde_json::from_str(&json).unwrap();
    assert_eq!(restored, curves);
}

#[test]
fn selection_outcome_round_trips_json() {
    use tps_core::prelude::*;
    use tps_zoo::{ZooOracle, ZooTrainer};

    let world = World::cv(5);
    let (matrix, curves) = world.build_offline().unwrap();
    let artifacts = OfflineArtifacts::build(matrix, &curves, &OfflineConfig::default()).unwrap();
    let oracle = ZooOracle::new(&world, 0).unwrap();
    let mut trainer = ZooTrainer::new(&world, 0).unwrap();
    let outcome = two_phase_select(
        &artifacts,
        &oracle,
        &mut trainer,
        &PipelineConfig {
            total_stages: world.stages,
            ..Default::default()
        },
    )
    .unwrap();
    let json = serde_json::to_string(&outcome).unwrap();
    let restored: PipelineOutcome = serde_json::from_str(&json).unwrap();
    assert_eq!(restored, outcome);
}

#[test]
fn mlp_round_trips_json() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(3);
    let mlp = tps_nn::Mlp::new(6, 8, 3, &mut rng);
    let json = serde_json::to_string(&mlp).unwrap();
    let restored: tps_nn::Mlp = serde_json::from_str(&json).unwrap();
    assert_eq!(restored, mlp);
}
