//! Service-layer integration tests: the resident server must be a
//! transparent, deterministic wrapper around `two_phase_select` — identical
//! response bytes at any `max_inflight`, identical to one-shot runs, and a
//! cache hit must replay the miss path's bytes verbatim.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Mutex;
use tps_bench::WorldBundle;
use tps_core::fault;
use tps_core::parallel::ParallelConfig;
use tps_core::pipeline::{two_phase_select_traced, PipelineConfig};
use tps_core::recall::RecallConfig;
use tps_core::select::fine::FineSelectionConfig;
use tps_core::telemetry::Telemetry;
use tps_serve::protocol::{extract_result, status_of};
use tps_serve::{Client, Request, SelectionResult, ServeConfig, ServeSummary, Server};
use tps_zoo::{SyntheticConfig, World, ZooOracle, ZooTrainer};

/// The recall sizes the request mix alternates between.
const TOP_KS: [usize; 2] = [6, 8];

fn small_world(seed: u64) -> World {
    World::synthetic(&SyntheticConfig {
        seed,
        n_families: 3,
        family_size: (2, 3),
        n_singletons: 4,
        n_benchmarks: 8,
        n_targets: 3,
        stages: 4,
    })
}

/// One-shot reference: the same wiring and serializer the server uses.
fn one_shot(bundle: &WorldBundle, target: usize, top_k: usize) -> String {
    let (tel, _sink) = Telemetry::recording();
    let oracle = ZooOracle::new(&bundle.world, target).unwrap();
    let trainer = ZooTrainer::new(&bundle.world, target)
        .unwrap()
        .with_telemetry(tel.clone());
    let (oracle, mut trainer) = fault::wrap_pair(oracle, trainer, None);
    let config = PipelineConfig {
        recall: RecallConfig {
            top_k,
            ..RecallConfig::default()
        },
        fine: FineSelectionConfig {
            threshold: 0.0,
            ..FineSelectionConfig::default()
        },
        total_stages: bundle.world.stages,
        parallel: ParallelConfig { threads: 1 },
        ann: Default::default(),
    };
    let outcome =
        two_phase_select_traced(&bundle.artifacts, &oracle, &mut trainer, &config, &tel).unwrap();
    let result = SelectionResult::new(&bundle.world, &bundle.artifacts, target, outcome);
    serde_json::to_string(&result).unwrap()
}

/// The request mix: every (target, top_k) fingerprint exactly twice.
fn request_mix(world: &World) -> Vec<Request> {
    let mut requests = Vec::new();
    for _ in 0..2 {
        for target in 0..world.n_targets() {
            for &top_k in &TOP_KS {
                let mut req =
                    Request::select((requests.len() + 1) as u64, &world.targets[target].name);
                req.top_k = Some(top_k);
                requests.push(req);
            }
        }
    }
    requests
}

/// Run every request on its own concurrent connection against a fresh
/// in-process server; return the responses in request order plus the
/// drain summary.
fn drive_concurrent(
    bundle: &WorldBundle,
    config: ServeConfig,
    requests: &[Request],
) -> (Vec<String>, ServeSummary) {
    let server = Server::bind(&bundle.world, &bundle.artifacts, config).unwrap();
    let addr = server.addr().to_string();
    let lines: Mutex<Vec<Option<String>>> = Mutex::new(vec![None; requests.len()]);
    let summary = std::thread::scope(|s| {
        let handle = s.spawn(|| server.run().expect("server drains cleanly"));
        std::thread::scope(|cs| {
            for (i, req) in requests.iter().enumerate() {
                let (addr, lines) = (&addr, &lines);
                cs.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    let line = client.request(req).expect("request answered");
                    lines.lock().unwrap()[i] = Some(line);
                });
            }
        });
        let mut client = Client::connect(&addr).expect("control client connects");
        let ack = client.request(&Request::control(999, "shutdown")).unwrap();
        assert_eq!(status_of(&ack), Some("ok"));
        handle.join().expect("server thread joins")
    });
    let lines = lines
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|l| l.expect("every request was answered"))
        .collect();
    (lines, summary)
}

fn serve_config(max_inflight: usize) -> ServeConfig {
    ServeConfig {
        max_inflight,
        queue_depth: 64,
        cache_capacity: 64,
        ..ServeConfig::default()
    }
}

/// Drive `requests` to completion on concurrent connections, scrape the
/// live `{"op":"metrics"}` exposition (no drain), then shut down; returns
/// the exposition and the drain summary.
fn drive_and_scrape(
    bundle: &WorldBundle,
    config: ServeConfig,
    requests: &[Request],
) -> (String, ServeSummary) {
    let server = Server::bind(&bundle.world, &bundle.artifacts, config).unwrap();
    let addr = server.addr().to_string();
    std::thread::scope(|s| {
        let handle = s.spawn(|| server.run().expect("server drains cleanly"));
        std::thread::scope(|cs| {
            for req in requests {
                let addr = &addr;
                cs.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    let line = client.request(req).expect("request answered");
                    assert_eq!(status_of(&line), Some("ok"), "{line}");
                });
            }
        });
        let mut client = Client::connect(&addr).expect("control client connects");
        let scrape = client.scrape(998).expect("live metrics scrape");
        let ack = client.request(&Request::control(999, "shutdown")).unwrap();
        assert_eq!(status_of(&ack), Some("ok"));
        (scrape, handle.join().expect("server thread joins"))
    })
}

/// The deterministic slice of an exposition: every counter sample line
/// (`…_total value`). Histogram series (wall-clock) and gauges
/// (point-in-time) are explicitly outside the byte-stability contract.
fn counter_lines(exposition: &str) -> Vec<&str> {
    exposition
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| {
            l.split_whitespace()
                .next()
                .is_some_and(|name| name.ends_with("_total"))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// For any world seed, serving a fixed request mix at `max_inflight
    /// 1` and `4` produces byte-identical responses — each bit-identical
    /// to a one-shot `two_phase_select` of the same request — and the
    /// deterministic accounting (executed = distinct fingerprints,
    /// everything else a cache hit) is independent of the concurrency.
    #[test]
    fn responses_are_identical_at_any_max_inflight(seed in 0u64..100) {
        let bundle = WorldBundle::from_world(small_world(seed));
        let mut expected = HashMap::new();
        for target in 0..bundle.world.n_targets() {
            for &top_k in &TOP_KS {
                expected.insert((target, top_k), one_shot(&bundle, target, top_k));
            }
        }
        let requests = request_mix(&bundle.world);

        let (serial, s1) = drive_concurrent(&bundle, serve_config(1), &requests);
        let (parallel, s4) = drive_concurrent(&bundle, serve_config(4), &requests);

        prop_assert_eq!(&serial, &parallel, "responses depend on max_inflight");
        for (i, req) in requests.iter().enumerate() {
            let key = (
                bundle.world.target_by_name(req.target.as_deref().unwrap()).unwrap(),
                req.top_k.unwrap(),
            );
            prop_assert_eq!(
                extract_result(&serial[i]),
                Some(expected[&key].as_str()),
                "response {} diverged from its one-shot twin",
                i
            );
        }

        let distinct = expected.len() as u64;
        let total = requests.len() as u64;
        for stats in [&s1.stats, &s4.stats] {
            prop_assert_eq!(stats.requests, total);
            prop_assert_eq!(stats.executed, distinct);
            prop_assert_eq!(stats.cache_hits, total - distinct);
            prop_assert_eq!(stats.rejected, 0);
            prop_assert_eq!(stats.errors, 0);
        }
        // The epoch meter is the same sum either way (only the addition
        // order may differ between schedules).
        prop_assert!((s1.stats.total_epochs - s4.stats.total_epochs).abs() < 1e-9);
        prop_assert!(s1.trace.completed && s4.trace.completed);
    }

    /// Acceptance: the live metrics scrape's deterministic counter lines
    /// are byte-identical for the same request history at `max_inflight 1`
    /// and `4`. Wall-clock histograms and point-in-time gauges are the
    /// only schedule-dependent parts of the exposition.
    #[test]
    fn live_scrape_counter_lines_are_byte_identical_across_schedules(seed in 0u64..100) {
        let bundle = WorldBundle::from_world(small_world(seed));
        let requests = request_mix(&bundle.world);

        let (scrape1, s1) = drive_and_scrape(&bundle, serve_config(1), &requests);
        let (scrape4, s4) = drive_and_scrape(&bundle, serve_config(4), &requests);

        let lines1 = counter_lines(&scrape1);
        prop_assert_eq!(
            &lines1,
            &counter_lines(&scrape4),
            "live counter lines depend on max_inflight"
        );
        // The scrape reflects the full request history and is well-formed.
        prop_assert!(!lines1.is_empty());
        let total = requests.len();
        prop_assert!(
            scrape1.contains(&format!("tps_serve_requests_total {total}")),
            "scrape missing the request counter: {}", scrape1
        );
        prop_assert!(
            scrape1.contains(&format!("tps_serve_executed_total {}", s1.stats.executed)),
            "scrape disagrees with the drain stats: {}", scrape1
        );
        prop_assert!(scrape1.contains("tps_serve_request_latency_us_bucket"));
        prop_assert!(scrape1.contains("tps_serve_window_p50_us"));
        prop_assert!(scrape1.ends_with("# EOF\n"));
        // Scraping never drained anything: both servers still answered
        // every request and flushed complete traces afterwards.
        prop_assert_eq!(s1.stats.requests, total as u64);
        prop_assert!(s1.trace.completed && s4.trace.completed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Acceptance for the scatter/gather plane: for any world seed, the
    /// full cross of `shards {1, 2, 4}` × batching window `{0, 1}` ×
    /// `max_inflight {1, 4}` answers the fixed request mix with responses
    /// byte-identical to the plain single-shard server — and the
    /// schedule-independent accounting (executed, cache hits, scatter
    /// jobs, batch submissions) is identical wherever the feature set
    /// matches.
    #[test]
    fn sharded_and_batched_responses_are_byte_identical(seed in 0u64..100) {
        let bundle = WorldBundle::from_world(small_world(seed));
        let requests = request_mix(&bundle.world);

        let (reference, r) = drive_concurrent(&bundle, serve_config(1), &requests);
        prop_assert!(r.trace.completed);

        let mut scatter_jobs = None;
        for shards in [1usize, 2, 4] {
            for ticks in [0u64, 1] {
                for max_inflight in [1usize, 4] {
                    if shards == 1 && ticks == 0 {
                        continue; // that's the reference plane itself
                    }
                    let config = ServeConfig {
                        shards,
                        batch_window_ticks: ticks,
                        ..serve_config(max_inflight)
                    };
                    let (lines, summary) = drive_concurrent(&bundle, config, &requests);
                    prop_assert_eq!(
                        &lines,
                        &reference,
                        "shards={} ticks={} max_inflight={} diverged from the plain server",
                        shards, ticks, max_inflight
                    );
                    let stats = &summary.stats;
                    prop_assert_eq!(stats.requests, requests.len() as u64);
                    prop_assert_eq!(stats.executed, r.stats.executed);
                    prop_assert_eq!(stats.cache_hits, r.stats.cache_hits);
                    prop_assert!((stats.total_epochs - r.stats.total_epochs).abs() < 1e-9);
                    if shards > 1 {
                        // Scatter accounting is schedule-independent: the
                        // same totals at any shard count > 1 and any
                        // max_inflight.
                        prop_assert_eq!(stats.sharded_requests, stats.executed);
                        let jobs = *scatter_jobs.get_or_insert(stats.shard_scatter_jobs);
                        prop_assert_eq!(stats.shard_scatter_jobs, jobs);
                    }
                    if ticks > 0 {
                        prop_assert!(stats.batch_calls > 0);
                        prop_assert!(stats.batch_calls <= stats.batch_jobs);
                        prop_assert!(stats.batches <= stats.batch_calls);
                    } else {
                        prop_assert_eq!(stats.batch_calls, 0);
                    }
                    prop_assert!(summary.trace.completed);
                }
            }
        }
    }
}

/// The scatter plane is observable live: per-shard busy/jobs occupancy and
/// batch-width gauges appear in the `{"op":"metrics"}` scrape, and the
/// drain trace carries the deterministic batch/scatter counters plus the
/// schedule-dependent shape (`serve.batches`, `serve.shards`).
#[test]
fn scatter_gauges_and_batch_counters_are_exported() {
    let bundle = WorldBundle::from_world(small_world(11));
    let requests = request_mix(&bundle.world);
    let config = ServeConfig {
        shards: 2,
        batch_window_ticks: 1,
        ..serve_config(4)
    };
    let (scrape, summary) = drive_and_scrape(&bundle, config, &requests);

    // Live gauges: shard count, one busy/jobs pair per shard, batch shape.
    for gauge in [
        "tps_serve_shards ",
        "tps_serve_shard0_busy ",
        "tps_serve_shard0_jobs ",
        "tps_serve_shard1_busy ",
        "tps_serve_shard1_jobs ",
        "tps_serve_batches ",
        "tps_serve_batch_width_last ",
        "tps_serve_batch_width_max ",
    ] {
        assert!(scrape.contains(gauge), "scrape missing {gauge}: {scrape}");
    }
    // Deterministic counters ride the scrape's counter section too.
    assert!(scrape.contains("tps_serve_sharded_requests_total "));
    assert!(scrape.contains("tps_serve_batch_calls_total "));

    let stats = &summary.stats;
    assert_eq!(stats.sharded_requests, stats.executed);
    assert!(stats.shard_scatter_jobs > 0);
    assert!(stats.batch_calls > 0);
    assert!(stats.batch_jobs >= stats.batch_calls);
    assert!(stats.batch_width_max >= 1);
    // The drain trace records both the deterministic totals and the
    // schedule-dependent shape for `tps trace check` / `tps top`.
    for counter in [
        "serve.sharded_requests",
        "serve.shard_scatter_jobs",
        "serve.batch_calls",
        "serve.batch_jobs",
        "serve.batches",
        "serve.batch_width_max",
        "serve.shards",
    ] {
        assert!(
            summary.trace.counter(counter).is_some(),
            "drain trace missing {counter}"
        );
    }
    assert_eq!(
        summary.trace.counter("serve.shards"),
        Some(2.0),
        "the shard count is echoed into the drain trace"
    );
}

/// `{"op":"stats"}` is point-in-time: while a held request is being
/// executed, the snapshot shows it as live occupancy; after the drain the
/// cumulative counters reconcile with the admission accounting.
#[test]
fn stats_op_reports_point_in_time_occupancy() {
    use tps_serve::ServeStats;

    let bundle = WorldBundle::from_world(small_world(7));
    let server = Server::bind(&bundle.world, &bundle.artifacts, serve_config(1)).unwrap();
    let addr = server.addr().to_string();
    let summary = std::thread::scope(|s| {
        let handle = s.spawn(|| server.run().expect("server drains cleanly"));
        let mut client = Client::connect(&addr).unwrap();
        // Pipeline a held select and a stats poll on ONE connection: the
        // reader admits the select before it answers the stats op, and
        // both replies come back in processing order, so the snapshot is
        // guaranteed to see the held request as waiting or in flight.
        let mut held = Request::select(1, &bundle.world.targets[0].name);
        held.hold_ms = Some(300);
        client
            .send_line(&serde_json::to_string(&held).unwrap())
            .unwrap();
        let stats_line = client.request(&Request::control(2, "stats")).unwrap();
        let live: ServeStats = serde_json::from_str(extract_result(&stats_line).unwrap()).unwrap();
        assert_eq!(
            live.queue_waiting + live.queue_inflight,
            1,
            "snapshot must count the held request: {stats_line}"
        );
        assert_eq!(live.requests, 1, "{stats_line}");
        assert_eq!(live.executed, 0, "{stats_line}");
        assert_eq!(live.cache_entries, 0, "{stats_line}");

        // The held select then completes and populates the cache.
        let select_line = client.recv_line().unwrap();
        assert_eq!(status_of(&select_line), Some("ok"), "{select_line}");
        let after_line = client.request(&Request::control(3, "stats")).unwrap();
        let after: ServeStats = serde_json::from_str(extract_result(&after_line).unwrap()).unwrap();
        assert_eq!(
            after.queue_waiting + after.queue_inflight,
            0,
            "{after_line}"
        );
        assert_eq!(after.executed, 1, "{after_line}");
        assert_eq!(after.cache_entries, 1, "{after_line}");

        client.request(&Request::control(999, "shutdown")).unwrap();
        handle.join().unwrap()
    });
    // Drain-time reconciliation: every admitted request is accounted for.
    let st = &summary.stats;
    assert_eq!(st.requests, 1);
    assert_eq!(
        st.requests,
        st.executed
            + st.cache_hits
            + st.rejected
            + st.drain_rejected
            + st.deadline_rejected
            + st.errors
    );
    assert_eq!(st.queue_waiting + st.queue_inflight, 0);
}

/// Access-log and SLO accounting close exactly at drain: one JSONL record
/// per processed request, `records == written + dropped`, and the SLO burn
/// counter is 0 under a generous objective but counts every request under
/// an impossible one.
#[test]
fn access_log_and_slo_accounting_close_at_drain() {
    let bundle = WorldBundle::from_world(small_world(7));
    let requests = request_mix(&bundle.world);
    let total = requests.len() as u64;
    let log_path = std::env::temp_dir().join(format!(
        "tps-serve-access-{}-{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));

    // Generous SLO: nothing in this synthetic world takes a minute.
    let config = ServeConfig {
        access_log: Some(log_path.to_str().unwrap().to_string()),
        slo_ms: Some(60_000),
        ..serve_config(4)
    };
    let (_, summary) = drive_concurrent(&bundle, config, &requests);
    assert_eq!(summary.stats.requests, total);
    assert_eq!(summary.stats.slo_violations, 0);
    assert_eq!(summary.stats.access_log_records, total);
    assert_eq!(summary.stats.access_log_dropped, 0);
    assert_eq!(
        summary.stats.access_log_records,
        summary.stats.access_log_written + summary.stats.access_log_dropped,
        "accounting must close exactly at drain"
    );
    // The same accounting is visible to budget rules in the drain trace.
    assert_eq!(
        summary.trace.counter("serve.access_log_records"),
        Some(total as f64)
    );
    assert_eq!(summary.trace.counter("serve.slo_violations"), Some(0.0));
    // The rolling window saw every processed request.
    assert_eq!(summary.window.count, total);
    assert!(summary.window.p50_us <= summary.window.p95_us);
    assert!(summary.window.p95_us <= summary.window.p99_us);

    // One structured JSONL record per processed request, every line a
    // parseable object carrying the documented fields.
    let log = std::fs::read_to_string(&log_path).unwrap();
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len(), total as usize);
    let mut hits = 0u64;
    for line in &lines {
        let v: serde_json::Value = serde_json::from_str(line).unwrap();
        assert!(v["fingerprint"].as_str().is_some(), "{line}");
        assert_eq!(v["generation"], 1, "{line}");
        assert_eq!(v["status"], "ok", "{line}");
        assert!(v["exec_us"].as_u64().is_some(), "{line}");
        assert!(v["queue_wait_us"].as_u64().is_some(), "{line}");
        match v["cache"].as_str().unwrap() {
            "hit" | "flight" => hits += 1,
            "miss" => assert!(v["epochs"].as_f64().unwrap() > 0.0, "{line}"),
            other => panic!("unexpected cache verdict {other}: {line}"),
        }
    }
    assert_eq!(
        hits, summary.stats.cache_hits,
        "access-log verdicts must reconcile with the stats"
    );
    std::fs::remove_file(&log_path).ok();

    // Impossible SLO: every processed request burns the budget.
    let config = ServeConfig {
        slo_ms: Some(0),
        ..serve_config(4)
    };
    let (_, summary) = drive_concurrent(&bundle, config, &requests);
    assert_eq!(summary.stats.slo_violations, total);
    assert_eq!(
        summary.trace.counter("serve.slo_violations"),
        Some(total as f64)
    );
}

/// A cache hit replays the miss path's bytes verbatim: two identical
/// requests (same correlation id) produce byte-identical response lines,
/// with exactly one execution between them.
#[test]
fn cache_hit_is_byte_identical_to_miss() {
    let bundle = WorldBundle::from_world(small_world(7));
    let server = Server::bind(&bundle.world, &bundle.artifacts, serve_config(2)).unwrap();
    let addr = server.addr().to_string();
    let summary = std::thread::scope(|s| {
        let handle = s.spawn(|| server.run().expect("server drains cleanly"));
        let mut client = Client::connect(&addr).unwrap();
        let req = Request::select(7, &bundle.world.targets[0].name);
        let miss = client.request(&req).unwrap();
        let hit = client.request(&req).unwrap();
        assert_eq!(status_of(&miss), Some("ok"), "{miss}");
        assert_eq!(miss, hit, "hit path must replay the miss path's bytes");
        assert_eq!(
            extract_result(&miss),
            Some(one_shot(&bundle, 0, 10).as_str()),
            "and both match the one-shot run"
        );
        client.request(&Request::control(999, "shutdown")).unwrap();
        handle.join().unwrap()
    });
    assert_eq!(summary.stats.requests, 2);
    assert_eq!(summary.stats.executed, 1);
    assert_eq!(summary.stats.cache_hits, 1);
}

/// Hot-swap: an in-flight request completes on the generation it was
/// admitted under, the swap invalidates the result cache (same request
/// re-executes on the new artifacts), and the envelope `generation` field
/// is monotonic across the reload.
#[test]
fn hot_swap_pins_in_flight_requests_and_invalidates_the_cache() {
    use tps_serve::protocol::generation_of;

    let old = WorldBundle::from_world(small_world(7));
    let new = WorldBundle::from_world(small_world(8));
    let (new_world, new_artifacts) = (new.world.clone(), new.artifacts.clone());
    let server = Server::bind(&old.world, &old.artifacts, serve_config(2))
        .unwrap()
        .with_reload_source(Box::new(move || {
            Ok((new_world.clone(), new_artifacts.clone()))
        }));
    let addr = server.addr().to_string();

    let summary = std::thread::scope(|s| {
        let handle = s.spawn(|| server.run().expect("server drains cleanly"));

        // Admit a request that executes slowly enough to still be in
        // flight when the reload lands.
        let slow_line = {
            let addr = addr.clone();
            s.spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                let mut req = Request::select(1, "target-0");
                req.hold_ms = Some(400);
                client.request(&req).unwrap()
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(100));

        let mut client = Client::connect(&addr).unwrap();
        let ack = client.request(&Request::control(2, "reload")).unwrap();
        assert_eq!(status_of(&ack), Some("ok"), "{ack}");
        assert_eq!(
            generation_of(&ack),
            Some(2),
            "reload advances the generation"
        );

        // The in-flight request finishes on generation 1, answering with
        // the OLD artifacts — byte-identical to a one-shot on them.
        let slow_line = slow_line.join().unwrap();
        assert_eq!(status_of(&slow_line), Some("ok"), "{slow_line}");
        assert_eq!(
            generation_of(&slow_line),
            Some(1),
            "in-flight requests keep the generation pinned at admission"
        );
        assert_eq!(
            extract_result(&slow_line),
            Some(one_shot(&old, 0, 10).as_str()),
            "in-flight request must answer from the old artifacts"
        );

        // Post-swap, the identical request is a cache MISS (the
        // generation is folded into the fingerprint): it re-executes on
        // the new artifacts under generation 2.
        let fresh = client.request(&Request::select(3, "target-0")).unwrap();
        assert_eq!(status_of(&fresh), Some("ok"), "{fresh}");
        assert_eq!(generation_of(&fresh), Some(2));
        assert_eq!(
            extract_result(&fresh),
            Some(one_shot(&new, 0, 10).as_str()),
            "post-swap request must answer from the new artifacts"
        );
        assert!(
            generation_of(&slow_line) < generation_of(&fresh),
            "generation is monotonic across a reload"
        );

        // Same-generation repeat is a plain cache hit again.
        let hit = client.request(&Request::select(4, "target-0")).unwrap();
        assert_eq!(hit.replace("\"id\":4", "\"id\":3"), fresh);

        client.request(&Request::control(999, "shutdown")).unwrap();
        handle.join().unwrap()
    });
    assert_eq!(summary.stats.requests, 3);
    assert_eq!(
        summary.stats.executed, 2,
        "one execution per generation: the swap invalidated the cache"
    );
    assert_eq!(summary.stats.cache_hits, 1);
    assert_eq!(summary.stats.reloads, 1);
    assert_eq!(summary.stats.generation, 2);
    // The committed budget rule: serve.generation == serve.reloads + 1.
    assert_eq!(
        summary.trace.counters["serve.generation"],
        summary.trace.counters["serve.reloads"] + 1.0
    );
}

/// Without a reload source, `reload` is answered with a structured error
/// and the server keeps serving the bound generation.
#[test]
fn reload_without_a_source_is_a_structured_error() {
    let bundle = WorldBundle::from_world(small_world(9));
    let server = Server::bind(&bundle.world, &bundle.artifacts, serve_config(1)).unwrap();
    let addr = server.addr().to_string();
    let summary = std::thread::scope(|s| {
        let handle = s.spawn(|| server.run().expect("server drains cleanly"));
        let mut client = Client::connect(&addr).unwrap();
        let nack = client.request(&Request::control(1, "reload")).unwrap();
        assert_eq!(status_of(&nack), Some("reload_failed"), "{nack}");
        let ok = client.request(&Request::select(2, "target-0")).unwrap();
        assert_eq!(status_of(&ok), Some("ok"), "{ok}");
        assert_eq!(tps_serve::protocol::generation_of(&ok), Some(1));
        client.request(&Request::control(999, "shutdown")).unwrap();
        handle.join().unwrap()
    });
    assert_eq!(summary.stats.reloads, 0);
    assert_eq!(summary.stats.generation, 1);
}
