//! Service-layer integration tests: the resident server must be a
//! transparent, deterministic wrapper around `two_phase_select` — identical
//! response bytes at any `max_inflight`, identical to one-shot runs, and a
//! cache hit must replay the miss path's bytes verbatim.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Mutex;
use tps_bench::WorldBundle;
use tps_core::fault;
use tps_core::parallel::ParallelConfig;
use tps_core::pipeline::{two_phase_select_traced, PipelineConfig};
use tps_core::recall::RecallConfig;
use tps_core::select::fine::FineSelectionConfig;
use tps_core::telemetry::Telemetry;
use tps_serve::protocol::{extract_result, status_of};
use tps_serve::{Client, Request, SelectionResult, ServeConfig, ServeSummary, Server};
use tps_zoo::{SyntheticConfig, World, ZooOracle, ZooTrainer};

/// The recall sizes the request mix alternates between.
const TOP_KS: [usize; 2] = [6, 8];

fn small_world(seed: u64) -> World {
    World::synthetic(&SyntheticConfig {
        seed,
        n_families: 3,
        family_size: (2, 3),
        n_singletons: 4,
        n_benchmarks: 8,
        n_targets: 3,
        stages: 4,
    })
}

/// One-shot reference: the same wiring and serializer the server uses.
fn one_shot(bundle: &WorldBundle, target: usize, top_k: usize) -> String {
    let (tel, _sink) = Telemetry::recording();
    let oracle = ZooOracle::new(&bundle.world, target).unwrap();
    let trainer = ZooTrainer::new(&bundle.world, target)
        .unwrap()
        .with_telemetry(tel.clone());
    let (oracle, mut trainer) = fault::wrap_pair(oracle, trainer, None);
    let config = PipelineConfig {
        recall: RecallConfig {
            top_k,
            ..RecallConfig::default()
        },
        fine: FineSelectionConfig {
            threshold: 0.0,
            ..FineSelectionConfig::default()
        },
        total_stages: bundle.world.stages,
        parallel: ParallelConfig { threads: 1 },
        ann: Default::default(),
    };
    let outcome =
        two_phase_select_traced(&bundle.artifacts, &oracle, &mut trainer, &config, &tel).unwrap();
    let result = SelectionResult::new(&bundle.world, &bundle.artifacts, target, outcome);
    serde_json::to_string(&result).unwrap()
}

/// The request mix: every (target, top_k) fingerprint exactly twice.
fn request_mix(world: &World) -> Vec<Request> {
    let mut requests = Vec::new();
    for _ in 0..2 {
        for target in 0..world.n_targets() {
            for &top_k in &TOP_KS {
                let mut req =
                    Request::select((requests.len() + 1) as u64, &world.targets[target].name);
                req.top_k = Some(top_k);
                requests.push(req);
            }
        }
    }
    requests
}

/// Run every request on its own concurrent connection against a fresh
/// in-process server; return the responses in request order plus the
/// drain summary.
fn drive_concurrent(
    bundle: &WorldBundle,
    config: ServeConfig,
    requests: &[Request],
) -> (Vec<String>, ServeSummary) {
    let server = Server::bind(&bundle.world, &bundle.artifacts, config).unwrap();
    let addr = server.addr().to_string();
    let lines: Mutex<Vec<Option<String>>> = Mutex::new(vec![None; requests.len()]);
    let summary = std::thread::scope(|s| {
        let handle = s.spawn(|| server.run().expect("server drains cleanly"));
        std::thread::scope(|cs| {
            for (i, req) in requests.iter().enumerate() {
                let (addr, lines) = (&addr, &lines);
                cs.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    let line = client.request(req).expect("request answered");
                    lines.lock().unwrap()[i] = Some(line);
                });
            }
        });
        let mut client = Client::connect(&addr).expect("control client connects");
        let ack = client.request(&Request::control(999, "shutdown")).unwrap();
        assert_eq!(status_of(&ack), Some("ok"));
        handle.join().expect("server thread joins")
    });
    let lines = lines
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|l| l.expect("every request was answered"))
        .collect();
    (lines, summary)
}

fn serve_config(max_inflight: usize) -> ServeConfig {
    ServeConfig {
        max_inflight,
        queue_depth: 64,
        cache_capacity: 64,
        ..ServeConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// For any world seed, serving a fixed request mix at `max_inflight
    /// 1` and `4` produces byte-identical responses — each bit-identical
    /// to a one-shot `two_phase_select` of the same request — and the
    /// deterministic accounting (executed = distinct fingerprints,
    /// everything else a cache hit) is independent of the concurrency.
    #[test]
    fn responses_are_identical_at_any_max_inflight(seed in 0u64..100) {
        let bundle = WorldBundle::from_world(small_world(seed));
        let mut expected = HashMap::new();
        for target in 0..bundle.world.n_targets() {
            for &top_k in &TOP_KS {
                expected.insert((target, top_k), one_shot(&bundle, target, top_k));
            }
        }
        let requests = request_mix(&bundle.world);

        let (serial, s1) = drive_concurrent(&bundle, serve_config(1), &requests);
        let (parallel, s4) = drive_concurrent(&bundle, serve_config(4), &requests);

        prop_assert_eq!(&serial, &parallel, "responses depend on max_inflight");
        for (i, req) in requests.iter().enumerate() {
            let key = (
                bundle.world.target_by_name(req.target.as_deref().unwrap()).unwrap(),
                req.top_k.unwrap(),
            );
            prop_assert_eq!(
                extract_result(&serial[i]),
                Some(expected[&key].as_str()),
                "response {} diverged from its one-shot twin",
                i
            );
        }

        let distinct = expected.len() as u64;
        let total = requests.len() as u64;
        for stats in [&s1.stats, &s4.stats] {
            prop_assert_eq!(stats.requests, total);
            prop_assert_eq!(stats.executed, distinct);
            prop_assert_eq!(stats.cache_hits, total - distinct);
            prop_assert_eq!(stats.rejected, 0);
            prop_assert_eq!(stats.errors, 0);
        }
        // The epoch meter is the same sum either way (only the addition
        // order may differ between schedules).
        prop_assert!((s1.stats.total_epochs - s4.stats.total_epochs).abs() < 1e-9);
        prop_assert!(s1.trace.completed && s4.trace.completed);
    }
}

/// A cache hit replays the miss path's bytes verbatim: two identical
/// requests (same correlation id) produce byte-identical response lines,
/// with exactly one execution between them.
#[test]
fn cache_hit_is_byte_identical_to_miss() {
    let bundle = WorldBundle::from_world(small_world(7));
    let server = Server::bind(&bundle.world, &bundle.artifacts, serve_config(2)).unwrap();
    let addr = server.addr().to_string();
    let summary = std::thread::scope(|s| {
        let handle = s.spawn(|| server.run().expect("server drains cleanly"));
        let mut client = Client::connect(&addr).unwrap();
        let req = Request::select(7, &bundle.world.targets[0].name);
        let miss = client.request(&req).unwrap();
        let hit = client.request(&req).unwrap();
        assert_eq!(status_of(&miss), Some("ok"), "{miss}");
        assert_eq!(miss, hit, "hit path must replay the miss path's bytes");
        assert_eq!(
            extract_result(&miss),
            Some(one_shot(&bundle, 0, 10).as_str()),
            "and both match the one-shot run"
        );
        client.request(&Request::control(999, "shutdown")).unwrap();
        handle.join().unwrap()
    });
    assert_eq!(summary.stats.requests, 2);
    assert_eq!(summary.stats.executed, 1);
    assert_eq!(summary.stats.cache_hits, 1);
}

/// Hot-swap: an in-flight request completes on the generation it was
/// admitted under, the swap invalidates the result cache (same request
/// re-executes on the new artifacts), and the envelope `generation` field
/// is monotonic across the reload.
#[test]
fn hot_swap_pins_in_flight_requests_and_invalidates_the_cache() {
    use tps_serve::protocol::generation_of;

    let old = WorldBundle::from_world(small_world(7));
    let new = WorldBundle::from_world(small_world(8));
    let (new_world, new_artifacts) = (new.world.clone(), new.artifacts.clone());
    let server = Server::bind(&old.world, &old.artifacts, serve_config(2))
        .unwrap()
        .with_reload_source(Box::new(move || {
            Ok((new_world.clone(), new_artifacts.clone()))
        }));
    let addr = server.addr().to_string();

    let summary = std::thread::scope(|s| {
        let handle = s.spawn(|| server.run().expect("server drains cleanly"));

        // Admit a request that executes slowly enough to still be in
        // flight when the reload lands.
        let slow_line = {
            let addr = addr.clone();
            s.spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                let mut req = Request::select(1, "target-0");
                req.hold_ms = Some(400);
                client.request(&req).unwrap()
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(100));

        let mut client = Client::connect(&addr).unwrap();
        let ack = client.request(&Request::control(2, "reload")).unwrap();
        assert_eq!(status_of(&ack), Some("ok"), "{ack}");
        assert_eq!(
            generation_of(&ack),
            Some(2),
            "reload advances the generation"
        );

        // The in-flight request finishes on generation 1, answering with
        // the OLD artifacts — byte-identical to a one-shot on them.
        let slow_line = slow_line.join().unwrap();
        assert_eq!(status_of(&slow_line), Some("ok"), "{slow_line}");
        assert_eq!(
            generation_of(&slow_line),
            Some(1),
            "in-flight requests keep the generation pinned at admission"
        );
        assert_eq!(
            extract_result(&slow_line),
            Some(one_shot(&old, 0, 10).as_str()),
            "in-flight request must answer from the old artifacts"
        );

        // Post-swap, the identical request is a cache MISS (the
        // generation is folded into the fingerprint): it re-executes on
        // the new artifacts under generation 2.
        let fresh = client.request(&Request::select(3, "target-0")).unwrap();
        assert_eq!(status_of(&fresh), Some("ok"), "{fresh}");
        assert_eq!(generation_of(&fresh), Some(2));
        assert_eq!(
            extract_result(&fresh),
            Some(one_shot(&new, 0, 10).as_str()),
            "post-swap request must answer from the new artifacts"
        );
        assert!(
            generation_of(&slow_line) < generation_of(&fresh),
            "generation is monotonic across a reload"
        );

        // Same-generation repeat is a plain cache hit again.
        let hit = client.request(&Request::select(4, "target-0")).unwrap();
        assert_eq!(hit.replace("\"id\":4", "\"id\":3"), fresh);

        client.request(&Request::control(999, "shutdown")).unwrap();
        handle.join().unwrap()
    });
    assert_eq!(summary.stats.requests, 3);
    assert_eq!(
        summary.stats.executed, 2,
        "one execution per generation: the swap invalidated the cache"
    );
    assert_eq!(summary.stats.cache_hits, 1);
    assert_eq!(summary.stats.reloads, 1);
    assert_eq!(summary.stats.generation, 2);
    // The committed budget rule: serve.generation == serve.reloads + 1.
    assert_eq!(
        summary.trace.counters["serve.generation"],
        summary.trace.counters["serve.reloads"] + 1.0
    );
}

/// Without a reload source, `reload` is answered with a structured error
/// and the server keeps serving the bound generation.
#[test]
fn reload_without_a_source_is_a_structured_error() {
    let bundle = WorldBundle::from_world(small_world(9));
    let server = Server::bind(&bundle.world, &bundle.artifacts, serve_config(1)).unwrap();
    let addr = server.addr().to_string();
    let summary = std::thread::scope(|s| {
        let handle = s.spawn(|| server.run().expect("server drains cleanly"));
        let mut client = Client::connect(&addr).unwrap();
        let nack = client.request(&Request::control(1, "reload")).unwrap();
        assert_eq!(status_of(&nack), Some("error"), "{nack}");
        let ok = client.request(&Request::select(2, "target-0")).unwrap();
        assert_eq!(status_of(&ok), Some("ok"), "{ok}");
        assert_eq!(tps_serve::protocol::generation_of(&ok), Some(1));
        client.request(&Request::control(999, "shutdown")).unwrap();
        handle.join().unwrap()
    });
    assert_eq!(summary.stats.reloads, 0);
    assert_eq!(summary.stats.generation, 1);
}
