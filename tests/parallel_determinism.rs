//! Property tests for the parallel execution layer: for arbitrary world
//! seeds, the offline build and the online two-phase pipeline must be
//! bit-identical between the serial path (threads = 1) and a multi-worker
//! run (threads = 4) — same artifacts, same recall ranking, same winner,
//! same `EpochLedger` totals.

use proptest::prelude::*;
use tps_core::parallel::ParallelConfig;
use tps_core::pipeline::{
    two_phase_select, two_phase_select_traced, OfflineArtifacts, OfflineConfig, PipelineConfig,
};
use tps_core::telemetry::Telemetry;
use tps_zoo::{SyntheticConfig, World, ZooOracle, ZooTrainer};

fn small_world(seed: u64) -> World {
    World::synthetic(&SyntheticConfig {
        seed,
        n_families: 3,
        family_size: (2, 4),
        n_singletons: 3,
        n_benchmarks: 6,
        n_targets: 1,
        stages: 4,
    })
}

fn offline_config(threads: usize) -> OfflineConfig {
    OfflineConfig {
        parallel: ParallelConfig::with_threads(threads),
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn offline_build_is_thread_count_invariant(seed in 0u64..10_000) {
        let world = small_world(seed);
        let (m1, c1) = world.build_offline_par(1).unwrap();
        let (m4, c4) = world.build_offline_par(4).unwrap();
        prop_assert_eq!(
            serde_json::to_string(&m1).unwrap(),
            serde_json::to_string(&m4).unwrap()
        );
        prop_assert_eq!(
            serde_json::to_string(&c1).unwrap(),
            serde_json::to_string(&c4).unwrap()
        );

        let a1 = OfflineArtifacts::build(m1, &c1, &offline_config(1)).unwrap();
        let a4 = OfflineArtifacts::build(m4, &c4, &offline_config(4)).unwrap();
        prop_assert_eq!(
            serde_json::to_string(&a1).unwrap(),
            serde_json::to_string(&a4).unwrap()
        );
    }

    #[test]
    fn two_phase_select_is_thread_count_invariant(seed in 0u64..10_000) {
        let world = small_world(seed);
        let (matrix, curves) = world.build_offline().unwrap();
        let artifacts =
            OfflineArtifacts::build(matrix, &curves, &OfflineConfig::default()).unwrap();
        let oracle = ZooOracle::new(&world, 0).unwrap();

        let run = |threads: usize| {
            let mut trainer = ZooTrainer::new(&world, 0).unwrap();
            two_phase_select(
                &artifacts,
                &oracle,
                &mut trainer,
                &PipelineConfig {
                    total_stages: world.stages,
                    parallel: ParallelConfig::with_threads(threads),
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let serial = run(1);
        let parallel = run(4);

        // Full structural equality: recall ranking, recalled set, winner,
        // pool history, counters, and both ledgers.
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(&serial.recall.ranked, &parallel.recall.ranked);
        prop_assert_eq!(&serial.recall.recalled, &parallel.recall.recalled);
        prop_assert_eq!(serial.selection.winner, parallel.selection.winner);
        prop_assert_eq!(&serial.counters, &parallel.counters);
        prop_assert!((serial.ledger.total() - parallel.ledger.total()).abs() == 0.0);
    }

    /// Telemetry counters are part of the determinism contract: a recording
    /// sink attached to a serial run and to a 4-worker run must end with
    /// identical counter maps (spans carry wall-clock and are exempt).
    #[test]
    fn telemetry_counters_are_thread_count_invariant(seed in 0u64..10_000) {
        let world = small_world(seed);
        let (matrix, curves) = world.build_offline().unwrap();
        let artifacts =
            OfflineArtifacts::build(matrix, &curves, &OfflineConfig::default()).unwrap();
        let oracle = ZooOracle::new(&world, 0).unwrap();

        let run = |threads: usize| {
            let (tel, sink) = Telemetry::recording();
            let mut trainer = ZooTrainer::new(&world, 0)
                .unwrap()
                .with_telemetry(tel.clone());
            let out = two_phase_select_traced(
                &artifacts,
                &oracle,
                &mut trainer,
                &PipelineConfig {
                    total_stages: world.stages,
                    parallel: ParallelConfig::with_threads(threads),
                    ..Default::default()
                },
                &tel,
            )
            .unwrap();
            (out, sink.report())
        };
        let (serial_out, serial_trace) = run(1);
        let (parallel_out, parallel_trace) = run(4);

        prop_assert_eq!(&serial_out, &parallel_out);
        prop_assert_eq!(&serial_trace.counters, &parallel_trace.counters);
        // Deterministic histograms (unit != "us") are bucket-for-bucket
        // identical too; wall-clock ones are excluded by construction.
        prop_assert_eq!(
            serial_trace.deterministic_histograms(),
            parallel_trace.deterministic_histograms()
        );
        prop_assert!(serial_trace
            .deterministic_histograms()
            .keys()
            .any(|k| k.starts_with("fine.")), "expected fine-selection histograms");
        // Same span tree shape too — only the timings may differ.
        let names = |r: &tps_core::telemetry::TraceReport| {
            fn walk(spans: &[tps_core::telemetry::SpanRecord], out: &mut Vec<String>) {
                for s in spans {
                    out.push(s.name.clone());
                    walk(&s.children, out);
                }
            }
            let mut out = Vec::new();
            walk(&r.spans, &mut out);
            out
        };
        prop_assert_eq!(names(&serial_trace), names(&parallel_trace));
    }
}
