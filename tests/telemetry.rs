//! Integration tests for the structured telemetry layer: counters recorded
//! during a traced `select` run must equal the ground truth the pipeline
//! itself returns in [`PipelineOutcome`] — stage count, survivors per
//! stage, and total epoch-equivalents — and the span tree must reflect the
//! two-phase control flow.

use tps_core::pipeline::{two_phase_select, two_phase_select_traced, PipelineConfig};
use tps_core::select::brute::brute_force_traced;
use tps_core::select::halving::successive_halving_traced;
use tps_core::telemetry::{budget, stage_counter, Telemetry, TraceReport, TRACE_SCHEMA_VERSION};
use tps_zoo::{World, ZooOracle, ZooTrainer};

/// The budget file committed at the repository root — the exact spec CI
/// enforces via `tps trace check`.
const COMMITTED_BUDGETS: &str = include_str!("../budgets.toml");

fn traced_run(world: &World, target: usize) -> (tps_core::pipeline::PipelineOutcome, TraceReport) {
    let (matrix, curves) = world.build_offline().unwrap();
    let artifacts = tps_core::pipeline::OfflineArtifacts::build(
        matrix,
        &curves,
        &tps_core::pipeline::OfflineConfig::default(),
    )
    .unwrap();
    let oracle = ZooOracle::new(world, target).unwrap();
    let (tel, sink) = Telemetry::recording();
    let mut trainer = ZooTrainer::new(world, target)
        .unwrap()
        .with_telemetry(tel.clone());
    let out = two_phase_select_traced(
        &artifacts,
        &oracle,
        &mut trainer,
        &PipelineConfig {
            total_stages: world.stages,
            ..Default::default()
        },
        &tel,
    )
    .unwrap();
    (out, sink.report())
}

#[test]
fn counters_match_pipeline_outcome_ground_truth() {
    let world = World::cv(11);
    let (out, trace) = traced_run(&world, 0);

    // Phase totals.
    assert_eq!(
        trace.counter("recall.proxy_evals"),
        Some(out.counters.proxy_evals as f64)
    );
    assert_eq!(
        trace.counter("recall.recalled"),
        Some(out.counters.recalled as f64)
    );
    assert_eq!(
        trace.counter("recall.recalled"),
        Some(out.recall.recalled.len() as f64)
    );
    assert_eq!(
        trace.counter("recall.proxy_epochs"),
        Some(out.recall.proxy_epochs)
    );
    assert_eq!(
        trace.counter("fine.stages"),
        Some(out.counters.stages as f64)
    );
    assert_eq!(
        trace.counter("fine.stages"),
        Some(out.selection.pool_history.len() as f64)
    );
    assert_eq!(
        trace.counter("select.train_epochs"),
        Some(out.counters.train_epochs)
    );

    // Epoch accounting closes: proxy + train == ledger total == counters.
    let proxy = trace.counter("recall.proxy_epochs").unwrap();
    let train = trace.counter("select.train_epochs").unwrap();
    assert!((proxy + train - out.ledger.total()).abs() < 1e-9);
    assert_eq!(out.counters.total_epochs, out.ledger.total());

    // Per-stage survivors, stage by stage.
    for (t, &survivors) in out.counters.survivors_per_stage.iter().enumerate() {
        assert_eq!(
            trace.counter(&stage_counter("fine", t, "pool")),
            Some(out.counters.pool_per_stage[t] as f64),
            "stage {t} pool"
        );
        assert_eq!(
            trace.counter(&stage_counter("fine", t, "survivors")),
            Some(survivors as f64),
            "stage {t} survivors"
        );
        // pool - dominated - halving_cut == survivors at every stage.
        let dominated = trace
            .counter(&stage_counter("fine", t, "dominated"))
            .unwrap();
        let cut = trace
            .counter(&stage_counter("fine", t, "halving_cut"))
            .unwrap();
        assert_eq!(
            out.counters.pool_per_stage[t] as f64 - dominated - cut,
            survivors as f64,
            "stage {t} balance"
        );
    }

    // The trainer's own counters agree with what the selector charged: the
    // zoo trainer runs one epoch per stage advanced.
    assert_eq!(
        trace.counter("zoo.train.stages"),
        Some(out.counters.train_epochs)
    );
}

#[test]
fn traced_and_untraced_runs_return_identical_outcomes() {
    let world = World::nlp(5);
    let target = world.target_by_name("mnli").unwrap();
    let (traced, _) = traced_run(&world, target);

    let (matrix, curves) = world.build_offline().unwrap();
    let artifacts = tps_core::pipeline::OfflineArtifacts::build(
        matrix,
        &curves,
        &tps_core::pipeline::OfflineConfig::default(),
    )
    .unwrap();
    let oracle = ZooOracle::new(&world, target).unwrap();
    let mut trainer = ZooTrainer::new(&world, target).unwrap();
    let plain = two_phase_select(
        &artifacts,
        &oracle,
        &mut trainer,
        &PipelineConfig {
            total_stages: world.stages,
            ..Default::default()
        },
    )
    .unwrap();

    assert_eq!(traced, plain);
}

#[test]
fn span_tree_mirrors_the_control_flow() {
    let world = World::cv(3);
    let (out, trace) = traced_run(&world, 1);

    assert_eq!(trace.version, TRACE_SCHEMA_VERSION);
    let pipeline = trace.find_span("pipeline.two_phase_select").unwrap();
    let recall = pipeline.find("recall.coarse").unwrap();
    assert!(recall.find("recall.proxy_scoring").is_some());
    let fine = pipeline.find("select.fine").unwrap();
    assert_eq!(fine.children.len(), out.counters.stages);
    for stage in &fine.children {
        assert_eq!(stage.name, "select.stage");
        assert_eq!(stage.children.len(), 1);
        assert_eq!(stage.children[0].name, "select.stage.train");
    }

    // Trace survives a JSON round trip unchanged.
    let json = serde_json::to_string(&trace).unwrap();
    let back: TraceReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.counters, trace.counters);
    assert_eq!(back.spans.len(), trace.spans.len());
}

#[test]
fn baseline_selectors_record_their_own_stage_counters() {
    let world = World::cv(7);
    let everyone: Vec<_> = (0..world.n_models())
        .map(tps_core::ids::ModelId::from)
        .collect();

    let (tel, sink) = Telemetry::recording();
    let mut trainer = ZooTrainer::new(&world, 0)
        .unwrap()
        .with_telemetry(tel.clone());
    let bf = brute_force_traced(&mut trainer, &everyone, world.stages, 1, &tel).unwrap();
    let mut trainer = ZooTrainer::new(&world, 0)
        .unwrap()
        .with_telemetry(tel.clone());
    let sh = successive_halving_traced(&mut trainer, &everyone, world.stages, 1, &tel).unwrap();
    let trace = sink.report();

    // BF trains the full pool at every stage.
    assert_eq!(trace.counter("bf.stages"), Some(world.stages as f64));
    for t in 0..world.stages {
        assert_eq!(
            trace.counter(&stage_counter("bf", t, "pool")),
            Some(everyone.len() as f64)
        );
    }
    // SH pools shrink and match the returned pool history.
    assert_eq!(
        trace.counter("sh.stages"),
        Some(sh.pool_history.len() as f64)
    );
    for (t, pool) in sh.pool_history.iter().enumerate() {
        assert_eq!(
            trace.counter(&stage_counter("sh", t, "pool")),
            Some(pool.len() as f64),
            "SH stage {t}"
        );
    }
    // Both selectors' charged epochs land in the shared counter.
    assert_eq!(
        trace.counter("select.train_epochs"),
        Some(bf.ledger.train_epochs() + sh.ledger.train_epochs())
    );
}

#[test]
fn committed_budgets_pass_on_a_real_pipeline_trace() {
    let spec = budget::parse_spec(COMMITTED_BUDGETS).expect("budgets.toml must parse");
    for world in [World::cv(11), World::nlp(5)] {
        let (_, trace) = traced_run(&world, 0);
        let outcome = budget::check(&trace, &spec);
        assert!(
            outcome.ok(),
            "committed budgets.toml violated on a fresh trace: {:?}",
            outcome.violations
        );
        // Every phase-1 and Algorithm-1 rule actually evaluated — a typo'd
        // counter name would silently skip instead of pass.
        assert!(
            outcome.passed.len() >= 5,
            "expected the committed rules to engage, got {:?}",
            outcome.passed
        );
        // A fault-free one-shot run records neither fault/retry counters
        // nor `serve.*` service counters, an exact-mode run emits no
        // `ann.*` counters (their absence is the exactness contract), a
        // run that applied no updates emits no `incremental.*` counters,
        // and a run that opened no generation store emits no `store.*`
        // counters, so only those rule families may skip.
        assert!(
            outcome.skipped.iter().all(|r| r.starts_with("retry-")
                || r.starts_with("serve-")
                || r.starts_with("ann-")
                || r.starts_with("incremental-")
                || r.starts_with("store-")),
            "{:?}",
            outcome.skipped
        );
    }
}

#[test]
fn committed_budgets_reject_relaxed_halving() {
    // A selector that keeps MORE than half per stage violates Algorithm 1's
    // "filters more than half" bound — the committed spec must flag it with
    // a violation naming the offending stage.
    let spec = budget::parse_spec(COMMITTED_BUDGETS).unwrap();
    let (tel, sink) = Telemetry::recording();
    // Stage 0 keeps 8 of 10 (allowed max: ceil(10/2) = 5) — relaxed.
    tel.add_stage("fine", 0, "pool", 10.0);
    tel.add_stage("fine", 0, "dominated", 2.0);
    tel.add_stage("fine", 0, "halving_cut", 0.0);
    tel.add_stage("fine", 0, "survivors", 8.0);
    // Stage 1 halves properly: 8 -> 4.
    tel.add_stage("fine", 1, "pool", 8.0);
    tel.add_stage("fine", 1, "dominated", 3.0);
    tel.add_stage("fine", 1, "halving_cut", 1.0);
    tel.add_stage("fine", 1, "survivors", 4.0);
    let trace = sink.report();

    let outcome = budget::check(&trace, &spec);
    assert!(!outcome.ok());
    let v = outcome
        .violations
        .iter()
        .find(|v| v.rule == "algorithm1-filters-at-least-half")
        .expect("the Algorithm-1 rule must fire");
    assert_eq!(v.stage, Some(0), "violation must name the relaxed stage");
    assert_eq!(v.lhs, Some(8.0));
    assert_eq!(v.rhs, Some(5.0));
    // The honest stage stays clean.
    assert!(!outcome
        .violations
        .iter()
        .any(|v| v.rule == "algorithm1-filters-at-least-half" && v.stage == Some(1)));
}

#[test]
fn traced_runs_populate_hot_path_histograms() {
    let world = World::cv(11);
    let (out, trace) = traced_run(&world, 0);

    // Per-stage trainer latency: one observation per fine stage, wall-clock.
    let lat = trace.histograms.get("select.stage_train_us").unwrap();
    assert!(lat.is_wall_clock());
    assert_eq!(lat.count, out.counters.stages as u64);

    // Recall fan-out width: one observation, equal to the proxy eval count.
    let fanout = trace.histograms.get("recall.fanout_width").unwrap();
    assert!(!fanout.is_wall_clock());
    assert_eq!(fanout.count, 1);
    assert_eq!(fanout.sum, out.counters.proxy_evals as f64);

    // Proxy-scoring cost in epoch-equivalents.
    let proxy = trace
        .histograms
        .get("recall.proxy_epochs_per_call")
        .unwrap();
    assert_eq!(proxy.sum, out.recall.proxy_epochs);

    // Fine-selection pool widths sum to the total pool traffic.
    let width = trace.histograms.get("fine.stage_pool_width").unwrap();
    let pools: usize = out.counters.pool_per_stage.iter().sum();
    assert_eq!(width.sum, pools as f64);
    assert_eq!(width.count, out.counters.stages as u64);

    // Bucket counts always re-total to `count`.
    for (name, h) in &trace.histograms {
        assert_eq!(
            h.counts.iter().sum::<u64>(),
            h.count,
            "histogram {name} bucket totals"
        );
        assert_eq!(h.counts.len(), h.bounds.len() + 1, "histogram {name} shape");
    }
}
