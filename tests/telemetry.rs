//! Integration tests for the structured telemetry layer: counters recorded
//! during a traced `select` run must equal the ground truth the pipeline
//! itself returns in [`PipelineOutcome`] — stage count, survivors per
//! stage, and total epoch-equivalents — and the span tree must reflect the
//! two-phase control flow.

use tps_core::pipeline::{two_phase_select, two_phase_select_traced, PipelineConfig};
use tps_core::select::brute::brute_force_traced;
use tps_core::select::halving::successive_halving_traced;
use tps_core::telemetry::{stage_counter, Telemetry, TraceReport, TRACE_SCHEMA_VERSION};
use tps_zoo::{World, ZooOracle, ZooTrainer};

fn traced_run(world: &World, target: usize) -> (tps_core::pipeline::PipelineOutcome, TraceReport) {
    let (matrix, curves) = world.build_offline().unwrap();
    let artifacts = tps_core::pipeline::OfflineArtifacts::build(
        matrix,
        &curves,
        &tps_core::pipeline::OfflineConfig::default(),
    )
    .unwrap();
    let oracle = ZooOracle::new(world, target).unwrap();
    let (tel, sink) = Telemetry::recording();
    let mut trainer = ZooTrainer::new(world, target)
        .unwrap()
        .with_telemetry(tel.clone());
    let out = two_phase_select_traced(
        &artifacts,
        &oracle,
        &mut trainer,
        &PipelineConfig {
            total_stages: world.stages,
            ..Default::default()
        },
        &tel,
    )
    .unwrap();
    (out, sink.report())
}

#[test]
fn counters_match_pipeline_outcome_ground_truth() {
    let world = World::cv(11);
    let (out, trace) = traced_run(&world, 0);

    // Phase totals.
    assert_eq!(
        trace.counter("recall.proxy_evals"),
        Some(out.counters.proxy_evals as f64)
    );
    assert_eq!(
        trace.counter("recall.recalled"),
        Some(out.counters.recalled as f64)
    );
    assert_eq!(
        trace.counter("recall.recalled"),
        Some(out.recall.recalled.len() as f64)
    );
    assert_eq!(
        trace.counter("recall.proxy_epochs"),
        Some(out.recall.proxy_epochs)
    );
    assert_eq!(
        trace.counter("fine.stages"),
        Some(out.counters.stages as f64)
    );
    assert_eq!(
        trace.counter("fine.stages"),
        Some(out.selection.pool_history.len() as f64)
    );
    assert_eq!(
        trace.counter("select.train_epochs"),
        Some(out.counters.train_epochs)
    );

    // Epoch accounting closes: proxy + train == ledger total == counters.
    let proxy = trace.counter("recall.proxy_epochs").unwrap();
    let train = trace.counter("select.train_epochs").unwrap();
    assert!((proxy + train - out.ledger.total()).abs() < 1e-9);
    assert_eq!(out.counters.total_epochs, out.ledger.total());

    // Per-stage survivors, stage by stage.
    for (t, &survivors) in out.counters.survivors_per_stage.iter().enumerate() {
        assert_eq!(
            trace.counter(&stage_counter("fine", t, "pool")),
            Some(out.counters.pool_per_stage[t] as f64),
            "stage {t} pool"
        );
        assert_eq!(
            trace.counter(&stage_counter("fine", t, "survivors")),
            Some(survivors as f64),
            "stage {t} survivors"
        );
        // pool - dominated - halving_cut == survivors at every stage.
        let dominated = trace
            .counter(&stage_counter("fine", t, "dominated"))
            .unwrap();
        let cut = trace
            .counter(&stage_counter("fine", t, "halving_cut"))
            .unwrap();
        assert_eq!(
            out.counters.pool_per_stage[t] as f64 - dominated - cut,
            survivors as f64,
            "stage {t} balance"
        );
    }

    // The trainer's own counters agree with what the selector charged: the
    // zoo trainer runs one epoch per stage advanced.
    assert_eq!(
        trace.counter("zoo.train.stages"),
        Some(out.counters.train_epochs)
    );
}

#[test]
fn traced_and_untraced_runs_return_identical_outcomes() {
    let world = World::nlp(5);
    let target = world.target_by_name("mnli").unwrap();
    let (traced, _) = traced_run(&world, target);

    let (matrix, curves) = world.build_offline().unwrap();
    let artifacts = tps_core::pipeline::OfflineArtifacts::build(
        matrix,
        &curves,
        &tps_core::pipeline::OfflineConfig::default(),
    )
    .unwrap();
    let oracle = ZooOracle::new(&world, target).unwrap();
    let mut trainer = ZooTrainer::new(&world, target).unwrap();
    let plain = two_phase_select(
        &artifacts,
        &oracle,
        &mut trainer,
        &PipelineConfig {
            total_stages: world.stages,
            ..Default::default()
        },
    )
    .unwrap();

    assert_eq!(traced, plain);
}

#[test]
fn span_tree_mirrors_the_control_flow() {
    let world = World::cv(3);
    let (out, trace) = traced_run(&world, 1);

    assert_eq!(trace.version, TRACE_SCHEMA_VERSION);
    let pipeline = trace.find_span("pipeline.two_phase_select").unwrap();
    let recall = pipeline.find("recall.coarse").unwrap();
    assert!(recall.find("recall.proxy_scoring").is_some());
    let fine = pipeline.find("select.fine").unwrap();
    assert_eq!(fine.children.len(), out.counters.stages);
    for stage in &fine.children {
        assert_eq!(stage.name, "select.stage");
        assert_eq!(stage.children.len(), 1);
        assert_eq!(stage.children[0].name, "select.stage.train");
    }

    // Trace survives a JSON round trip unchanged.
    let json = serde_json::to_string(&trace).unwrap();
    let back: TraceReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.counters, trace.counters);
    assert_eq!(back.spans.len(), trace.spans.len());
}

#[test]
fn baseline_selectors_record_their_own_stage_counters() {
    let world = World::cv(7);
    let everyone: Vec<_> = (0..world.n_models())
        .map(tps_core::ids::ModelId::from)
        .collect();

    let (tel, sink) = Telemetry::recording();
    let mut trainer = ZooTrainer::new(&world, 0)
        .unwrap()
        .with_telemetry(tel.clone());
    let bf = brute_force_traced(&mut trainer, &everyone, world.stages, 1, &tel).unwrap();
    let mut trainer = ZooTrainer::new(&world, 0)
        .unwrap()
        .with_telemetry(tel.clone());
    let sh = successive_halving_traced(&mut trainer, &everyone, world.stages, 1, &tel).unwrap();
    let trace = sink.report();

    // BF trains the full pool at every stage.
    assert_eq!(trace.counter("bf.stages"), Some(world.stages as f64));
    for t in 0..world.stages {
        assert_eq!(
            trace.counter(&stage_counter("bf", t, "pool")),
            Some(everyone.len() as f64)
        );
    }
    // SH pools shrink and match the returned pool history.
    assert_eq!(
        trace.counter("sh.stages"),
        Some(sh.pool_history.len() as f64)
    );
    for (t, pool) in sh.pool_history.iter().enumerate() {
        assert_eq!(
            trace.counter(&stage_counter("sh", t, "pool")),
            Some(pool.len() as f64),
            "SH stage {t}"
        );
    }
    // Both selectors' charged epochs land in the shared counter.
    assert_eq!(
        trace.counter("select.train_epochs"),
        Some(bf.ledger.train_epochs() + sh.ledger.train_epochs())
    );
}
