//! Determinism proof for the incremental delta engine: after ANY random
//! sequence of zoo updates, the incrementally maintained artifacts must be
//! **byte-identical** (same serialized JSON) to a from-scratch offline
//! build on the post-update zoo — in exact mode, in the ANN-indexed
//! exhaustive regime (localized list patching) and in the beam regime
//! (id-order index rebuild), serial and parallel alike.

use proptest::prelude::*;
use tps_core::ann::AnnMode;
use tps_core::curve::{CurveSet, LearningCurve};
use tps_core::ids::ModelId;
use tps_core::incremental::{DeltaEngine, Update};
use tps_core::matrix::PerformanceMatrix;
use tps_core::parallel::ParallelConfig;
use tps_core::pipeline::{ClusterMethod, OfflineArtifacts, OfflineConfig};
use tps_core::trend::TrendConfig;

fn curve_for(f: f64) -> LearningCurve {
    let f = f.clamp(0.01, 1.0);
    LearningCurve::new(vec![f * 0.6, f * 0.85, f], f).unwrap()
}

/// One abstract update op; concretised against the current zoo shape so
/// any sequence stays applicable (names resolved modulo current counts,
/// retire/drop skipped at the size floor).
#[derive(Debug, Clone)]
enum Op {
    Add(f64),
    Retire(usize),
    Refresh(usize, f64),
    AddDataset(f64),
    DropDataset(usize),
}

/// The vendored proptest shim has no `prop_oneof`; encode the variant
/// choice and its operands as a flat tuple and decode.
fn op_strategy() -> impl Strategy<Value = Op> {
    ((0usize..5), (0usize..32), 0.05f64..0.95).prop_map(|(variant, pick, base)| match variant {
        0 => Op::Add(base),
        1 => Op::Retire(pick),
        2 => Op::Refresh(pick, base),
        3 => Op::AddDataset(base),
        _ => Op::DropDataset(pick),
    })
}

/// Resolve an abstract op against the current matrix, or `None` when the
/// zoo is at its size floor for that op.
fn concretise(op: &Op, matrix: &PerformanceMatrix, serial: u32) -> Option<Update> {
    let n = matrix.n_models();
    let d = matrix.n_datasets();
    match op {
        Op::Add(base) => Some(Update::AddModel {
            name: format!("added-{serial}"),
            benchmark_curves: (0..d)
                .map(|di| curve_for(base + 0.11 * di as f64 % 0.9))
                .collect(),
        }),
        Op::Retire(pick) => {
            if n <= 2 {
                return None;
            }
            Some(Update::RetireModel {
                name: matrix.model_name(ModelId::from(pick % n)).to_string(),
            })
        }
        Op::Refresh(pick, base) => Some(Update::RefreshModel {
            name: matrix.model_name(ModelId::from(pick % n)).to_string(),
            benchmark_curves: (0..d)
                .map(|di| curve_for(base + 0.07 * di as f64 % 0.9))
                .collect(),
        }),
        Op::AddDataset(base) => Some(Update::AddDataset {
            name: format!("ds-{serial}"),
            model_curves: (0..n)
                .map(|m| curve_for(base + 0.05 * m as f64 % 0.9))
                .collect(),
        }),
        Op::DropDataset(pick) => {
            if d <= 2 {
                return None;
            }
            Some(Update::DropDataset {
                name: matrix
                    .dataset_name(tps_core::ids::DatasetId::from(pick % d))
                    .to_string(),
            })
        }
    }
}

/// A small random zoo: accuracies in (0,1), 3..7 models, 2..4 datasets.
fn zoo_strategy() -> impl Strategy<Value = (PerformanceMatrix, CurveSet)> {
    ((3usize..7), (2usize..4)).prop_flat_map(|(n, d)| {
        prop::collection::vec(0.05f64..0.95, n * d).prop_map(move |acc| {
            let rows: Vec<Vec<f64>> = (0..d)
                .map(|di| (0..n).map(|m| acc[di * n + m]).collect())
                .collect();
            let matrix = PerformanceMatrix::new(
                (0..n).map(|m| format!("m{m}")).collect(),
                (0..d).map(|di| format!("d{di}")).collect(),
                rows,
            )
            .unwrap();
            let curves =
                CurveSet::from_fn(n, d, |m, di| curve_for(matrix.accuracy(di, m))).unwrap();
            (matrix, curves)
        })
    })
}

fn config_for(mode: AnnMode, ef_search: usize, threads: usize) -> OfflineConfig {
    let mut config = OfflineConfig {
        similarity_top_k: 2,
        cluster: ClusterMethod::HierarchicalThreshold(0.05),
        trend: TrendConfig {
            n_trends: 2,
            max_iter: 32,
        },
        trend_stages: 3,
        parallel: ParallelConfig::with_threads(threads),
        ann: Default::default(),
    };
    config.ann.mode = mode;
    config.ann.ef_search = ef_search;
    config.ann.k = config.ann.k.min(ef_search.saturating_sub(1).max(2));
    config
}

/// Apply the ops through the delta engine and assert each step's artifacts
/// serialize byte-identically to a from-scratch build on the same zoo.
fn check_sequence(
    matrix: &PerformanceMatrix,
    curves: &CurveSet,
    ops: &[Op],
    config: &OfflineConfig,
) {
    let arts = OfflineArtifacts::build(matrix.clone(), curves, config).unwrap();
    let mut engine = DeltaEngine::from_curve_set(arts, curves, config.clone()).unwrap();
    for (serial, op) in ops.iter().enumerate() {
        let Some(update) = concretise(op, &engine.artifacts().matrix, serial as u32) else {
            continue;
        };
        engine.apply_update(&update).unwrap();
        let table = engine.curves();
        let flat: Vec<LearningCurve> = table.iter().flat_map(|r| r.iter().cloned()).collect();
        let now = CurveSet::new(table.len(), table[0].len(), flat).unwrap();
        let scratch =
            OfflineArtifacts::build(engine.artifacts().matrix.clone(), &now, config).unwrap();
        assert_eq!(
            serde_json::to_string(engine.artifacts()).unwrap(),
            serde_json::to_string(&scratch).unwrap(),
            "incremental artifacts diverge from scratch build after op {serial} ({op:?}) \
             with config {config:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exact mode, serial: every update re-derives dense similarity and
    /// clustering exactly as the batch build does.
    #[test]
    fn random_updates_stay_byte_identical_exact(
        (matrix, curves) in zoo_strategy(),
        ops in prop::collection::vec(op_strategy(), 1..6),
    ) {
        let config = config_for(AnnMode::Exact, 48, 1);
        check_sequence(&matrix, &curves, &ops, &config);
    }

    /// Indexed exhaustive regime (ef_search >= n): the localized
    /// list-patching path must reproduce the batch kNN lists bit-for-bit.
    #[test]
    fn random_updates_stay_byte_identical_indexed_exhaustive(
        (matrix, curves) in zoo_strategy(),
        ops in prop::collection::vec(op_strategy(), 1..6),
    ) {
        let config = config_for(AnnMode::Indexed, 48, 1);
        check_sequence(&matrix, &curves, &ops, &config);
    }

    /// Indexed beam regime (ef_search < n): falls back to id-order index
    /// rebuilds, which must equal the batch build by construction.
    #[test]
    fn random_updates_stay_byte_identical_indexed_beam(
        (matrix, curves) in zoo_strategy(),
        ops in prop::collection::vec(op_strategy(), 1..6),
    ) {
        let config = config_for(AnnMode::Indexed, 3, 1);
        check_sequence(&matrix, &curves, &ops, &config);
    }

    /// Parallelism must not perturb a single byte: the same sequences at
    /// 4 worker threads equal the serial scratch build.
    #[test]
    fn random_updates_stay_byte_identical_parallel(
        (matrix, curves) in zoo_strategy(),
        ops in prop::collection::vec(op_strategy(), 1..5),
    ) {
        for mode in [AnnMode::Exact, AnnMode::Indexed] {
            let config = config_for(mode, 48, 4);
            check_sequence(&matrix, &curves, &ops, &config);
        }
    }
}
