//! Cross-crate integration: the full two-phase pipeline on the paper's
//! preset worlds, checked for selection quality, epoch accounting, and
//! determinism.

use tps_core::prelude::*;
use tps_zoo::{World, ZooOracle, ZooTrainer};

fn run_pipeline(world: &World, target: usize) -> (OfflineArtifacts, PipelineOutcome) {
    let (matrix, curves) = world.build_offline().expect("offline build");
    let artifacts =
        OfflineArtifacts::build(matrix, &curves, &OfflineConfig::default()).expect("artifacts");
    let oracle = ZooOracle::new(world, target).expect("target");
    let mut trainer = ZooTrainer::new(world, target).expect("target");
    let outcome = two_phase_select(
        &artifacts,
        &oracle,
        &mut trainer,
        &PipelineConfig {
            total_stages: world.stages,
            ..Default::default()
        },
    )
    .expect("pipeline");
    (artifacts, outcome)
}

#[test]
fn nlp_pipeline_selects_near_optimal_models() {
    let world = World::nlp(42);
    for target in 0..world.n_targets() {
        let (_, outcome) = run_pipeline(&world, target);
        let (_, best_acc) = world.best_model_for_target(target);
        assert!(
            outcome.selection.winner_test >= best_acc - 0.05,
            "target {}: selected {:.3} vs best {:.3}",
            world.targets[target].name,
            outcome.selection.winner_test,
            best_acc
        );
    }
}

#[test]
fn cv_pipeline_selects_near_optimal_models() {
    let world = World::cv(42);
    for target in 0..world.n_targets() {
        let (_, outcome) = run_pipeline(&world, target);
        let (_, best_acc) = world.best_model_for_target(target);
        assert!(
            outcome.selection.winner_test >= best_acc - 0.05,
            "target {}: selected {:.3} vs best {:.3}",
            world.targets[target].name,
            outcome.selection.winner_test,
            best_acc
        );
    }
}

#[test]
fn pipeline_cost_beats_brute_force_and_halving() {
    for world in [World::nlp(42), World::cv(42)] {
        let bf_epochs = (world.n_models() * world.stages) as f64;
        for target in 0..world.n_targets() {
            let (artifacts, outcome) = run_pipeline(&world, target);
            // Paper Table VI band: >= 5x vs brute force on the full zoo.
            assert!(
                outcome.ledger.total() * 5.0 <= bf_epochs,
                "{}: {} epochs vs BF {}",
                world.targets[target].name,
                outcome.ledger.total(),
                bf_epochs
            );
            // And cheaper than SH over the whole repository.
            let everyone: Vec<ModelId> = artifacts.matrix.model_ids().collect();
            let mut trainer = ZooTrainer::new(&world, target).expect("target");
            let sh = successive_halving(&mut trainer, &everyone, world.stages).expect("sh");
            assert!(outcome.ledger.total() < sh.ledger.total());
        }
    }
}

#[test]
fn pipeline_is_deterministic() {
    let world = World::nlp(7);
    let (_, a) = run_pipeline(&world, 1);
    let (_, b) = run_pipeline(&world, 1);
    assert_eq!(a.selection.winner, b.selection.winner);
    assert_eq!(a.ledger, b.ledger);
    assert_eq!(a.recall.ranked, b.recall.ranked);
}

#[test]
fn proxy_epochs_match_cluster_structure() {
    let world = World::cv(42);
    let (artifacts, outcome) = run_pipeline(&world, 0);
    let scored = artifacts.clustering.non_singleton_clusters().len();
    assert_eq!(outcome.ledger.proxy_epochs(), 0.5 * scored as f64);
}

#[test]
fn winner_comes_from_recalled_pool() {
    for seed in [1, 42, 99] {
        let world = World::cv(seed);
        let (_, outcome) = run_pipeline(&world, 2);
        assert!(
            outcome.recall.recalled.contains(&outcome.selection.winner),
            "seed {seed}"
        );
    }
}

#[test]
fn recalled_models_beat_repository_average() {
    // The Fig. 5 property as an invariant across seeds.
    for seed in [3, 42, 1234] {
        let world = World::nlp(seed);
        for target in 0..world.n_targets() {
            let (_, outcome) = run_pipeline(&world, target);
            let truth: Vec<f64> = (0..world.n_models())
                .map(|m| world.target_accuracy(ModelId::from(m), target))
                .collect();
            let repo_avg = truth.iter().sum::<f64>() / truth.len() as f64;
            let recalled_avg = outcome
                .recall
                .recalled
                .iter()
                .map(|m| truth[m.index()])
                .sum::<f64>()
                / outcome.recall.recalled.len() as f64;
            assert!(
                recalled_avg > repo_avg,
                "seed {seed} target {}: recalled {recalled_avg:.3} vs repo {repo_avg:.3}",
                world.targets[target].name
            );
        }
    }
}

#[test]
fn hyper_parameter_regime_does_not_change_selection_quality() {
    // The Appendix-A robustness claim: selection still lands near-optimal
    // under the low-LR regime.
    let mut world = World::nlp(42);
    world.hyper = tps_zoo::TrainHyper::LowLr;
    let target = world.target_by_name("mnli").expect("preset");
    let (_, outcome) = run_pipeline(&world, target);
    let (_, best) = world.best_model_for_target(target);
    assert!(outcome.selection.winner_test >= best - 0.05);
}
