//! Ensemble fine-selection on the simulated worlds: the §VI extension hook
//! exercised end to end.

use tps_core::ids::ModelId;
use tps_core::pipeline::{OfflineArtifacts, OfflineConfig};
use tps_core::select::ensemble::fine_selection_ensemble;
use tps_core::select::fine::{fine_selection, FineSelectionConfig};
use tps_zoo::{World, ZooTrainer};

fn artifacts_for(world: &World) -> OfflineArtifacts {
    let (matrix, curves) = world.build_offline().unwrap();
    OfflineArtifacts::build(matrix, &curves, &OfflineConfig::default()).unwrap()
}

#[test]
fn ensemble_members_are_strong_and_fully_trained() {
    let world = World::nlp(42);
    let artifacts = artifacts_for(&world);
    let pool: Vec<ModelId> = artifacts.matrix.model_ids().collect();
    let target = world.target_by_name("mnli").unwrap();

    let mut trainer = ZooTrainer::new(&world, target).unwrap();
    let out = fine_selection_ensemble(
        &mut trainer,
        &pool,
        world.stages,
        &artifacts.trends,
        &FineSelectionConfig::default(),
        3,
    )
    .unwrap();

    assert_eq!(out.members.len(), 3);
    // Every member is an above-median model on the target.
    let mut truth: Vec<f64> = pool
        .iter()
        .map(|&m| world.target_accuracy(m, target))
        .collect();
    truth.sort_by(f64::total_cmp);
    let median = truth[truth.len() / 2];
    for member in &out.members {
        let acc = world.target_accuracy(member.model, target);
        assert!(
            acc > median,
            "{:?} at {acc:.3} vs median {median:.3}",
            member.model
        );
        // Fully trained (test read at the final stage).
        assert!((0.0..=1.0).contains(&member.test));
    }
    // Members ranked by validation.
    assert!(out.members.windows(2).all(|w| w[0].val >= w[1].val));
}

#[test]
fn ensemble_costs_more_than_single_but_less_than_halving_floor() {
    let world = World::cv(42);
    let artifacts = artifacts_for(&world);
    let pool: Vec<ModelId> = artifacts.matrix.model_ids().collect();

    let mut t1 = ZooTrainer::new(&world, 0).unwrap();
    let single = fine_selection(
        &mut t1,
        &pool,
        world.stages,
        &artifacts.trends,
        &FineSelectionConfig::default(),
    )
    .unwrap();
    let mut t2 = ZooTrainer::new(&world, 0).unwrap();
    let ensemble = fine_selection_ensemble(
        &mut t2,
        &pool,
        world.stages,
        &artifacts.trends,
        &FineSelectionConfig::default(),
        4,
    )
    .unwrap();

    // Keeping 4 models alive costs more than keeping 1…
    assert!(ensemble.ledger.total() >= single.ledger.total());
    // …but no more than halving with a floor of 4:
    // 30 + 15 + 7 + 4 = 56 epochs for 4 stages.
    assert!(
        ensemble.ledger.total() <= 56.0,
        "{}",
        ensemble.ledger.total()
    );
    // The single winner is among (or beaten by) the ensemble.
    let best_member_test = ensemble
        .members
        .iter()
        .map(|m| m.test)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(best_member_test >= single.winner_test - 0.02);
}

#[test]
fn ensemble_majority_of_targets_contains_the_true_best() {
    let world = World::cv(42);
    let artifacts = artifacts_for(&world);
    let pool: Vec<ModelId> = artifacts.matrix.model_ids().collect();
    let mut hits = 0;
    for target in 0..world.n_targets() {
        let (best, _) = world.best_model_for_target(target);
        let mut trainer = ZooTrainer::new(&world, target).unwrap();
        let out = fine_selection_ensemble(
            &mut trainer,
            &pool,
            world.stages,
            &artifacts.trends,
            &FineSelectionConfig::default(),
            3,
        )
        .unwrap();
        if out.members.iter().any(|m| m.model == best) {
            hits += 1;
        }
    }
    assert!(
        hits >= 3,
        "true best inside the 3-ensemble on only {hits}/4 targets"
    );
}
