//! Property-based tests over the framework's core data structures and
//! invariants, spanning crates.

use proptest::prelude::*;
use tps_core::cluster::hierarchical::{agglomerate, Linkage};
use tps_core::cluster::kmeans::{kmeans, KMeansConfig};
use tps_core::cluster::silhouette::silhouette;
use tps_core::cluster::Clustering;
use tps_core::curve::LearningCurve;
use tps_core::ids::ModelId;
use tps_core::proxy::ensemble::{normalized_ranks, rank_ensemble};
use tps_core::proxy::leep::leep;
use tps_core::proxy::nce::nce;
use tps_core::proxy::{normalize_scores, PredictionMatrix};
use tps_core::select::fine::fine_filter;
use tps_core::similarity::{cosine_similarity, performance_similarity};
use tps_core::trend::{cluster_values_1d, mine_trends, TrendConfig};

/// Strategy: a probability vector of the given length.
fn prob_vector(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..1.0, len).prop_map(|mut v| {
        let sum: f64 = v.iter().sum();
        v.iter_mut().for_each(|x| *x /= sum);
        v
    })
}

/// Strategy: a prediction matrix with `n` samples over `z` source labels,
/// plus consistent target labels over `y` classes.
fn prediction_case() -> impl Strategy<Value = (PredictionMatrix, Vec<usize>, usize)> {
    (2usize..6, 2usize..5, 4usize..24).prop_flat_map(|(z, y, n)| {
        (
            prop::collection::vec(prob_vector(z), n),
            prop::collection::vec(0usize..y, n),
            Just(y),
        )
            .prop_map(move |(rows, labels, y)| {
                let flat: Vec<f64> = rows.into_iter().flatten().collect();
                (
                    PredictionMatrix::new(z, flat).expect("rows are distributions"),
                    labels,
                    y,
                )
            })
    })
}

/// Strategy: two accuracy vectors of one shared length.
fn acc_vector_pair(len: std::ops::Range<usize>) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    len.prop_flat_map(|n| {
        (
            prop::collection::vec(0.0f64..=1.0, n),
            prop::collection::vec(0.0f64..=1.0, n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn leep_is_nonpositive_and_finite((p, labels, y) in prediction_case()) {
        let s = leep(&p, &labels, y).unwrap();
        prop_assert!(s <= 1e-12, "LEEP {s} > 0");
        prop_assert!(s.is_finite());
    }

    #[test]
    fn nce_is_nonpositive_and_finite((p, labels, y) in prediction_case()) {
        let s = nce(&p, &labels, y).unwrap();
        prop_assert!(s <= 1e-12, "NCE {s} > 0");
        prop_assert!(s.is_finite());
    }

    #[test]
    fn leep_invariant_under_sample_permutation((p, labels, y) in prediction_case()) {
        let s1 = leep(&p, &labels, y).unwrap();
        // Reverse sample order.
        let n = p.n_samples();
        let z = p.n_source_labels();
        let mut rev = Vec::with_capacity(n * z);
        for i in (0..n).rev() {
            rev.extend_from_slice(p.row(i));
        }
        let pr = PredictionMatrix::new(z, rev).unwrap();
        let lr: Vec<usize> = labels.iter().rev().copied().collect();
        let s2 = leep(&pr, &lr, y).unwrap();
        prop_assert!((s1 - s2).abs() < 1e-9);
    }

    #[test]
    fn performance_similarity_is_symmetric_and_bounded(
        (v1, v2) in acc_vector_pair(1..30),
        k in 1usize..10,
    ) {
        let a = performance_similarity(&v1, &v2, k).unwrap();
        let b = performance_similarity(&v2, &v1, k).unwrap();
        prop_assert!((a - b).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&a), "sim {a}");
        // Self-similarity is exactly 1.
        let s = performance_similarity(&v1, &v1, k).unwrap();
        prop_assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_decreases_with_k_shrinking(
        (v1, v2) in acc_vector_pair(8..20),
    ) {
        // Averaging over fewer (larger) diffs cannot raise the similarity.
        let s1 = performance_similarity(&v1, &v2, 1).unwrap();
        let s3 = performance_similarity(&v1, &v2, 3).unwrap();
        let s8 = performance_similarity(&v1, &v2, 8).unwrap();
        prop_assert!(s1 <= s3 + 1e-12);
        prop_assert!(s3 <= s8 + 1e-12);
    }

    #[test]
    fn cosine_similarity_bounded((v1, v2) in acc_vector_pair(2..20)) {
        let c = cosine_similarity(&v1, &v2);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
    }

    #[test]
    fn normalize_scores_lands_in_unit_interval(v in prop::collection::vec(-1e3f64..1e3, 1..40)) {
        let n = normalize_scores(&v);
        prop_assert_eq!(n.len(), v.len());
        prop_assert!(n.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // Order preserved.
        for i in 0..v.len() {
            for j in 0..v.len() {
                if v[i] < v[j] {
                    prop_assert!(n[i] <= n[j] + 1e-12);
                }
            }
        }
    }

    #[test]
    fn normalized_ranks_properties(v in prop::collection::vec(-1e3f64..1e3, 2..30)) {
        let r = normalized_ranks(&v);
        prop_assert!(r.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // The maximum score gets rank 1 (unless tied).
        let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let n_max = v.iter().filter(|&&x| x == max).count();
        if n_max == 1 {
            let i = v.iter().position(|&x| x == max).unwrap();
            prop_assert!((r[i] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rank_ensemble_bounded(
        (a, b) in (3usize..15).prop_flat_map(|n| (
            prop::collection::vec(-10f64..10.0, n),
            prop::collection::vec(-10f64..10.0, n),
        )),
    ) {
        let e = rank_ensemble(&[a, b], None).unwrap();
        prop_assert!(e.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn kmeans_partitions_all_points(
        pts in prop::collection::vec(prop::collection::vec(-5f64..5.0, 3), 4..30),
        k in 1usize..5,
        seed in 0u64..1000,
    ) {
        prop_assume!(k <= pts.len());
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let c = kmeans(&pts, &KMeansConfig { k, n_restarts: 2, ..Default::default() }, &mut rng).unwrap();
        prop_assert_eq!(c.n_models(), pts.len());
        prop_assert!(c.n_clusters() <= k);
        prop_assert!(c.assignments().iter().all(|&a| a < c.n_clusters()));
    }

    #[test]
    fn hierarchical_cut_counts_are_exact(
        xs in prop::collection::vec(-100f64..100.0, 2..25),
        k in 1usize..10,
    ) {
        prop_assume!(k <= xs.len());
        let n = xs.len();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                d[i * n + j] = (xs[i] - xs[j]).abs();
            }
        }
        let dend = agglomerate(&d, n, Linkage::Average).unwrap();
        let c = dend.cut_k(k).unwrap();
        prop_assert_eq!(c.n_clusters(), k);
        prop_assert_eq!(c.n_models(), n);
    }

    #[test]
    fn hierarchical_merge_distances_nondecreasing_average_linkage(
        xs in prop::collection::vec(-100f64..100.0, 2..20),
    ) {
        let n = xs.len();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                d[i * n + j] = (xs[i] - xs[j]).abs();
            }
        }
        let dend = agglomerate(&d, n, Linkage::Average).unwrap();
        for w in dend.merges().windows(2) {
            // Average linkage on a metric: merges come in non-decreasing
            // distance order (reducibility).
            prop_assert!(w[1].distance >= w[0].distance - 1e-9);
        }
    }

    #[test]
    fn silhouette_bounded(
        xs in prop::collection::vec(-10f64..10.0, 4..25),
        seed in 0u64..500,
    ) {
        let n = xs.len();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                d[i * n + j] = (xs[i] - xs[j]).abs();
            }
        }
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let assign: Vec<usize> = (0..n).map(|_| rng.gen_range(0..3)).collect();
        let c = Clustering::new(assign).unwrap();
        prop_assume!(c.n_clusters() >= 2);
        let s = silhouette(&d, n, &c).unwrap();
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s), "silhouette {s}");
    }

    #[test]
    fn cluster_values_1d_is_a_partition(
        vals in prop::collection::vec(0f64..1.0, 2..40),
        k in 1usize..6,
    ) {
        let assign = cluster_values_1d(&vals, k, 32);
        prop_assert_eq!(assign.len(), vals.len());
        let n_clusters = assign.iter().copied().max().unwrap() + 1;
        prop_assert!(n_clusters <= k.min(vals.len()));
        // Labels are compact.
        for c in 0..n_clusters {
            prop_assert!(assign.contains(&c));
        }
        // Clusters are contiguous in value: no point of cluster a sits
        // strictly inside cluster b's range.
        for a in 0..n_clusters {
            let a_vals: Vec<f64> = vals.iter().zip(&assign).filter(|(_, &x)| x == a).map(|(v, _)| *v).collect();
            let (lo, hi) = (
                a_vals.iter().cloned().fold(f64::INFINITY, f64::min),
                a_vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            );
            for (v, &x) in vals.iter().zip(&assign) {
                if x != a {
                    prop_assert!(!(lo < *v && *v < hi), "value {v} of cluster {x} inside cluster {a}'s range [{lo},{hi}]");
                }
            }
        }
    }

    #[test]
    fn trend_mining_covers_every_dataset(
        finals in prop::collection::vec(0.05f64..0.95, 3..20),
        n_trends in 1usize..6,
    ) {
        let curves: Vec<LearningCurve> = finals
            .iter()
            .map(|&f| LearningCurve::new(vec![f * 0.6, f * 0.8, f], f).unwrap())
            .collect();
        let trends = mine_trends(&curves, 3, &TrendConfig { n_trends, max_iter: 32 }).unwrap();
        for t in 0..trends.n_stages() {
            let mut members: Vec<usize> = trends
                .at_stage(t)
                .iter()
                .flat_map(|tr| tr.members.iter().map(|d| d.index()))
                .collect();
            members.sort_unstable();
            let expected: Vec<usize> = (0..finals.len()).collect();
            prop_assert_eq!(&members, &expected);
            // Every trend's means are within the accuracy range.
            for tr in trends.at_stage(t) {
                prop_assert!((0.0..=1.0).contains(&tr.mean_val));
                prop_assert!((0.0..=1.0).contains(&tr.mean_test));
            }
        }
    }

    #[test]
    fn fine_filter_keeps_nonempty_subset(
        vals in prop::collection::vec(0.05f64..0.95, 2..12),
        threshold in 0f64..0.5,
    ) {
        let curves: Vec<LearningCurve> = (0..6)
            .map(|i| {
                let f = 0.2 + 0.12 * i as f64;
                LearningCurve::new(vec![f * 0.7, f], f).unwrap()
            })
            .collect();
        let book = tps_core::trend::TrendBook::from_parts(
            (0..vals.len())
                .map(|_| mine_trends(&curves, 2, &TrendConfig { n_trends: 3, max_iter: 16 }).unwrap())
                .collect(),
        )
        .unwrap();
        let pairs: Vec<(ModelId, f64)> = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| (ModelId::from(i), v))
            .collect();
        let kept = fine_filter(&pairs, 0, &book, threshold);
        prop_assert!(!kept.is_empty());
        prop_assert!(kept.len() <= pairs.len());
        // The best-validating model always survives.
        let best = pairs
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
            .0;
        prop_assert!(kept.contains(&best));
        // No duplicates.
        let mut sorted: Vec<_> = kept.iter().map(|m| m.index()).collect();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), kept.len());
    }

    #[test]
    fn zoo_accuracies_respect_dataset_envelope(seed in 0u64..200) {
        let world = tps_zoo::World::synthetic(&tps_zoo::SyntheticConfig {
            seed,
            n_families: 2,
            family_size: (2, 3),
            n_singletons: 2,
            n_benchmarks: 4,
            n_targets: 1,
            stages: 3,
        });
        let (matrix, curves) = world.build_offline().unwrap();
        for d in 0..world.n_benchmarks() {
            let spec = &world.benchmarks[d];
            for m in 0..world.n_models() {
                let a = matrix.accuracy(d.into(), m.into());
                prop_assert!(a >= (spec.chance - 0.05).max(0.0), "{a} below chance {}", spec.chance);
                prop_assert!(a <= (spec.ceiling + 0.05).min(1.0), "{a} above ceiling {}", spec.ceiling);
                let curve = curves.curve(m.into(), d.into());
                prop_assert!(curve.val().iter().all(|&v| (0.0..=1.0).contains(&v)));
            }
        }
    }

    #[test]
    fn epoch_ledger_arithmetic(
        train in prop::collection::vec(0f64..100.0, 0..20),
        proxy in prop::collection::vec(0f64..10.0, 0..20),
    ) {
        let mut ledger = tps_core::budget::EpochLedger::new();
        for &t in &train {
            ledger.charge_training(t);
        }
        for &p in &proxy {
            ledger.charge_proxy(p);
        }
        let ts: f64 = train.iter().sum();
        let ps: f64 = proxy.iter().sum();
        prop_assert!((ledger.train_epochs() - ts).abs() < 1e-6);
        prop_assert!((ledger.proxy_epochs() - ps).abs() < 1e-6);
        prop_assert!((ledger.total() - (ts + ps)).abs() < 1e-6);
    }
}
