//! Selection explainability: every removal decision the fine-selection
//! algorithm makes is recorded as a [`FilterEvent`], so an operator can ask
//! *why* a model was dropped — was it dominated by a trend prediction, or
//! cut by the halving cap?
//!
//! ```text
//! cargo run -p tps-bench --release --example selection_audit
//! ```

use tps_core::prelude::*;
use tps_core::select::FilterReason;
use tps_zoo::{World, ZooOracle, ZooTrainer};

fn main() -> Result<()> {
    let world = World::nlp(42);
    let (matrix, curves) = world.build_offline()?;
    let artifacts = OfflineArtifacts::build(matrix, &curves, &OfflineConfig::default())?;
    let target = world.target_by_name("mnli").expect("preset target");
    let oracle = ZooOracle::new(&world, target)?;
    let mut trainer = ZooTrainer::new(&world, target)?;
    let outcome = two_phase_select(
        &artifacts,
        &oracle,
        &mut trainer,
        &PipelineConfig {
            total_stages: world.stages,
            ..Default::default()
        },
    )?;

    let name = |m: ModelId| artifacts.matrix.model_name(m);
    println!(
        "selection audit for `mnli` — winner `{}` ({:.3}), {} removals:\n",
        name(outcome.selection.winner),
        outcome.selection.winner_test,
        outcome.selection.events.len()
    );
    for event in &outcome.selection.events {
        match event.reason {
            FilterReason::DominatedBy(by) => println!(
                "  stage {}: dropped {:<55} dominated by {} (better validation AND better predicted ceiling)",
                event.stage + 1,
                name(event.model),
                name(by)
            ),
            FilterReason::HalvingCut => println!(
                "  stage {}: dropped {:<55} halving cap (lowest validation among survivors)",
                event.stage + 1,
                name(event.model)
            ),
            FilterReason::Quarantined => println!(
                "  stage {}: dropped {:<55} quarantined after a permanent training fault",
                event.stage + 1,
                name(event.model)
            ),
        }
    }

    let dominated = outcome
        .selection
        .events
        .iter()
        .filter(|e| matches!(e.reason, FilterReason::DominatedBy(_)))
        .count();
    println!(
        "\n{} of {} removals came from trend prediction (the Algorithm 1 addition); \
         the rest from the plain halving cap.",
        dominated,
        outcome.selection.events.len()
    );
    println!(
        "cost: {} vs {} epochs for successive halving on the same pool",
        outcome.selection.ledger,
        {
            let mut t = ZooTrainer::new(&world, target)?;
            successive_halving(&mut t, &outcome.recall.recalled, world.stages)?
                .ledger
                .total()
        }
    );
    Ok(())
}
