//! Compare transferability proxies — LEEP, NCE, LogME, kNN, and their rank
//! ensemble (the paper's §VII future-work extension) — against the actual
//! fine-tuning accuracy of every model on a real-NN target task.
//!
//! ```text
//! cargo run -p tps-bench --release --example proxy_compare
//! ```

use tps_core::benchsel::pearson;
use tps_core::ids::ModelId;
use tps_core::proxy::ensemble::rank_ensemble;
use tps_core::proxy::knn::knn_proxy;
use tps_core::proxy::leep::leep;
use tps_core::proxy::logme::logme;
use tps_core::proxy::nce::nce;
use tps_core::traits::{FeatureOracle, ProxyOracle};
use tps_nn::{RealZoo, RealZooConfig};

fn main() -> tps_core::error::Result<()> {
    let zoo = RealZoo::generate(&RealZooConfig {
        seed: 31,
        n_families: 4,
        family_size: 3,
        n_singletons: 3,
        n_benchmarks: 6,
        n_targets: 2,
        // Short fine-tuning on genuinely hard tasks: outcomes spread out,
        // so a good proxy has something to predict.
        stages: 2,
        task_noise: 1.1,
        center_jitter: 0.2,
        ..Default::default()
    });
    let target = 0;
    let oracle = zoo.oracle(target)?;
    let labels = oracle.target_labels().to_vec();
    let n_labels = oracle.n_target_labels();

    // Ground truth: full fine-tune of every model (the expensive thing the
    // proxies are supposed to predict).
    let truth: Vec<f64> = (0..zoo.n_models())
        .map(|m| zoo.target_accuracy(ModelId::from(m), target))
        .collect();

    // Each proxy from a single inference pass per model.
    let mut leep_s = Vec::new();
    let mut nce_s = Vec::new();
    let mut logme_s = Vec::new();
    let mut knn_s = Vec::new();
    for m in 0..zoo.n_models() {
        let id = ModelId::from(m);
        let p = oracle.predictions(id)?;
        leep_s.push(leep(&p, &labels, n_labels)?);
        nce_s.push(nce(&p, &labels, n_labels)?);
        let (f, n, d) = oracle.features(id)?;
        logme_s.push(logme(&f, n, d, &labels, n_labels)?);
        knn_s.push(knn_proxy(&f, n, d, &labels, 5)?);
    }
    let combined = rank_ensemble(
        &[
            leep_s.clone(),
            nce_s.clone(),
            logme_s.clone(),
            knn_s.clone(),
        ],
        None,
    )?;

    println!(
        "{:<24} {:>7} {:>7} {:>7} {:>8} {:>6} {:>8}",
        "model", "truth", "LEEP", "NCE", "LogME", "kNN", "ensemble"
    );
    for m in 0..zoo.n_models() {
        println!(
            "{:<24} {:>7.3} {:>7.3} {:>7.3} {:>8.3} {:>6.3} {:>8.3}",
            zoo.models[m].name, truth[m], leep_s[m], nce_s[m], logme_s[m], knn_s[m], combined[m]
        );
    }

    println!("\nPearson correlation with actual fine-tuning accuracy:");
    for (name, scores) in [
        ("LEEP", &leep_s),
        ("NCE", &nce_s),
        ("LogME", &logme_s),
        ("kNN", &knn_s),
        ("rank ensemble", &combined),
    ] {
        println!("  {:<14} {:+.3}", name, pearson(scores, &truth));
    }
    Ok(())
}
