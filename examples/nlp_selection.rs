//! NLP walkthrough on the paper's 40-model repository: inspect the offline
//! artifacts, then compare brute force, successive halving, and the
//! two-phase pipeline on the MNLI target.
//!
//! ```text
//! cargo run -p tps-bench --release --example nlp_selection
//! ```

use tps_core::prelude::*;
use tps_zoo::{World, ZooOracle, ZooTrainer};

fn main() -> Result<()> {
    let world = World::nlp(42);
    let (matrix, curves) = world.build_offline()?;
    let artifacts = OfflineArtifacts::build(matrix, &curves, &OfflineConfig::default())?;

    println!("== offline artifacts");
    println!(
        "performance matrix: {} models x {} benchmark datasets",
        artifacts.matrix.n_models(),
        artifacts.matrix.n_datasets()
    );
    for c in artifacts.clustering.non_singleton_clusters() {
        let names: Vec<&str> = artifacts
            .clustering
            .members(c)
            .iter()
            .map(|&m| artifacts.matrix.model_name(m))
            .collect();
        println!("  cluster ({:2} models): {}", names.len(), names.join(", "));
    }

    let target = world.target_by_name("mnli").expect("preset target");
    println!("\n== online selection for target `mnli`");

    // Brute force: fine-tune all 40 models for 5 epochs each.
    let everyone: Vec<ModelId> = artifacts.matrix.model_ids().collect();
    let mut trainer = ZooTrainer::new(&world, target)?;
    let bf = brute_force(&mut trainer, &everyone, world.stages)?;
    report("brute force", &artifacts, &bf);

    // Successive halving over all models.
    let mut trainer = ZooTrainer::new(&world, target)?;
    let sh = successive_halving(&mut trainer, &everyone, world.stages)?;
    report("successive halving", &artifacts, &sh);

    // The two-phase pipeline: coarse-recall 10, fine-select.
    let oracle = ZooOracle::new(&world, target)?;
    let mut trainer = ZooTrainer::new(&world, target)?;
    let two_phase = two_phase_select(
        &artifacts,
        &oracle,
        &mut trainer,
        &PipelineConfig {
            total_stages: world.stages,
            ..Default::default()
        },
    )?;
    println!(
        "two-phase           -> `{}` acc {:.3} in {} ({:.1}x faster than BF)",
        artifacts.matrix.model_name(two_phase.selection.winner),
        two_phase.selection.winner_test,
        two_phase.ledger,
        bf.ledger.total() / two_phase.ledger.total(),
    );
    println!(
        "\nrecalled pool: {}",
        two_phase
            .recall
            .recalled
            .iter()
            .map(|&m| artifacts.matrix.model_name(m))
            .collect::<Vec<_>>()
            .join(", ")
    );
    Ok(())
}

fn report(label: &str, artifacts: &OfflineArtifacts, out: &SelectionOutcome) {
    println!(
        "{label:<19} -> `{}` acc {:.3} in {}",
        artifacts.matrix.model_name(out.winner),
        out.winner_test,
        out.ledger,
    );
}
