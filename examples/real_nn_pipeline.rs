//! The honest end-to-end run: the same selection pipeline, but every number
//! comes from **real SGD training** of micro neural networks (`tps-nn`)
//! instead of the parametric simulator.
//!
//! ```text
//! cargo run -p tps-bench --release --example real_nn_pipeline
//! ```
//!
//! Pre-trains a 14-model zoo, fine-tunes every model on every benchmark to
//! build the performance matrix, computes LEEP from genuine soft-max
//! outputs, and runs two-phase selection on a held-out target task.

use tps_core::prelude::*;
use tps_core::proxy::leep::leep;
use tps_nn::{RealZoo, RealZooConfig};

fn main() -> Result<()> {
    let zoo = RealZoo::generate(&RealZooConfig {
        seed: 23,
        n_families: 4,
        family_size: 3,
        n_singletons: 2,
        n_benchmarks: 8,
        n_targets: 2,
        stages: 4,
        ..Default::default()
    });
    println!(
        "pre-trained {} models (real SGD) on their upstream tasks",
        zoo.n_models()
    );

    // Offline: really fine-tune every model on every benchmark.
    let (matrix, curves) = zoo.build_offline()?;
    println!(
        "offline: {} fine-tuning runs, {} validation points",
        matrix.n_models() * matrix.n_datasets(),
        matrix.n_models() * matrix.n_datasets() * zoo.config.stages,
    );
    let artifacts = OfflineArtifacts::build(
        matrix,
        &curves,
        &OfflineConfig {
            similarity_top_k: 3,
            trend: TrendConfig {
                n_trends: 3,
                ..Default::default()
            },
            ..Default::default()
        },
    )?;

    // Inspect LEEP computed from real logits on the target.
    let target = 0;
    let oracle = zoo.oracle(target)?;
    println!(
        "\nLEEP scores on `{}` (real predictions):",
        zoo.targets[target].name
    );
    let mut scored: Vec<(String, f64)> = (0..zoo.n_models())
        .map(|m| {
            let id = ModelId::from(m);
            let p = oracle.predictions(id).expect("model exists");
            let s = leep(&p, oracle.target_labels(), oracle.n_target_labels())
                .expect("valid predictions");
            (zoo.models[m].name.clone(), s)
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (name, s) in &scored {
        println!("  {name:<24} {s:>7.3}");
    }

    // Full two-phase selection with a real trainer.
    let mut trainer = zoo.trainer(target)?;
    let out = two_phase_select(
        &artifacts,
        &oracle,
        &mut trainer,
        &PipelineConfig {
            recall: RecallConfig {
                top_k: 6,
                ..Default::default()
            },
            total_stages: zoo.config.stages,
            ..Default::default()
        },
    )?;
    println!(
        "\nselected `{}`: really fine-tuned to test accuracy {:.3} in {}",
        artifacts.matrix.model_name(out.selection.winner),
        out.selection.winner_test,
        out.ledger,
    );

    // Sanity: compare with ground truth (full fine-tune of every model).
    let (mut best_name, mut best_acc) = (String::new(), f64::NEG_INFINITY);
    for m in 0..zoo.n_models() {
        let acc = zoo.target_accuracy(ModelId::from(m), target);
        if acc > best_acc {
            best_acc = acc;
            best_name = zoo.models[m].name.clone();
        }
    }
    println!("ground-truth best: `{best_name}` at {best_acc:.3}");
    Ok(())
}
