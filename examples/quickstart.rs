//! Quickstart: select a pre-trained model for a new task in ~40 lines.
//!
//! ```text
//! cargo run -p tps-bench --release --example quickstart
//! ```
//!
//! Builds a small synthetic model repository, runs the offline phase once,
//! then answers one online query with the two-phase (coarse-recall +
//! fine-selection) pipeline.

use tps_core::prelude::*;
use tps_zoo::{SyntheticConfig, World, ZooOracle, ZooTrainer};

fn main() -> Result<()> {
    // A repository of ~30 models, 12 benchmark datasets, 2 target tasks.
    let world = World::synthetic(&SyntheticConfig {
        seed: 7,
        n_families: 5,
        family_size: (3, 5),
        n_singletons: 8,
        n_benchmarks: 12,
        n_targets: 2,
        stages: 5,
    });
    println!(
        "repository: {} models, {} benchmark datasets",
        world.n_models(),
        world.n_benchmarks()
    );

    // Offline (once per repository): fine-tune everything on the benchmarks,
    // cluster models, mine convergence trends.
    let (matrix, curves) = world.build_offline()?;
    let artifacts = OfflineArtifacts::build(matrix, &curves, &OfflineConfig::default())?;
    println!(
        "offline: {} clusters ({} non-singleton)",
        artifacts.clustering.n_clusters(),
        artifacts.clustering.non_singleton_clusters().len()
    );

    // Online (per target task): recall top-10 by proxy score, fine-select.
    let target = 0;
    let oracle = ZooOracle::new(&world, target)?;
    let mut trainer = ZooTrainer::new(&world, target)?;
    let outcome = two_phase_select(
        &artifacts,
        &oracle,
        &mut trainer,
        &PipelineConfig::default(),
    )?;

    println!(
        "\nselected `{}` for target `{}`",
        artifacts.matrix.model_name(outcome.selection.winner),
        world.targets[target].name
    );
    println!("  test accuracy  {:.3}", outcome.selection.winner_test);
    println!("  cost           {}", outcome.ledger);
    println!(
        "  vs brute force {} epochs",
        world.n_models() * world.stages
    );
    Ok(())
}
