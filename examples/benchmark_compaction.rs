//! Benchmark-dataset compaction (the paper's §VII future-work item "make
//! benchmark datasets more compact to maintain the performance matrix more
//! cheaply"): greedily pick a subset of benchmarks whose induced model
//! similarity preserves the full suite's, and show that clustering and
//! recall survive the compaction.
//!
//! ```text
//! cargo run -p tps-bench --release --example benchmark_compaction
//! ```

use tps_core::benchsel::compact_benchmarks;
use tps_core::cluster::hierarchical::{hierarchical_k, hierarchical_threshold, Linkage};
use tps_core::similarity::SimilarityMatrix;
use tps_zoo::World;

fn main() -> tps_core::error::Result<()> {
    let world = World::nlp(42);
    let (matrix, _) = world.build_offline()?;
    println!(
        "full benchmark suite: {} datasets ({} offline fine-tuning runs)",
        matrix.n_datasets(),
        matrix.n_datasets() * matrix.n_models()
    );

    let result = compact_benchmarks(&matrix, 5, 8)?;
    println!("\ngreedy compaction to 8 datasets:");
    for (step, (d, score)) in result
        .selected
        .iter()
        .zip(&result.preservation_curve)
        .enumerate()
    {
        println!(
            "  {}. + {:<22} similarity preservation {:.3}",
            step + 1,
            matrix.dataset_name(*d),
            score
        );
    }

    // How much structure survives: compare clusterings.
    let full_sim = SimilarityMatrix::from_performance(&matrix, 5)?;
    let compact = matrix.select_datasets(&result.selected)?;
    let compact_sim = SimilarityMatrix::from_performance(&compact, 5)?;
    let full_clusters = hierarchical_threshold(
        &full_sim.distance_matrix(),
        matrix.n_models(),
        0.05,
        Linkage::Average,
    )?;
    // Fewer datasets shrink every top-k distance, so compare structure at an
    // equal cluster count rather than an equal distance threshold.
    let compact_clusters = hierarchical_k(
        &compact_sim.distance_matrix(),
        matrix.n_models(),
        full_clusters.n_clusters(),
        Linkage::Average,
    )?;
    println!(
        "\nclusters: full suite {} vs compact suite {}",
        full_clusters.n_clusters(),
        compact_clusters.n_clusters()
    );
    let agree = (0..matrix.n_models())
        .flat_map(|i| ((i + 1)..matrix.n_models()).map(move |j| (i, j)))
        .filter(|&(i, j)| {
            let same_full =
                full_clusters.cluster_of(i.into()) == full_clusters.cluster_of(j.into());
            let same_compact =
                compact_clusters.cluster_of(i.into()) == compact_clusters.cluster_of(j.into());
            same_full == same_compact
        })
        .count();
    let total = matrix.n_models() * (matrix.n_models() - 1) / 2;
    println!(
        "pairwise co-clustering agreement: {agree}/{total} ({:.1}%)",
        100.0 * agree as f64 / total as f64
    );
    println!(
        "\noffline cost saved: {} -> {} fine-tuning runs ({:.0}%)",
        matrix.n_datasets() * matrix.n_models(),
        8 * matrix.n_models(),
        100.0 * (1.0 - 8.0 / matrix.n_datasets() as f64)
    );
    Ok(())
}
