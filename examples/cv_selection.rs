//! CV sweep on the paper's 30-model vision repository: run the two-phase
//! pipeline on all four target datasets and summarise against ground truth.
//!
//! ```text
//! cargo run -p tps-bench --release --example cv_selection
//! ```

use tps_core::prelude::*;
use tps_zoo::{World, ZooOracle, ZooTrainer};

fn main() -> Result<()> {
    let world = World::cv(42);
    let (matrix, curves) = world.build_offline()?;
    let artifacts = OfflineArtifacts::build(matrix, &curves, &OfflineConfig::default())?;
    let bf_epochs = (world.n_models() * world.stages) as f64;

    println!(
        "{:<16} {:<42} {:>6} {:>7} {:>7} {:>6}",
        "target", "selected model", "acc", "best", "epochs", "vs BF"
    );
    for t in 0..world.n_targets() {
        let oracle = ZooOracle::new(&world, t)?;
        let mut trainer = ZooTrainer::new(&world, t)?;
        let out = two_phase_select(
            &artifacts,
            &oracle,
            &mut trainer,
            &PipelineConfig {
                total_stages: world.stages,
                ..Default::default()
            },
        )?;
        let (_, best_acc) = world.best_model_for_target(t);
        println!(
            "{:<16} {:<42} {:>6.3} {:>7.3} {:>7.1} {:>5.1}x",
            world.targets[t].name,
            artifacts.matrix.model_name(out.selection.winner),
            out.selection.winner_test,
            best_acc,
            out.ledger.total(),
            bf_epochs / out.ledger.total(),
        );
    }
    Ok(())
}
