//! Incremental repository maintenance: new models arrive on the hub every
//! day; keep the offline artifacts current without a global rebuild.
//!
//! ```text
//! cargo run -p tps-bench --release --example incremental_update
//! ```
//!
//! Adds two models to the paper's NLP repository — a sibling of the qqp
//! family and an off-domain oddball — and shows the placement decisions,
//! then verifies the grown artifacts still drive a full selection.

use tps_core::incremental::{ModelAddition, Placement};
use tps_core::pipeline::{two_phase_select, OfflineArtifacts, OfflineConfig, PipelineConfig};
use tps_zoo::{Family, ModelSpec, World, ZooOracle, ZooTrainer};

fn main() -> tps_core::error::Result<()> {
    let mut world = World::nlp(42);
    let (matrix, curves) = world.build_offline()?;
    let config = OfflineConfig::default();
    let mut artifacts = OfflineArtifacts::build(matrix, &curves, &config)?;
    println!(
        "baseline: {} models, {} clusters",
        artifacts.matrix.n_models(),
        artifacts.clustering.n_clusters()
    );

    // Two arrivals: a qqp-family sibling and a totally off-domain model.
    let qqp_anchor = world
        .models
        .iter()
        .find(|m| m.name.contains("bert_ft_qqp-68"))
        .expect("preset model")
        .clone();
    let arrivals = vec![
        ModelSpec::new(
            "newlab/bert_ft_qqp-2024",
            qqp_anchor.family,
            qqp_anchor.domain,
            qqp_anchor.capability + 0.01,
            "qqp",
            2,
        ),
        // An oddball: strong, but trained on data resembling only the
        // dbpedia neighbourhood, where no existing family lives — its
        // performance vector (one strong region, weak elsewhere) matches
        // nobody's.
        ModelSpec::new(
            "newlab/dbpedia-specialist",
            Family::TextEncoder,
            world
                .benchmarks
                .iter()
                .find(|b| b.name == "dbpedia_14")
                .expect("preset benchmark")
                .domain,
            0.85,
            "dbpedia_14",
            14,
        ),
    ];

    for spec in arrivals {
        // The only cost: fine-tune the ONE new model on the benchmarks.
        let benchmark_curves = world
            .benchmarks
            .iter()
            .map(|b| {
                world
                    .law
                    .run(&spec, b, world.stages, world.hyper, world.seed)
                    .to_curve()
            })
            .collect();
        let report = artifacts.add_model(
            &ModelAddition {
                name: spec.name.clone(),
                benchmark_curves,
            },
            &config,
        )?;
        match report.placement {
            Placement::Joined {
                cluster,
                similarity,
            } => println!(
                "+ {}  -> joined cluster {cluster} (sim {similarity:.3}), e.g. {}",
                spec.name,
                artifacts
                    .matrix
                    .model_name(artifacts.clustering.members(cluster)[0])
            ),
            Placement::NewSingleton { cluster } => {
                println!("+ {}  -> new singleton cluster {cluster}", spec.name)
            }
        }
        world.models.push(spec);
    }

    println!(
        "grown: {} models, {} clusters — rebuilding would have cost {} fine-tuning runs; \
         incremental cost {}",
        artifacts.matrix.n_models(),
        artifacts.clustering.n_clusters(),
        artifacts.matrix.n_models() * artifacts.matrix.n_datasets(),
        2 * artifacts.matrix.n_datasets(),
    );

    // The grown artifacts still drive selection end-to-end.
    let target = world.target_by_name("mnli").expect("preset target");
    let oracle = ZooOracle::new(&world, target)?;
    let mut trainer = ZooTrainer::new(&world, target)?;
    let outcome = two_phase_select(
        &artifacts,
        &oracle,
        &mut trainer,
        &PipelineConfig {
            total_stages: world.stages,
            ..Default::default()
        },
    )?;
    println!(
        "selection on the grown repository: `{}` at {:.3} in {}",
        artifacts.matrix.model_name(outcome.selection.winner),
        outcome.selection.winner_test,
        outcome.ledger
    );
    Ok(())
}
