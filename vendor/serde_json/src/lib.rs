//! Offline, dependency-free subset of the `serde_json` API.
//!
//! Works over the vendored `serde` shim's owned [`Value`] tree: the usual
//! entry points (`to_string` / `to_string_pretty` / `to_vec` / `from_str` /
//! `from_slice` / `to_value` / `from_value`) plus a hand-rolled JSON
//! emitter and recursive-descent parser. Floats print via Rust's shortest
//! round-trip formatting (the `float_roundtrip` feature of the real crate
//! is the default here); non-finite floats serialize as `null`.

use serde::de::DeserializeOwned;
use serde::Serialize;

pub use serde::value::{Map, Number};
pub use serde::Value;

mod parse;
mod write;

/// Errors from (de)serialization or JSON parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.msg)
    }
}

/// Result alias, mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize any `Serialize` into an owned [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.serialize_value())
}

/// Deserialize a typed value out of an owned [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T> {
    T::deserialize_value(&value).map_err(Error::from)
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write::compact(&value.serialize_value(), &mut out);
    Ok(out)
}

/// Serialize to a pretty-printed (2-space indent) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write::pretty(&value.serialize_value(), 0, &mut out);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serialize to pretty-printed JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Parse a typed value from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let value = parse::parse(s)?;
    from_value(value)
}

/// Parse a typed value from JSON bytes (must be UTF-8).
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&"a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        let x: f64 = from_str("1e-3").unwrap();
        assert!((x - 0.001).abs() < 1e-15);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &x in &[0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 12345.6789e-7, -0.0] {
            let back: f64 = from_str(&to_string(&x).unwrap()).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} did not round-trip");
        }
    }

    #[test]
    fn collections_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("alpha".to_string(), vec![1u32, 2, 3]);
        m.insert("beta".to_string(), vec![]);
        let s = to_string(&m).unwrap();
        let back: BTreeMap<String, Vec<u32>> = from_str(&s).unwrap();
        assert_eq!(back, m);

        let pair = ("x".to_string(), vec![0.5f64]);
        let back: (String, Vec<f64>) = from_str(&to_string(&pair).unwrap()).unwrap();
        assert_eq!(back, pair);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![
            BTreeMap::from([("k".to_string(), 1u8)]),
            BTreeMap::from([("k".to_string(), 2u8)]),
        ];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<BTreeMap<String, u8>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Vec<u8>>("[1, 2").is_err());
        assert!(from_str::<bool>("troo").is_err());
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1] trailing").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let s: String = from_str("\"\\u00e9\\u0041\\t\"").unwrap();
        assert_eq!(s, "éA\t");
    }
}
