//! Recursive-descent JSON parser producing the owned [`Value`] tree.

use crate::Error;
use serde::value::{Map, Number, Value};

/// Parse a complete JSON document (rejects trailing garbage).
pub(crate) fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume a plain run.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Parse the `XXXX` after `\u` (cursor on the `u`), handling surrogate
    /// pairs. Leaves the cursor after the last consumed hex digit + 1.
    fn unicode_escape(&mut self) -> Result<char, Error> {
        self.pos += 1; // consume 'u'
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if (0xDC00..0xE000).contains(&lo) {
                        let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        return char::from_u32(cp)
                            .ok_or_else(|| self.err("invalid surrogate pair"));
                    }
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        let n = if is_float {
            Number::F(
                text.parse::<f64>()
                    .map_err(|_| self.err("invalid number"))?,
            )
        } else if let Ok(u) = text.parse::<u64>() {
            Number::U(u)
        } else if let Ok(i) = text.parse::<i64>() {
            Number::I(i)
        } else {
            Number::F(
                text.parse::<f64>()
                    .map_err(|_| self.err("invalid number"))?,
            )
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_stay_exact() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let v = parse("-42").unwrap();
        assert_eq!(v.as_i64(), Some(-42));
    }

    #[test]
    fn floats_parse() {
        let v = parse("-1.25e2").unwrap();
        assert_eq!(v.as_f64(), Some(-125.0));
    }

    #[test]
    fn nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "s"}"#).unwrap();
        assert_eq!(v["a"][0], 1u64);
        assert!(v["a"][1]["b"].is_null());
        assert_eq!(v["c"], "s");
    }
}
