//! JSON emission: compact and pretty (2-space indent) writers.

#[cfg(test)]
use serde::value::Map;
use serde::value::Value;

/// Append the compact JSON encoding of `v` to `out`.
pub(crate) fn compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                compact(item, out);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                compact(val, out);
            }
            out.push('}');
        }
    }
}

/// Append the pretty JSON encoding of `v` at `indent` levels to `out`.
pub(crate) fn pretty(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                escape_into(k, out);
                out.push_str(": ");
                pretty(val, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => compact(other, out),
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Re-exported for tests: compact encoding of a [`Map`].
#[cfg(test)]
pub(crate) fn compact_map(m: &Map) -> String {
    let mut out = String::new();
    compact(&Value::Object(m.clone()), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::value::Number;

    #[test]
    fn control_chars_escape() {
        let mut out = String::new();
        escape_into("a\u{01}b", &mut out);
        assert_eq!(out, "\"a\\u0001b\"");
    }

    #[test]
    fn nested_compact() {
        let mut m = Map::new();
        m.insert(
            "a".into(),
            Value::Array(vec![Value::Number(Number::U(1)), Value::Null]),
        );
        assert_eq!(compact_map(&m), "{\"a\":[1,null]}");
    }
}
