//! Offline, dependency-free subset of the `parking_lot` API.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free
//! interface: `lock()` / `read()` / `write()` return guards directly, and a
//! poisoned lock (a panic while holding the guard) is transparently
//! recovered rather than surfaced, matching `parking_lot` semantics.

use std::sync::{self, TryLockError};

/// Mutual exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never errors: poison
    /// from a panicking holder is recovered.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poison_is_recovered() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
