//! Offline, dependency-free subset of the `rand` 0.8 API.
//!
//! This workspace builds in environments with no crates.io access, so the
//! external `rand` crate is replaced by this vendored shim. It implements
//! exactly the surface the workspace uses — `StdRng`, `SeedableRng::
//! seed_from_u64`, `Rng::gen_range` / `Rng::gen`, and `seq::SliceRandom`
//! (`shuffle` / `choose`) — over a deterministic xoshiro256++ core seeded
//! via SplitMix64. Streams are stable across platforms and releases of this
//! workspace (they are *not* the upstream ChaCha streams; all in-repo
//! expectations are derived from this generator).

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators. Only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step: the canonical seed-expansion / child-seed function.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample a value of `T` from its standard distribution.
    fn gen<T: distributions::StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        distributions::unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    //! Uniform sampling support for `Rng::gen_range` / `Rng::gen`.

    use super::RngCore;

    /// Uniform f64 in `[0, 1)` using the top 53 bits.
    #[inline]
    pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Types sampleable by `Rng::gen`.
    pub trait StandardSample: Sized {
        /// Draw one sample from the standard distribution of `Self`.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl StandardSample for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
            unit_f64(rng)
        }
    }

    impl StandardSample for f32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
            unit_f64(rng) as f32
        }
    }

    impl StandardSample for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl StandardSample for u64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl StandardSample for u32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    pub mod uniform {
        //! Range sampling (`SampleRange`), mirroring `rand::distributions::uniform`.

        use super::super::RngCore;
        use super::unit_f64;
        use std::ops::{Range, RangeInclusive};

        /// Ranges that can produce a uniform sample of `T`.
        pub trait SampleRange<T> {
            /// Draw one sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "empty f64 range");
                self.start + (self.end - self.start) * unit_f64(rng)
            }
        }

        impl SampleRange<f64> for RangeInclusive<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty f64 range");
                lo + (hi - lo) * unit_f64(rng)
            }
        }

        impl SampleRange<f32> for Range<f32> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
                assert!(self.start < self.end, "empty f32 range");
                self.start + (self.end - self.start) * unit_f64(rng) as f32
            }
        }

        macro_rules! int_sample_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty integer range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let draw = rng.next_u64() as u128 % span;
                        (self.start as i128 + draw as i128) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty integer range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let draw = rng.next_u64() as u128 % span;
                        (lo as i128 + draw as i128) as $t
                    }
                }
            )*};
        }

        int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256++ seeded via SplitMix64.
    ///
    /// Not the upstream ChaCha12 `StdRng`; streams are stable for this
    /// workspace, which authors all of its own expectations.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small generator is the same core in this shim.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence utilities (`shuffle`, `choose`).

    use super::{Rng, RngCore};

    /// Random slice operations, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly choose one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// `rand::prelude` subset.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let k: usize = rng.gen_range(0..10);
            assert!(k < 10);
            let k: u8 = rng.gen_range(1..=255);
            assert!(k >= 1);
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
