//! Offline, dependency-free subset of the `serde` API.
//!
//! This workspace builds without crates.io access, so `serde` is replaced
//! by this vendored shim. It keeps serde's public surface (`Serialize`,
//! `Deserialize`, `de::DeserializeOwned`, the `#[derive(..)]` macros) but
//! simplifies the data model: serialization always goes through an owned
//! [`Value`] tree (the same tree `serde_json` exposes), rather than
//! serde's zero-copy visitor machinery. That is ample for this workspace,
//! whose only wire format is JSON.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Map, Number, Value};

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

/// (De)serialization error: a message plus optional field/element context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Create an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.msg)
    }
}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into an owned value tree.
    fn serialize_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse `Self` out of a value tree.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

pub mod de {
    //! Deserialization traits, mirroring `serde::de`.

    pub use crate::Deserialize;

    /// Marker for deserializable-from-owned-data types. In this shim every
    /// [`Deserialize`] qualifies.
    pub trait DeserializeOwned: Deserialize {}

    impl<T: Deserialize> DeserializeOwned for T {}
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U(v as u64))
                } else {
                    Value::Number(Number::I(v))
                }
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::F(f64::from(*self)))
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.serialize_value());
        }
        Value::Object(m)
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_value(&self) -> Value {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].serialize_value());
        }
        Value::Object(m)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {}", v.kind())))
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_number()
                    .ok_or_else(|| Error::custom(format!("expected integer, got {}", v.kind())))?;
                let wide = n
                    .as_i128()
                    .ok_or_else(|| Error::custom("expected integer, got non-integral number"))?;
                <$t>::try_from(wide).map_err(|_| {
                    Error::custom(format!(
                        "integer {wide} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::custom(format!("expected number, got {}", v.kind()))),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        f64::deserialize_value(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {}", v.kind())))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        T::deserialize_value(v).map(Arc::new)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {}", v.kind())))?;
        arr.iter()
            .enumerate()
            .map(|(i, e)| {
                T::deserialize_value(e).map_err(|err| Error::custom(format!("[{i}]: {err}")))
            })
            .collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {}", v.kind())))?;
        obj.iter()
            .map(|(k, val)| {
                V::deserialize_value(val)
                    .map(|parsed| (k.clone(), parsed))
                    .map_err(|err| Error::custom(format!("key `{k}`: {err}")))
            })
            .collect()
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {}", v.kind())))?;
        obj.iter()
            .map(|(k, val)| {
                V::deserialize_value(val)
                    .map(|parsed| (k.clone(), parsed))
                    .map_err(|err| Error::custom(format!("key `{k}`: {err}")))
            })
            .collect()
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::deserialize_value(v).map(|v| v.into_iter().collect())
    }
}

impl<T: Deserialize + Eq + Hash, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashSet<T, S>
{
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::deserialize_value(v).map(|v| v.into_iter().collect())
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let arr = v
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected array, got {}", v.kind())))?;
                if arr.len() != $len {
                    return Err(Error::custom(format!(
                        "expected array of length {}, got {}",
                        $len,
                        arr.len()
                    )));
                }
                Ok(($($t::deserialize_value(&arr[$n])
                    .map_err(|e| Error::custom(format!("[{}]: {e}", $n)))?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
    (5; 0 A, 1 B, 2 C, 3 D, 4 E)
    (6; 0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ---------------------------------------------------------------------------
// Support for derive-generated code
// ---------------------------------------------------------------------------

#[doc(hidden)]
pub mod __private {
    //! Helpers called by `serde_derive`-generated code. Not public API.

    use super::{Deserialize, Error, Map, Value};

    /// Fetch and parse a named struct field; a missing key reads as null
    /// (so `Option` fields default to `None`).
    pub fn field<T: Deserialize>(m: &Map, name: &str) -> Result<T, Error> {
        T::deserialize_value(m.get(name).unwrap_or(&Value::Null))
            .map_err(|e| Error::custom(format!("field `{name}`: {e}")))
    }

    /// Like [`field`], but a missing or null value yields `default()`
    /// instead — the backing for `#[serde(default)]` /
    /// `#[serde(default = "path")]`.
    pub fn field_or<T: Deserialize>(
        m: &Map,
        name: &str,
        default: impl FnOnce() -> T,
    ) -> Result<T, Error> {
        match m.get(name) {
            None | Some(Value::Null) => Ok(default()),
            Some(v) => {
                T::deserialize_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
            }
        }
    }

    /// Parse a positional element of a tuple variant / tuple struct.
    pub fn element<T: Deserialize>(arr: &[Value], idx: usize) -> Result<T, Error> {
        let v = arr
            .get(idx)
            .ok_or_else(|| Error::custom(format!("missing tuple element {idx}")))?;
        T::deserialize_value(v).map_err(|e| Error::custom(format!("[{idx}]: {e}")))
    }

    /// Expect an object, with type context in the error.
    pub fn expect_object<'v>(v: &'v Value, ty: &str) -> Result<&'v Map, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom(format!("{ty}: expected object, got {}", v.kind())))
    }

    /// Expect an array, with type context in the error.
    pub fn expect_array<'v>(v: &'v Value, ty: &str) -> Result<&'v [Value], Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("{ty}: expected array, got {}", v.kind())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(
            u32::deserialize_value(&42u32.serialize_value()).unwrap(),
            42
        );
        assert_eq!(
            i64::deserialize_value(&(-7i64).serialize_value()).unwrap(),
            -7
        );
        assert_eq!(
            f64::deserialize_value(&1.5f64.serialize_value()).unwrap(),
            1.5
        );
        assert_eq!(
            String::deserialize_value(&"hi".serialize_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::deserialize_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let back = Vec::<(u32, String)>::deserialize_value(&v.serialize_value()).unwrap();
        assert_eq!(back, v);

        let mut m = BTreeMap::new();
        m.insert("k".to_string(), vec![1.0, 2.0]);
        let back = BTreeMap::<String, Vec<f64>>::deserialize_value(&m.serialize_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn out_of_range_integer_errors() {
        let v = 300u32.serialize_value();
        assert!(u8::deserialize_value(&v).is_err());
    }
}
