//! The owned value tree shared by `serde` and `serde_json`: the JSON data
//! model (`null` / bool / number / string / array / object) with exact
//! integer preservation.

use std::fmt;
use std::ops::Index;

/// A JSON number. Integers are kept exact (`U`/`I`) rather than coerced to
/// `f64`, so u64 checksums and large counters survive round-trips.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// Value as `f64` (lossy for very large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    /// Value as an exact integer, if integral.
    pub fn as_i128(&self) -> Option<i128> {
        match *self {
            Number::U(u) => Some(i128::from(u)),
            Number::I(i) => Some(i128::from(i)),
            Number::F(f) => {
                if f.fract() == 0.0 && f.is_finite() && f.abs() < 9.0e18 {
                    Some(f as i128)
                } else {
                    None
                }
            }
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i128(), other.as_i128()) {
            (Some(a), Some(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U(u) => write!(f, "{u}"),
            Number::I(i) => write!(f, "{i}"),
            Number::F(x) => {
                if x.is_finite() {
                    // `{:?}` gives the shortest representation that
                    // round-trips, and always includes ".0" on whole
                    // floats, matching serde_json's float_roundtrip.
                    write!(f, "{x:?}")
                } else {
                    // JSON has no NaN/Inf; serialize as null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// An object: key/value pairs with preserved insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert (or replace) a key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether a key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// An owned JSON value tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// `true` if null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// As bool, if a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Underlying number, if a number.
    pub fn as_number(&self) -> Option<&Number> {
        match self {
            Value::Number(n) => Some(n),
            _ => None,
        }
    }

    /// As f64, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        self.as_number().map(Number::as_f64)
    }

    /// As i64, if an integral number in range.
    pub fn as_i64(&self) -> Option<i64> {
        self.as_number()
            .and_then(Number::as_i128)
            .and_then(|w| i64::try_from(w).ok())
    }

    /// As u64, if an integral non-negative number in range.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_number()
            .and_then(Number::as_i128)
            .and_then(|w| u64::try_from(w).ok())
    }

    /// As string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As array slice, if an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As object, if an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object-key lookup (`value.get("k")`), mirroring `serde_json`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;

    /// Object-key indexing; missing keys and non-objects read as null,
    /// matching `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_number()
                    .map(|n| *n == Number::I(*other as i64))
                    .unwrap_or(false)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
value_eq_int!(u8, u16, u32, i8, i16, i32, i64);

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_number()
            .map(|n| *n == Number::U(*other))
            .unwrap_or(false)
    }
}

impl PartialEq<usize> for Value {
    fn eq(&self, other: &usize) -> bool {
        self.as_number()
            .map(|n| *n == Number::U(*other as u64))
            .unwrap_or(false)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_equality_is_by_value() {
        assert_eq!(Number::U(1), Number::I(1));
        assert_eq!(Number::U(1), Number::F(1.0));
        assert_ne!(Number::F(1.5), Number::U(1));
    }

    #[test]
    fn indexing_missing_keys_gives_null() {
        let mut m = Map::new();
        m.insert("x".into(), Value::Number(Number::U(3)));
        let v = Value::Object(m);
        assert_eq!(v["x"], 3);
        assert!(v["missing"].is_null());
    }

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z".into(), Value::Null);
        m.insert("a".into(), Value::Null);
        let keys: Vec<_> = m.keys().cloned().collect();
        assert_eq!(keys, vec!["z".to_string(), "a".to_string()]);
    }
}
