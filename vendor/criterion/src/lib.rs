//! Offline, dependency-free subset of the Criterion benchmarking API.
//!
//! Provides the `criterion_group!` / `criterion_main!` macros, `Criterion`,
//! benchmark groups with `sample_size` / `throughput`, `bench_function` /
//! `bench_with_input`, and `Bencher::iter`. Measurement is a pragmatic
//! median-of-samples timer (auto-scaled iteration counts), not Criterion's
//! statistical machinery. Every run prints per-benchmark medians and
//! writes a JSON summary to `$CRITERION_SUMMARY` (default
//! `target/criterion-summary.json`) so baselines can be committed.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished measurement.
#[derive(Debug, Clone)]
struct Entry {
    id: String,
    median_ns: f64,
    samples: usize,
    iters_per_sample: u64,
    throughput: Option<Throughput>,
}

static REGISTRY: Mutex<Vec<Entry>> = Mutex::new(Vec::new());

/// Units processed per iteration, for derived rates in the summary.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Elements per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{parameter}", name.into()),
        }
    }

    /// Parameter-only id (group name supplies the prefix).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Things accepted as benchmark ids (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The display name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    result: Option<(f64, usize, u64)>, // (median ns/iter, samples, iters/sample)
}

impl Bencher {
    /// Caller-controlled measurement: `routine(iters)` runs the workload
    /// `iters` times and returns the total elapsed duration — upstream's
    /// escape hatch for costs that are not wall-clock (e.g. epoch budgets
    /// mapped onto `Duration`). Deterministic routines yield identical
    /// samples, which is fine: the median is still well-defined.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        let samples = self.sample_size.clamp(5, 100);
        let iters: u64 = 1;
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let d = routine(iters);
            per_iter.push(d.as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        self.result = Some((median, samples, iters));
    }

    /// Measure `routine`, auto-scaling iteration counts so each sample
    /// takes a measurable amount of time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + scale estimate.
        let start = Instant::now();
        std::hint::black_box(routine());
        let mut est = start.elapsed();
        if est.is_zero() {
            est = Duration::from_nanos(1);
        }
        // Aim for ~20ms per sample, capped to keep heavy benches bounded.
        let target = Duration::from_millis(20);
        let iters: u64 = (target.as_nanos() / est.as_nanos()).clamp(1, 100_000) as u64;
        let samples = self.sample_size.clamp(5, 100);

        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        self.result = Some((median, samples, iters));
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Begin a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id.to_string(), 10, None, f);
        self
    }

    /// Disable plot generation (a no-op — the shim never plots).
    pub fn without_plots(self) -> Self {
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Attach a throughput so the summary can derive rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(full, self.sample_size, self.throughput, f);
        self
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (measurements are already recorded).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: String,
    sample_size: usize,
    tp: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        sample_size,
        result: None,
    };
    f(&mut b);
    if let Some((median, samples, iters)) = b.result {
        println!("{id:<60} time: {}", fmt_ns(median));
        REGISTRY.lock().unwrap().push(Entry {
            id,
            median_ns: median,
            samples,
            iters_per_sample: iters,
            throughput: tp,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The host's available parallelism, as recorded in summary entries. Falls
/// back to 1 when the runtime cannot tell (matching `TPS_THREADS` default
/// semantics elsewhere in the workspace).
pub fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Write the JSON summary of all recorded measurements and clear the
/// registry. Called by `criterion_main!`; callable directly in tests.
///
/// Besides timings, every entry records the execution environment that
/// shaped them: `host_threads` (the machine's available parallelism) and,
/// when set, the `TPS_THREADS` override the workspace's parallel layer
/// honours — so committed baselines like `BENCH_parallel.json` say what
/// hardware produced them.
pub fn write_summary() {
    let entries = std::mem::take(&mut *REGISTRY.lock().unwrap());
    if entries.is_empty() {
        return;
    }
    let path = std::env::var("CRITERION_SUMMARY")
        .unwrap_or_else(|_| "target/criterion-summary.json".to_string());
    let host = host_threads();
    let tps_threads = std::env::var("TPS_THREADS")
        .ok()
        .map(|v| match v.parse::<usize>() {
            Ok(n) => format!(",\"tps_threads\":{n}"),
            Err(_) => format!(",\"tps_threads\":\"{}\"", json_escape(&v)),
        })
        .unwrap_or_default();
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let tp = match e.throughput {
            Some(Throughput::Bytes(n)) => format!(",\"throughput_bytes\":{n}"),
            Some(Throughput::Elements(n)) => format!(",\"throughput_elements\":{n}"),
            None => String::new(),
        };
        out.push_str(&format!(
            "  {{\"id\":\"{}\",\"median_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}{tp},\"host_threads\":{host}{tps_threads}}}",
            json_escape(&e.id),
            e.median_ns,
            e.samples,
            e.iters_per_sample
        ));
    }
    out.push_str("\n]\n");
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion shim: cannot write summary to {path}: {e}");
    } else {
        println!("criterion summary written to {path}");
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    // Upstream's explicit form with a custom `Criterion` configuration.
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups and writing the summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_summary();
        }
    };
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_threads_is_positive() {
        assert!(host_threads() >= 1);
    }

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        g.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        g.finish();
        let entries = REGISTRY.lock().unwrap();
        let e = entries
            .iter()
            .find(|e| e.id == "shim/sum")
            .expect("recorded");
        assert!(e.median_ns > 0.0);
    }
}
