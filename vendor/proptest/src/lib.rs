//! Offline, dependency-free subset of the `proptest` API.
//!
//! Supports the surface this workspace uses: the `proptest!` macro (with
//! optional `#![proptest_config(..)]`), `Strategy` with `prop_map` /
//! `prop_flat_map`, numeric range strategies, `Just`, `any::<T>()`,
//! string-from-regex strategies (a small character-class subset),
//! `prop::collection::{vec, btree_set}`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Simplifications vs upstream: cases are generated from a fixed
//! deterministic seed sequence (override with `PROPTEST_SEED`), and there
//! is **no shrinking** — a failing case reports its inputs via the assert
//! message but is not minimised.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{any, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError};

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::case_rng(__case);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __result = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            panic!("proptest case {} failed: {}", __case, __msg);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Discard the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}
