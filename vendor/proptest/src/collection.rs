//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Inclusive size bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generate vectors of `element` values with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeSet<S::Value>` with a size drawn from `size`.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
        let n = self.size.sample(rng);
        let mut set = BTreeSet::new();
        // Duplicates shrink the set below target; retry with a generous
        // attempt budget, then accept whatever accumulated (upstream
        // proptest similarly treats collection sizes as best-effort when
        // the element domain is small).
        let mut attempts = 0;
        while set.len() < n && attempts < 50 * (n + 1) {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// Generate `BTreeSet`s of `element` values with size in `size`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
