//! String generation from a small regex subset.
//!
//! Supported syntax: literal characters, character classes `[a-z0-9_]`
//! (ranges and singletons, no negation), and the quantifiers `{m}`,
//! `{m,n}`, `?`, `*`, `+` (`*`/`+` are capped at 8 repetitions). This
//! covers the patterns used as strategies in this workspace (e.g.
//! `"[a-z]{1,12}"`); anything else panics with a clear message.

use rand::rngs::StdRng;
use rand::Rng;

enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let count = rng.gen_range(piece.min..=piece.max);
        for _ in 0..count {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

fn sample_atom(atom: &Atom, rng: &mut StdRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                .sum();
            let mut idx = rng.gen_range(0..total);
            for (lo, hi) in ranges {
                let span = *hi as u32 - *lo as u32 + 1;
                if idx < span {
                    return char::from_u32(*lo as u32 + idx)
                        .expect("class range stays in valid chars");
                }
                idx -= span;
            }
            unreachable!("index within total span")
        }
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"))
                    + i
                    + 1;
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if chars[j] == '^' && j == i + 1 {
                        panic!("negated classes are not supported: `{pattern}`");
                    }
                    if j + 2 < close && chars[j + 1] == '-' {
                        ranges.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                assert!(!ranges.is_empty(), "empty class in pattern `{pattern}`");
                i = close + 1;
                Atom::Class(ranges)
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling `\\` in pattern `{pattern}`"));
                i += 2;
                match c {
                    'd' => Atom::Class(vec![('0', '9')]),
                    'w' => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    other => Atom::Literal(other),
                }
            }
            '(' | ')' | '|' | '.' => {
                panic!(
                    "unsupported regex feature `{}` in pattern `{pattern}`",
                    chars[i]
                )
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"))
                    + i
                    + 1;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier lower bound"),
                        hi.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_with_quantifier() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = generate("[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()), "bad length: {s:?}");
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase()),
                "bad chars: {s:?}"
            );
        }
    }

    #[test]
    fn literals_and_escapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = generate("ab\\.c\\d", &mut rng);
        assert!(s.starts_with("ab.c"));
        assert!(s.chars().last().unwrap().is_ascii_digit());
    }
}
