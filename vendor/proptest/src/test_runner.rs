//! Test-runner plumbing: configuration, case RNG derivation, case errors.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration. Only `cases` is honoured by this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure (fails the test).
    Fail(String),
    /// Rejected by `prop_assume!` (case is skipped).
    Reject(String),
}

/// Deterministic RNG for one case. The base seed is fixed (override with
/// the `PROPTEST_SEED` env var) so failures reproduce across runs.
pub fn case_rng(case: u32) -> StdRng {
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x7073_7465_7374_2131); // "pstest!1"
    StdRng::seed_from_u64(
        base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(case) + 1)),
    )
}
