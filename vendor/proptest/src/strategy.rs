//! The `Strategy` trait and core combinators.

use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is just a deterministic function of the case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Build a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Keep only values passing `pred` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates", self.whence);
    }
}

/// Always generate a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Sample uniformly from the whole domain of `Self`.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// Whole-domain strategy for `T`; see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` — `any::<u8>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Bounded uniform rather than bit-pattern soup: keeps generated
        // floats finite, which is what property bodies here expect.
        rng.gen_range(-1.0e9..1.0e9)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// String strategy from a regex-like pattern (see [`crate::string`]).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}
