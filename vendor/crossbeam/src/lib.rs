//! Offline, dependency-free subset of the `crossbeam` API.
//!
//! Provides `crossbeam::thread::scope` — scoped threads that may borrow
//! from the enclosing stack frame — implemented over `std::thread::scope`
//! (stable since Rust 1.63). The result is wrapped in `crossbeam`'s
//! `Result` shape; panics in spawned threads are propagated by the
//! underlying std scope on join.

pub mod thread {
    //! Scoped thread spawning.

    use std::any::Any;

    /// Error type carried by a panicked scope, matching `crossbeam`.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// The scope handle passed to [`scope`]'s closure. Spawn borrowing
    /// threads through it; all are joined before `scope` returns.
    pub use std::thread::Scope;
    /// Join handle for a scoped thread.
    pub use std::thread::ScopedJoinHandle;

    /// Create a scope for spawning threads that borrow from the caller.
    ///
    /// Unlike upstream crossbeam, spawn closures take no `&Scope`
    /// argument — use the scope handle given to the outer closure:
    ///
    /// ```
    /// let data = vec![1, 2, 3];
    /// let sum: i32 = crossbeam::thread::scope(|s| {
    ///     let handles: Vec<_> = data
    ///         .chunks(2)
    ///         .map(|c| s.spawn(move || c.iter().sum::<i32>()))
    ///         .collect();
    ///     handles.into_iter().map(|h| h.join().unwrap()).sum()
    /// })
    /// .unwrap();
    /// assert_eq!(sum, 6);
    /// ```
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        // std::thread::scope itself resumes unwinding if a spawned thread
        // panicked and was not joined, so reaching here means success.
        Ok(std::thread::scope(f))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data: Vec<u64> = (0..100).collect();
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(30)
                .map(|chunk| s.spawn(move || chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, (0..100).sum::<u64>());
    }
}
