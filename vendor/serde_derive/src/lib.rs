//! Offline, dependency-free subset of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored `serde` shim's value-tree data model, without `syn`/`quote`:
//! the input token stream is walked directly. Only the shapes this
//! workspace uses are supported — non-generic structs (named, tuple, unit)
//! and enums (unit / tuple / struct variants), plus the
//! `#[serde(transparent)]` attribute. Deserialization code leans on type
//! inference (`serde::__private::field`), so field *types* never need to
//! be parsed.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named struct/variant field plus its `#[serde(default)]` marker:
/// `None` = required, `Some(None)` = `Default::default()`,
/// `Some(Some(path))` = call `path()`.
struct Field {
    name: String,
    default: Option<Option<String>>,
}

/// Shape of one enum variant.
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    kind: Kind,
    transparent: bool,
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;

    // Outer attributes (doc comments arrive as #[doc = ...] too).
    while let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            let text = g.stream().to_string();
            if text.starts_with("serde") && text.contains("transparent") {
                transparent = true;
            }
            i += 2;
        } else {
            i += 1;
        }
    }

    // Visibility.
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }

    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive shim: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive shim: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive shim: generic type `{name}` is not supported");
        }
    }

    let kind = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Kind::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive shim: expected enum body, got {other:?}"),
        },
        other => panic!("serde derive shim: cannot derive for `{other}` items"),
    };

    Input {
        name,
        kind,
        transparent,
    }
}

/// Skip a run of `#[...]` attributes starting at `i`; returns the new index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() != '#' {
            break;
        }
        i += 1;
        if let Some(TokenTree::Group(_)) = tokens.get(i) {
            i += 1;
        }
    }
    i
}

/// Skip `pub` / `pub(...)` starting at `i`; returns the new index.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Advance past a type (or expression) until a top-level `,`, tracking
/// angle-bracket depth (parens/brackets/braces are atomic `Group` tokens).
fn skip_to_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle: i32 = 0;
    while let Some(tok) = tokens.get(i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Extract the `default` marker from a `serde(...)` attribute body:
/// `serde(default)` → `Some(None)`, `serde(default = "path")` →
/// `Some(Some("path"))`, anything else → `None`.
fn parse_default_attr(text: &str) -> Option<Option<String>> {
    // `text` is the attribute body, e.g. `serde(default = "path")` or
    // `serde (default)` depending on the tokenizer's spacing.
    let open = text.find('(')?;
    let close = text.rfind(')')?;
    for part in text.get(open + 1..close)?.split(',') {
        let part = part.trim();
        if part == "default" {
            return Some(None);
        }
        if let Some(rest) = part.strip_prefix("default") {
            let rest = rest.trim_start().strip_prefix('=')?.trim_start();
            let inner = rest.strip_prefix('"')?;
            let end = inner.find('"')?;
            return Some(Some(inner[..end].to_string()));
        }
    }
    None
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Scan attributes, remembering any `#[serde(default ...)]`.
        let mut default = None;
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                let text = g.stream().to_string();
                if text.starts_with("serde") {
                    if let Some(d) = parse_default_attr(&text) {
                        default = Some(d);
                    }
                }
                i += 1;
            }
        }
        i = skip_vis(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive shim: expected field name, got {other:?}"),
        };
        fields.push(Field { name, default });
        i += 1; // field name
        i = skip_to_comma(&tokens, i + 1); // ':' then the type
        i += 1; // ','
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        if i >= tokens.len() {
            break;
        }
        count += 1;
        i = skip_to_comma(&tokens, i) + 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive shim: expected variant name, got {other:?}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Tolerate (and ignore) explicit discriminants, then the comma.
        i = skip_to_comma(&tokens, i) + 1;
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// Deserialization initializer for one named field, honouring
/// `#[serde(default)]` / `#[serde(default = "path")]`.
fn field_init(f: &Field) -> String {
    let name = &f.name;
    match &f.default {
        None => format!("{name}: serde::__private::field(__m, \"{name}\")?"),
        Some(None) => format!(
            "{name}: serde::__private::field_or(__m, \"{name}\", \
             ::std::default::Default::default)?"
        ),
        Some(Some(path)) => {
            format!("{name}: serde::__private::field_or(__m, \"{name}\", {path})?")
        }
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            if input.transparent && fields.len() == 1 {
                format!(
                    "serde::Serialize::serialize_value(&self.{})",
                    fields[0].name
                )
            } else {
                let mut s = String::from("let mut __m = serde::value::Map::new();\n");
                for f in fields {
                    let f = &f.name;
                    s.push_str(&format!(
                        "__m.insert(::std::string::String::from(\"{f}\"), \
                         serde::Serialize::serialize_value(&self.{f}));\n"
                    ));
                }
                s.push_str("serde::Value::Object(__m)");
                s
            }
        }
        // Newtype structs serialize as their inner value (serde's default).
        Kind::TupleStruct(1) => "serde::Serialize::serialize_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Kind::UnitStruct => "serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => \
                         serde::Value::String(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "serde::Serialize::serialize_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::serialize_value({b})"))
                                .collect();
                            format!("serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{\n\
                             let mut __m = serde::value::Map::new();\n\
                             __m.insert(::std::string::String::from(\"{vn}\"), {payload});\n\
                             serde::Value::Object(__m)\n}}\n",
                            binds.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let mut inner = String::from("let mut __vm = serde::value::Map::new();\n");
                        for f in fields {
                            let f = &f.name;
                            inner.push_str(&format!(
                                "__vm.insert(::std::string::String::from(\"{f}\"), \
                                 serde::Serialize::serialize_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n{inner}\
                             let mut __m = serde::value::Map::new();\n\
                             __m.insert(::std::string::String::from(\"{vn}\"), \
                             serde::Value::Object(__vm));\n\
                             serde::Value::Object(__m)\n}}\n",
                            fields
                                .iter()
                                .map(|f| f.name.clone())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            if input.transparent && fields.len() == 1 {
                format!(
                    "::std::result::Result::Ok({name} {{ {}: \
                     serde::Deserialize::deserialize_value(__v)? }})",
                    fields[0].name
                )
            } else {
                let mut s =
                    format!("let __m = serde::__private::expect_object(__v, \"{name}\")?;\n");
                s.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
                for f in fields {
                    s.push_str(&field_init(f));
                    s.push_str(",\n");
                }
                s.push_str("})");
                s
            }
        }
        Kind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(serde::Deserialize::deserialize_value(__v)?))"
        ),
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::__private::element(__arr, {i})?"))
                .collect();
            format!(
                "let __arr = serde::__private::expect_array(__v, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Kind::UnitStruct => format!("let _ = __v;\n::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let unit: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .collect();
            let payload: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.shape, Shape::Unit))
                .collect();
            let mut s = String::new();
            if !unit.is_empty() {
                s.push_str("if let ::std::option::Option::Some(__s) = __v.as_str() {\n");
                s.push_str("match __s {\n");
                for v in &unit {
                    let vn = &v.name;
                    s.push_str(&format!(
                        "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),\n"
                    ));
                }
                s.push_str("_ => {}\n}\n}\n");
            }
            if !payload.is_empty() {
                s.push_str("if let ::std::option::Option::Some(__m) = __v.as_object() {\n");
                for v in &payload {
                    let vn = &v.name;
                    s.push_str(&format!(
                        "if let ::std::option::Option::Some(__inner) = __m.get(\"{vn}\") {{\n"
                    ));
                    match &v.shape {
                        Shape::Unit => unreachable!(),
                        Shape::Tuple(1) => s.push_str(&format!(
                            "return ::std::result::Result::Ok({name}::{vn}(\
                             serde::Deserialize::deserialize_value(__inner)?));\n"
                        )),
                        Shape::Tuple(n) => {
                            s.push_str(&format!(
                                "let __arr = serde::__private::expect_array(__inner, \
                                 \"{name}::{vn}\")?;\n"
                            ));
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("serde::__private::element(__arr, {i})?"))
                                .collect();
                            s.push_str(&format!(
                                "return ::std::result::Result::Ok({name}::{vn}({}));\n",
                                elems.join(", ")
                            ));
                        }
                        Shape::Named(fields) => {
                            s.push_str(&format!(
                                "let __vm = serde::__private::expect_object(__inner, \
                                 \"{name}::{vn}\")?;\n"
                            ));
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| field_init(f).replace("__m", "__vm"))
                                .collect();
                            s.push_str(&format!(
                                "return ::std::result::Result::Ok({name}::{vn} {{ {} }});\n",
                                inits.join(", ")
                            ));
                        }
                    }
                    s.push_str("}\n");
                }
                s.push_str("}\n");
            }
            s.push_str(&format!(
                "::std::result::Result::Err(serde::Error::custom(\
                 \"unknown variant for enum {name}\"))"
            ));
            s
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Deserialize for {name} {{\n\
         fn deserialize_value(__v: &serde::Value) -> \
         ::std::result::Result<Self, serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
