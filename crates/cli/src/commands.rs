//! Implementation of the `tps` subcommands. Each command is a function from
//! parsed flags to a rendered report string, so the whole surface is unit
//! testable without spawning processes.

use crate::args::{ArgError, ParsedArgs};
use std::fmt::Write as _;
use std::path::Path;
use tps_core::ann::{AnnConfig, AnnMode};
use tps_core::fault::{self, FaultPlan};
use tps_core::ids::ModelId;
use tps_core::parallel::ParallelConfig;
use tps_core::pipeline::{
    two_phase_select_traced, OfflineArtifacts, OfflineConfig, PipelineConfig,
};
use tps_core::recall::RecallConfig;
use tps_core::select::brute::brute_force_traced;
use tps_core::select::fine::FineSelectionConfig;
use tps_core::select::halving::successive_halving_traced;
use tps_core::telemetry::{analysis, budget, openmetrics, RecordingSink, Telemetry, TraceReport};
use tps_zoo::{SyntheticConfig, World, ZooOracle, ZooTrainer};

/// Top-level CLI error: argument problems, IO, or framework errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Bad command line.
    Args(ArgError),
    /// File IO / JSON problems.
    Io(String),
    /// Selection-framework error.
    Selection(tps_core::error::SelectionError),
    /// Anything else (unknown command, unknown target…).
    Usage(String),
    /// A gate failed — trace drift or budget violations. Carries the full
    /// rendered report; the process exits nonzero so CI fails.
    Failed(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "{e}"),
            // Render the whole cause chain: a quarantine-triggering
            // substrate failure prints as `... : caused by: ...` so the
            // underlying fault is visible from the shell.
            CliError::Selection(e) => write!(f, "{}", e.chain_to_string()),
            CliError::Usage(e) => write!(f, "{e}"),
            CliError::Failed(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Args(e) => Some(e),
            CliError::Selection(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<tps_core::error::SelectionError> for CliError {
    fn from(e: tps_core::error::SelectionError) -> Self {
        CliError::Selection(e)
    }
}

/// Run one parsed command, returning the text to print.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    match args.command.as_str() {
        "world" => cmd_world(args),
        "offline" => cmd_offline(args),
        "inspect" => cmd_inspect(args),
        "select" => cmd_select(args),
        "compare" => cmd_compare(args),
        "grow" => cmd_grow(args),
        "update" => cmd_update(args),
        "archive" => cmd_archive(args),
        "store" => cmd_store(args),
        "catalog" => cmd_catalog(args),
        "fsck" => cmd_fsck(args),
        "trace" => cmd_trace(args),
        "serve" => cmd_serve(args),
        "client" => cmd_client(args),
        "loadgen" => cmd_loadgen(args),
        "top" => cmd_top(args),
        "help" => Ok(usage()),
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`; try `tps help`"
        ))),
    }
}

/// The help text.
pub fn usage() -> String {
    "\
tps — two-phase model selection (coarse-recall + fine-selection)

commands:
  world    generate a synthetic world        --domain nlp|cv|synthetic [--seed N]
                                             [--models N --benchmarks N --targets N
                                             --stages N] --out FILE
  offline  build offline artifacts           --world FILE --out FILE [--top-k-sim N]
                                             [--threshold F] [--threads N]
                                             [--trace-out FILE] [--ann exact|indexed]
                                             [--ann-k N] [--ann-ef N] [--stream-batch N]
  inspect  summarise offline artifacts       --artifacts FILE
  select   two-phase selection for a target  --world FILE --artifacts FILE
                                             --target NAME [--top-k N] [--threshold F]
                                             [--stages N] [--threads N] [--trace-out FILE]
                                             [--fault-plan FILE | --fault-seed N]
                                             [--ann exact|indexed] [--ann-k N] [--ann-ef N]
  compare  BF vs SH vs 2PH on one target     --world FILE --artifacts FILE --target NAME
                                             [--threads N] [--trace-out FILE]
                                             [--fault-plan FILE | --fault-seed N]

`--threads 0` resolves the worker count from $TPS_THREADS or the machine's
available parallelism; results are identical for any thread count.
`--trace-out FILE` records structured telemetry (per-phase wall-clock spans
plus proxy-eval / epoch / survivor counters) and writes it as JSON.
`--fault-plan FILE` injects scripted substrate faults (one `site model
attempt kind` line each, e.g. `advance m3 1 transient`); `--fault-seed N`
generates a pseudo-random schedule instead. The pipeline retries transient
failures and quarantines models lost to permanent ones; casualties are
listed in the output and recorded in the trace.
`--ann indexed` turns on ANN-indexed mode: the offline build replaces the
dense O(M^2) similarity matrix with an HNSW-style index (and supports
`--stream-batch N` to fold models in waves without holding every curve),
and online recall proxy-scores only ~k*log(M) index-near clusters instead
of every representative. `--ann exact` (the default) is byte-identical to
the pre-index behaviour. `--ann-k` / `--ann-ef` tune neighbour count and
search beam; results are deterministic for any thread count either way.
  grow     add a model incrementally         --world FILE --artifacts FILE --name NAME
                                             [--like MODEL] [--capability F] [--seed N]
  update   apply a deterministic churn       --world FILE --artifacts FILE [--ops N]
           stream (add/retire/refresh        [--seed N] [--top-k-sim N] [--threshold F]
           models, add/drop benchmarks)      [--threads N] [--trace-out FILE]
           through the incremental delta     [--ann exact|indexed] [--ann-k N] [--ann-ef N]
           engine; both files are rewritten  (flags must match the original offline build
           in place, byte-identical to a     for the byte-identity guarantee to hold)
           from-scratch offline build
  archive  persist world+artifacts durably   --store DIR --name TAG --world FILE
                                             --artifacts FILE [--force true]
  store    versioned generations of raw artifact files (content-addressed):
           store commit --store DIR --world FILE --artifacts FILE [--note TEXT]
           store log --store DIR               history from head, newest first
           store diff A B --store DIR          entry-level changes between generations
           store rollback N --store DIR        move head back to generation N
           store cat N ENTRY --store DIR --out FILE   extract entry bytes verbatim
           store export N --store DIR --out FILE      one-file bundle of generation N
           store import FILE --store DIR              ingest an exported bundle
           store gc --store DIR                drop generations/blobs unreachable from head
  catalog  list a store's contents           --store DIR
  fsck     verify every stored record        --store DIR [--repair true]
           `--repair true` quarantines corrupt/truncated records and orphan
           blobs into DIR/quarantine/ and reindexes salvageable ones
  trace    analyse --trace-out files:
           trace summarize FILE [--top N] [--format text|json]
                                               top spans by self-time + counter tables
           trace diff A B [--tolerance F]      deterministic drift check, nonzero on drift
           trace check FILE [--budgets FILE]   evaluate budgets.toml cost invariants
           trace export FILE [--out FILE]      OpenMetrics/Prometheus text exposition
           trace baseline FILE --out FILE      strip to deterministic payload for committing
  serve    resident selection service         (--store DIR --name TAG | --world FILE
                                             --artifacts FILE) [--addr HOST:PORT]
                                             [--max-inflight N] [--queue-depth N]
                                             [--cache N] [--threads N] [--top-k N]
                                             [--threshold F] [--stages N]
                                             [--ann exact|indexed] [--ann-k N] [--ann-ef N]
                                             [--ready-file FILE] [--trace-out FILE]
                                             [--access-log FILE] [--slo-ms N]
                                             [--max-line-bytes N] [--stall-timeout-ms N]
                                             [--net-fault-plan FILE] [--shards N]
                                             [--batch-window-ticks N]
           a `{\"op\":\"reload\"}` request (or SIGHUP) hot-swaps to the current
           on-disk world+artifacts without dropping in-flight requests;
           request lines over --max-line-bytes (default 1 MiB) are rejected
           with a `malformed` envelope, and a partial line idle past
           --stall-timeout-ms (default 30000; 0 disables) drops the
           connection; --net-fault-plan injects deterministic response
           faults (`response INDEX disconnect|partial|garbage|stall`) for
           chaos drills; --shards N partitions the zoo across N scatter/
           gather shard workers (cluster -> shard is a pure function of the
           partition seed, and responses are byte-identical at any shard
           count); --batch-window-ticks N coalesces proxy scorings and
           halving fan-outs from different in-flight requests into one
           substrate call per N-tick window (0 disables; both require
           --ann exact)
  client   send requests to a running server  --addr HOST:PORT [--request JSON]
                                             [--file FILE] [--metrics true]
                                             [--shutdown true] [--retries N]
                                             [--retry-backoff-ms N] [--timeout-ms N]
                                             (stdin lines when no request source given)
           --retries reconnects and resends through severed/garbled/stalled
           connections; safe because retried responses are byte-identical
  loadgen  open-loop load generator           --addr HOST:PORT --targets A,B,C
                                             [--requests N] [--interval-us N]
                                             [--conns N] [--seed N] [--top-k N]
                                             [--format text|json]
           drives a running server with a deterministic arrival schedule
           (request n is due at t0 + n*interval, target chosen by seeded
           mix) and reports p50/p95/p99/max latency measured from each
           request's *scheduled* arrival, so sender slip is charged to
           the server
  top      live dashboard over a server       --addr HOST:PORT [--interval-ms N]
                                             [--samples N] [--once true]
           polls `{\"op\":\"metrics\"}` + `{\"op\":\"stats\"}` and renders rates,
           window percentiles, occupancy, generation, SLO burn, and — when
           the scatter plane is on — per-shard busy/jobs occupancy and
           batch-width gauges; `--once true` prints one machine-readable
           JSON line for CI
  help     this message

`tps serve` loads the artifacts once, then answers line-delimited JSON
selection requests (e.g. `{\"id\":1,\"target\":\"mnli\"}`) until a
`{\"op\":\"shutdown\"}` request or SIGTERM drains it; the drain flushes one
aggregate trace (`--trace-out`) that `tps trace check` can audit. The
server is observable while live: `{\"op\":\"metrics\"}` (or `tps client
--metrics true`) scrapes an OpenMetrics snapshot without draining,
`--access-log FILE` records one JSONL line per admitted request off the
critical path, and `--slo-ms N` burns `serve.slo_violations` for every
answered request slower than the objective.
"
    .to_string()
}

fn read_json<T: serde::de::DeserializeOwned>(path: &str) -> Result<T, CliError> {
    let data = std::fs::read_to_string(Path::new(path))
        .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
    serde_json::from_str(&data).map_err(|e| CliError::Io(format!("cannot parse {path}: {e}")))
}

fn write_json<T: serde::Serialize>(path: &str, value: &T) -> Result<(), CliError> {
    let data =
        serde_json::to_string(value).map_err(|e| CliError::Io(format!("cannot serialize: {e}")))?;
    std::fs::write(Path::new(path), data)
        .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))
}

fn cmd_world(args: &ParsedArgs) -> Result<String, CliError> {
    args.restrict(&[
        "domain",
        "seed",
        "models",
        "benchmarks",
        "targets",
        "stages",
        "out",
    ])?;
    let seed = args.get_parse("seed", 42u64, "integer")?;
    let out = args.require("out")?;
    let world = match args.get("domain").unwrap_or("nlp") {
        "nlp" => World::nlp(seed),
        "cv" => World::cv(seed),
        "synthetic" => {
            let models = args.get_parse("models", 40usize, "integer")?;
            // Models split ~2/3 into families of ~4, 1/3 singletons.
            let n_singletons = models / 3;
            let n_families = ((models - n_singletons) / 4).max(1);
            World::synthetic(&SyntheticConfig {
                seed,
                n_families,
                family_size: (3, 5),
                n_singletons,
                n_benchmarks: args.get_parse("benchmarks", 20usize, "integer")?,
                n_targets: args.get_parse("targets", 4usize, "integer")?,
                stages: args.get_parse("stages", 5usize, "integer")?,
            })
        }
        other => {
            return Err(CliError::Usage(format!(
                "--domain must be nlp, cv or synthetic (got {other})"
            )))
        }
    };
    write_json(out, &world)?;
    Ok(format!(
        "wrote world to {out}: {} models, {} benchmark datasets, {} targets ({} stages)\n",
        world.n_models(),
        world.n_benchmarks(),
        world.n_targets(),
        world.stages,
    ))
}

/// Parse `--threads N` into a [`ParallelConfig`] (default: serial; `0`
/// resolves from `TPS_THREADS` / available parallelism).
fn parallel_config(args: &ParsedArgs) -> Result<ParallelConfig, CliError> {
    Ok(ParallelConfig::with_threads(
        args.get_parse("threads", 1usize, "integer")?,
    ))
}

/// Telemetry plumbing for `--trace-out FILE`: without the flag, tracing is
/// disabled (and costs nothing); with it, a recording sink collects spans +
/// counters which [`write_trace`] renders to the file after the command.
fn telemetry_for(args: &ParsedArgs) -> (Telemetry, Option<std::sync::Arc<RecordingSink>>) {
    if args.get("trace-out").is_some() {
        let (tel, sink) = Telemetry::recording();
        (tel, Some(sink))
    } else {
        (Telemetry::disabled(), None)
    }
}

/// Write the collected trace (if any) to the `--trace-out` path, appending
/// a note to the command output.
fn write_trace(
    args: &ParsedArgs,
    sink: Option<std::sync::Arc<RecordingSink>>,
    out: &mut String,
) -> Result<(), CliError> {
    if let (Some(sink), Some(path)) = (sink, args.get("trace-out")) {
        let report = sink.report();
        write_json(path, &report)?;
        let _ = writeln!(
            out,
            "wrote trace to {path}: {} root span(s), {} counter(s)",
            report.spans.len(),
            report.counters.len()
        );
    }
    Ok(())
}

/// Run a traced command body. On success the trace is written normally; on
/// error the partial trace is still flushed, marked `"completed": false`,
/// so failed runs stay diagnosable instead of silently dropping telemetry.
fn with_trace(
    args: &ParsedArgs,
    body: impl FnOnce(&Telemetry) -> Result<String, CliError>,
) -> Result<String, CliError> {
    let (tel, sink) = telemetry_for(args);
    match body(&tel) {
        Ok(mut out) => {
            write_trace(args, sink, &mut out)?;
            Ok(out)
        }
        Err(e) => {
            if let (Some(sink), Some(path)) = (sink, args.get("trace-out")) {
                let mut report = sink.report();
                report.completed = false;
                // Best-effort: the pipeline error stays the primary failure.
                let _ = write_json(path, &report);
            }
            Err(e)
        }
    }
}

/// Parse `--fault-plan FILE` / `--fault-seed N` into an optional fault
/// schedule. The flags are mutually exclusive; a seeded plan schedules a
/// handful of faults over the repository's models.
fn fault_plan_from(args: &ParsedArgs, n_models: usize) -> Result<Option<FaultPlan>, CliError> {
    match (args.get("fault-plan"), args.get("fault-seed")) {
        (Some(_), Some(_)) => Err(CliError::Usage(
            "--fault-plan and --fault-seed are mutually exclusive".into(),
        )),
        (Some(path), None) => {
            let text = std::fs::read_to_string(Path::new(path))
                .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
            Ok(Some(FaultPlan::parse(&text)?))
        }
        (None, Some(_)) => {
            let seed = args.get_parse("fault-seed", 0u64, "integer")?;
            Ok(Some(FaultPlan::seeded(seed, n_models, 4, 3)))
        }
        (None, None) => Ok(None),
    }
}

/// Parse `--ann exact|indexed` plus `--ann-k N` / `--ann-ef N` overrides
/// into an [`AnnConfig`] (defaults: exact mode, the core's tuning).
fn ann_config(args: &ParsedArgs) -> Result<AnnConfig, CliError> {
    let mut config = AnnConfig::default();
    if let Some(mode) = args.get("ann") {
        config.mode = mode
            .parse()
            .map_err(|_| CliError::Usage("--ann must be `exact` or `indexed`".into()))?;
    }
    config.k = args.get_parse("ann-k", config.k, "integer")?;
    config.ef_search = args.get_parse("ann-ef", config.ef_search, "integer")?;
    Ok(config)
}

fn offline_config(args: &ParsedArgs) -> Result<OfflineConfig, CliError> {
    let mut config = OfflineConfig::default();
    config.similarity_top_k = args.get_parse("top-k-sim", config.similarity_top_k, "integer")?;
    if let Some(t) = args.get("threshold") {
        let t: f64 = t
            .parse()
            .map_err(|_| CliError::Usage("--threshold expects a number".into()))?;
        config.cluster = tps_core::pipeline::ClusterMethod::HierarchicalThreshold(t);
    }
    config.parallel = parallel_config(args)?;
    config.ann = ann_config(args)?;
    Ok(config)
}

fn cmd_offline(args: &ParsedArgs) -> Result<String, CliError> {
    args.restrict(&[
        "world",
        "out",
        "top-k-sim",
        "threshold",
        "threads",
        "trace-out",
        "ann",
        "ann-k",
        "ann-ef",
        "stream-batch",
    ])?;
    let world: World = read_json(args.require("world")?)?;
    let out = args.require("out")?;
    let config = offline_config(args)?;
    let stream_batch = match args.get("stream-batch") {
        Some(_) => Some(args.get_parse("stream-batch", 0usize, "integer")?),
        None => None,
    };
    if stream_batch.is_some() && config.ann.mode != AnnMode::Indexed {
        return Err(CliError::Usage(
            "--stream-batch requires --ann indexed (the dense exact build cannot stream)".into(),
        ));
    }
    with_trace(args, |tel| {
        let artifacts = match stream_batch {
            // Streamed: models are simulated and folded in `batch`-sized
            // waves, so million-model worlds never hold all curves (or any
            // O(M²) structure) in memory.
            Some(batch) => world.build_offline_streamed(batch, &config, tel)?,
            None => {
                let (matrix, curves) =
                    world.build_offline_traced(config.parallel.resolve(), tel)?;
                OfflineArtifacts::build_traced(matrix, &curves, &config, tel)?
            }
        };
        write_json(out, &artifacts)?;
        Ok(format!(
            "wrote offline artifacts to {out}: {} x {} performance matrix, {} clusters \
             ({} non-singleton)\n",
            artifacts.matrix.n_models(),
            artifacts.matrix.n_datasets(),
            artifacts.clustering.n_clusters(),
            artifacts.clustering.non_singleton_clusters().len(),
        ))
    })
}

fn cmd_inspect(args: &ParsedArgs) -> Result<String, CliError> {
    args.restrict(&["artifacts"])?;
    let artifacts: OfflineArtifacts = read_json(args.require("artifacts")?)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "performance matrix: {} models x {} benchmark datasets",
        artifacts.matrix.n_models(),
        artifacts.matrix.n_datasets()
    );
    let _ = writeln!(
        out,
        "clusters: {} total, {} non-singleton",
        artifacts.clustering.n_clusters(),
        artifacts.clustering.non_singleton_clusters().len()
    );
    for c in artifacts.clustering.non_singleton_clusters() {
        let members: Vec<&str> = artifacts
            .clustering
            .members(c)
            .iter()
            .map(|&m| artifacts.matrix.model_name(m))
            .collect();
        let _ = writeln!(out, "  [{:2}] {}", members.len(), members.join(", "));
    }
    let mut ranked: Vec<(String, f64)> = artifacts
        .matrix
        .model_ids()
        .map(|m| {
            (
                artifacts.matrix.model_name(m).to_string(),
                artifacts.matrix.avg_accuracy(m),
            )
        })
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    let _ = writeln!(out, "top models by average benchmark accuracy:");
    for (name, avg) in ranked.iter().take(5) {
        let _ = writeln!(out, "  {avg:.3}  {name}");
    }
    Ok(out)
}

fn target_index(world: &World, name: &str) -> Result<usize, CliError> {
    world.target_by_name(name).ok_or_else(|| {
        let known: Vec<&str> = world.targets.iter().map(|t| t.name.as_str()).collect();
        CliError::Usage(format!(
            "unknown target `{name}`; this world has: {}",
            known.join(", ")
        ))
    })
}

fn cmd_select(args: &ParsedArgs) -> Result<String, CliError> {
    args.restrict(&[
        "world",
        "artifacts",
        "target",
        "top-k",
        "threshold",
        "stages",
        "threads",
        "trace-out",
        "fault-plan",
        "fault-seed",
        "ann",
        "ann-k",
        "ann-ef",
    ])?;
    let world: World = read_json(args.require("world")?)?;
    let artifacts: OfflineArtifacts = read_json(args.require("artifacts")?)?;
    let target = target_index(&world, args.require("target")?)?;
    let fault_plan = fault_plan_from(args, world.n_models())?;
    let config = PipelineConfig {
        recall: RecallConfig {
            top_k: args.get_parse("top-k", 10usize, "integer")?,
            ..Default::default()
        },
        fine: FineSelectionConfig {
            threshold: args.get_parse("threshold", 0.0f64, "number")?,
            ..Default::default()
        },
        total_stages: args.get_parse("stages", world.stages, "integer")?,
        parallel: parallel_config(args)?,
        ann: ann_config(args)?,
    };
    with_trace(args, |tel| {
        let (oracle, mut trainer) = fault::wrap_pair(
            ZooOracle::new(&world, target)?,
            ZooTrainer::new(&world, target)?.with_telemetry(tel.clone()),
            fault_plan.as_ref(),
        );
        let outcome = two_phase_select_traced(&artifacts, &oracle, &mut trainer, &config, tel)?;

        let mut out = String::new();
        let _ = writeln!(
            out,
            "selected `{}` for target `{}`",
            artifacts.matrix.model_name(outcome.selection.winner),
            world.targets[target].name
        );
        let _ = writeln!(out, "  test accuracy {:.3}", outcome.selection.winner_test);
        let _ = writeln!(out, "  cost          {}", outcome.ledger);
        let _ = writeln!(
            out,
            "  recalled pool {}",
            outcome
                .recall
                .recalled
                .iter()
                .map(|&m| artifacts.matrix.model_name(m))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let c = &outcome.counters;
        let _ = writeln!(
            out,
            "  accounting    {} proxy evals, {} recalled, pools {:?} over {} stages",
            c.proxy_evals, c.recalled, c.pool_per_stage, c.stages
        );
        for cas in &outcome.casualties {
            let _ = writeln!(
                out,
                "  quarantined   {} at {}: {}",
                artifacts.matrix.model_name(cas.model),
                cas.stage,
                cas.cause
            );
        }
        Ok(out)
    })
}

fn cmd_compare(args: &ParsedArgs) -> Result<String, CliError> {
    args.restrict(&[
        "world",
        "artifacts",
        "target",
        "threads",
        "trace-out",
        "fault-plan",
        "fault-seed",
    ])?;
    let world: World = read_json(args.require("world")?)?;
    let artifacts: OfflineArtifacts = read_json(args.require("artifacts")?)?;
    let target = target_index(&world, args.require("target")?)?;
    let fault_plan = fault_plan_from(args, world.n_models())?;
    let parallel = parallel_config(args)?;
    let threads = parallel.resolve();
    let everyone: Vec<ModelId> = artifacts.matrix.model_ids().collect();

    with_trace(args, |tel| {
        // Each selector faces the same fault schedule from a fresh wrapper
        // (attempt counters restart), so the comparison stays apples to
        // apples under injected failures.
        let mut t1 = fault::wrap_trainer(
            ZooTrainer::new(&world, target)?.with_telemetry(tel.clone()),
            fault_plan.as_ref(),
        );
        let bf = brute_force_traced(&mut t1, &everyone, world.stages, threads, tel)?;
        let mut t2 = fault::wrap_trainer(
            ZooTrainer::new(&world, target)?.with_telemetry(tel.clone()),
            fault_plan.as_ref(),
        );
        let sh = successive_halving_traced(&mut t2, &everyone, world.stages, threads, tel)?;
        let (oracle, mut t3) = fault::wrap_pair(
            ZooOracle::new(&world, target)?,
            ZooTrainer::new(&world, target)?.with_telemetry(tel.clone()),
            fault_plan.as_ref(),
        );
        let two_phase = two_phase_select_traced(
            &artifacts,
            &oracle,
            &mut t3,
            &PipelineConfig {
                total_stages: world.stages,
                parallel,
                ..Default::default()
            },
            tel,
        )?;

        let mut out = String::new();
        let _ = writeln!(out, "target `{}`:", world.targets[target].name);
        let mut row = |name: &str, acc: f64, epochs: f64, model: ModelId| {
            let _ = writeln!(
                out,
                "  {name:<18} acc {acc:.3}  {epochs:>7.1} epochs  -> {}",
                artifacts.matrix.model_name(model)
            );
        };
        row("brute force", bf.winner_test, bf.ledger.total(), bf.winner);
        row(
            "successive halving",
            sh.winner_test,
            sh.ledger.total(),
            sh.winner,
        );
        row(
            "two-phase",
            two_phase.selection.winner_test,
            two_phase.ledger.total(),
            two_phase.selection.winner,
        );
        let _ = writeln!(
            out,
            "  two-phase speedup: {:.2}x vs BF, {:.2}x vs SH",
            bf.ledger.total() / two_phase.ledger.total(),
            sh.ledger.total() / two_phase.ledger.total()
        );
        for (who, cs) in [
            ("brute force", &bf.casualties),
            ("successive halving", &sh.casualties),
            ("two-phase", &two_phase.casualties),
        ] {
            for cas in cs.iter() {
                let _ = writeln!(
                    out,
                    "  {who}: quarantined {} at {}: {}",
                    artifacts.matrix.model_name(cas.model),
                    cas.stage,
                    cas.cause
                );
            }
        }
        Ok(out)
    })
}

/// Usage for the `trace` family (also embedded in [`usage`]).
fn trace_usage() -> String {
    "usage: tps trace <summarize|diff|check|export|baseline> ...
  trace summarize FILE [--top N] [--format text|json]
                                      top spans by self-time + counter/histogram tables
  trace diff A B [--tolerance F]      compare deterministic payloads; nonzero exit on drift
  trace check FILE [--budgets FILE]   evaluate cost budgets (default budgets.toml)
  trace export FILE [--out FILE]      render OpenMetrics text exposition
  trace baseline FILE --out FILE      strip to the deterministic payload for committing
"
    .to_string()
}

fn read_trace(path: &str) -> Result<TraceReport, CliError> {
    read_json(path)
}

/// Expect exactly `n` positional arguments after a verb-style subcommand
/// (`trace summarize FILE`, `store diff A B`, …).
fn expect_positionals<'a>(
    rest: &'a [String],
    n: usize,
    what: &str,
    usage: &str,
) -> Result<&'a [String], CliError> {
    if rest.len() == n {
        Ok(rest)
    } else {
        Err(CliError::Usage(format!(
            "{what}: expected {n} positional argument(s), got {}\n{usage}",
            rest.len(),
        )))
    }
}

/// `tps trace …` — offline analysis of `--trace-out` files.
fn cmd_trace(args: &ParsedArgs) -> Result<String, CliError> {
    let pos = args.positionals();
    let Some(sub) = pos.first() else {
        return Err(CliError::Usage(trace_usage()));
    };
    let rest = &pos[1..];
    match sub.as_str() {
        "summarize" => {
            args.restrict_flags(&["top", "format"])?;
            let files = expect_positionals(rest, 1, "trace summarize", &trace_usage())?;
            let report = read_trace(&files[0])?;
            let top = args.get_parse("top", 10usize, "integer")?;
            match args.get("format").unwrap_or("text") {
                "text" => Ok(analysis::summarize(&report, top)),
                "json" => {
                    let summary = analysis::summary(&report, top);
                    let json = serde_json::to_string(&summary)
                        .map_err(|e| CliError::Io(format!("cannot serialize summary: {e}")))?;
                    Ok(format!("{json}\n"))
                }
                other => Err(CliError::Usage(format!(
                    "unknown summarize format `{other}` (expected text or json)"
                ))),
            }
        }
        "diff" => {
            args.restrict_flags(&["tolerance"])?;
            let files = expect_positionals(rest, 2, "trace diff", &trace_usage())?;
            let a = read_trace(&files[0])?;
            let b = read_trace(&files[1])?;
            let tolerance = args.get_parse("tolerance", 0.0f64, "number")?;
            let mut d = analysis::diff(&a, &b, tolerance);
            if a.completed != b.completed {
                d.structure.push(format!(
                    "completedness differs: {} vs {}",
                    a.completed, b.completed
                ));
            }
            let text = analysis::render_diff(&d);
            if d.is_clean() {
                Ok(text)
            } else {
                Err(CliError::Failed(format!(
                    "trace drift between {} and {}:\n{text}",
                    files[0], files[1]
                )))
            }
        }
        "check" => {
            args.restrict_flags(&["budgets"])?;
            let files = expect_positionals(rest, 1, "trace check", &trace_usage())?;
            let report = read_trace(&files[0])?;
            let budgets_path = args.get("budgets").unwrap_or("budgets.toml");
            let text = std::fs::read_to_string(budgets_path)
                .map_err(|e| CliError::Io(format!("cannot read {budgets_path}: {e}")))?;
            let spec = budget::parse_spec(&text)
                .map_err(|e| CliError::Usage(format!("{budgets_path}: {e}")))?;
            if !report.completed {
                return Err(CliError::Failed(format!(
                    "{} is a partial trace (completed = false); budgets only apply to \
                     finished runs",
                    files[0]
                )));
            }
            let outcome = budget::check(&report, &spec);
            if outcome.ok() {
                let mut out = format!(
                    "all {} budget check(s) passed against {}\n",
                    outcome.passed.len(),
                    files[0]
                );
                for p in &outcome.passed {
                    let _ = writeln!(out, "  ok      {p}");
                }
                for s in &outcome.skipped {
                    let _ = writeln!(out, "  skipped {s} (counters absent, rule not required)");
                }
                Ok(out)
            } else {
                let mut out = format!(
                    "{} budget violation(s) in {} (of {} checked):\n",
                    outcome.violations.len(),
                    files[0],
                    outcome.violations.len() + outcome.passed.len()
                );
                for v in &outcome.violations {
                    let _ = writeln!(out, "  FAIL {v}");
                }
                Err(CliError::Failed(out))
            }
        }
        "export" => {
            args.restrict_flags(&["out"])?;
            let files = expect_positionals(rest, 1, "trace export", &trace_usage())?;
            let report = read_trace(&files[0])?;
            let text = openmetrics::render(&report);
            match args.get("out") {
                Some(path) => {
                    std::fs::write(Path::new(path), &text)
                        .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
                    Ok(format!(
                        "wrote OpenMetrics exposition to {path}: {} metric line(s)\n",
                        text.lines().count()
                    ))
                }
                None => Ok(text),
            }
        }
        "baseline" => {
            args.restrict_flags(&["out"])?;
            let files = expect_positionals(rest, 1, "trace baseline", &trace_usage())?;
            let report = read_trace(&files[0])?;
            let out = args.require("out")?;
            let base = analysis::baseline_of(&report);
            write_json(out, &base)?;
            Ok(format!(
                "wrote baseline to {out}: {} counter(s), {} deterministic histogram(s)\n",
                base.counters.len(),
                base.histograms.len()
            ))
        }
        other => Err(CliError::Usage(format!(
            "unknown trace subcommand `{other}`\n{}",
            trace_usage()
        ))),
    }
}

fn open_store(args: &ParsedArgs) -> Result<tps_store::Store, CliError> {
    tps_store::Store::open(args.require("store")?).map_err(|e| CliError::Io(e.to_string()))
}

/// Persist a world + artifacts pair into a durable, checksummed store.
fn cmd_archive(args: &ParsedArgs) -> Result<String, CliError> {
    use tps_store::ArtifactKind;
    args.restrict(&["store", "name", "world", "artifacts", "force"])?;
    let name = args.require("name")?;
    let world: World = read_json(args.require("world")?)?;
    let artifacts: OfflineArtifacts = read_json(args.require("artifacts")?)?;
    let mut store = open_store(args)?;
    let force = args.get("force") == Some("true");
    let (w_name, a_name) = (format!("{name}.world"), format!("{name}.artifacts"));
    let result = if force {
        store
            .put_overwrite(&w_name, ArtifactKind::World, &world)
            .and_then(|_| store.put_overwrite(&a_name, ArtifactKind::OfflineArtifacts, &artifacts))
    } else {
        store
            .put(&w_name, ArtifactKind::World, &world)
            .and_then(|_| store.put(&a_name, ArtifactKind::OfflineArtifacts, &artifacts))
    };
    result.map_err(|e| CliError::Io(e.to_string()))?;
    Ok(format!(
        "archived `{name}` ({} models, {} benchmark datasets) as {w_name} + {a_name}
",
        world.n_models(),
        world.n_benchmarks()
    ))
}

/// List everything in a store.
fn cmd_catalog(args: &ParsedArgs) -> Result<String, CliError> {
    args.restrict(&["store"])?;
    let store = open_store(args)?;
    let entries = store.list();
    if entries.is_empty() {
        return Ok("store is empty
"
        .into());
    }
    let mut out = String::new();
    for (name, entry) in entries {
        let _ = writeln!(
            out,
            "{name:<32} {:>18?} {:>9} bytes  crc {:08x}",
            entry.kind, entry.size, entry.checksum
        );
    }
    Ok(out)
}

/// Verify every record's integrity; `--repair true` quarantines what
/// cannot be salvaged instead of merely reporting it.
fn cmd_fsck(args: &ParsedArgs) -> Result<String, CliError> {
    args.restrict(&["store", "repair"])?;
    let mut store = open_store(args)?;
    let recovered = store.recovery().recovered();
    let mut out = String::new();
    if recovered > 0 {
        let _ = writeln!(
            out,
            "open recovered {} interrupted commit(s) from the journal",
            recovered
        );
    }
    if args.get("repair") == Some("true") {
        let report = store.fsck_repair().map_err(store_err)?;
        if report.is_clean() {
            let _ = writeln!(
                out,
                "{} records verified, nothing to repair",
                store.list().len()
            );
        } else {
            let _ = writeln!(
                out,
                "repaired: {} corrupt record(s) and {} orphan blob(s) quarantined, \
                 {} record(s) reindexed",
                report.quarantined_corrupt.len(),
                report.quarantined_orphans.len(),
                report.reindexed.len(),
            );
            for name in &report.quarantined_corrupt {
                let _ = writeln!(out, "  quarantined corrupt: {name}");
            }
            for name in &report.quarantined_orphans {
                let _ = writeln!(out, "  quarantined orphan:  {name}");
            }
        }
        return Ok(out);
    }
    let bad = store.fsck();
    if bad.is_empty() {
        let _ = writeln!(out, "{} records verified, all healthy", store.list().len());
        Ok(out)
    } else {
        Err(CliError::Usage(format!(
            "corrupt records: {} (rerun with --repair true to quarantine)",
            bad.join(", ")
        )))
    }
}

fn store_usage() -> String {
    "usage: tps store <commit|log|diff|rollback|cat|export|import|gc> --store DIR ...
  store commit --store DIR --world FILE --artifacts FILE [--note TEXT]
  store log --store DIR               parent-linked history from head, newest first
  store diff A B --store DIR          entry-level changes between two generations
  store rollback N --store DIR        move head back to generation N
  store cat N ENTRY --store DIR --out FILE   write an entry's bytes verbatim
  store export N --store DIR --out FILE      bundle generation N into one file
  store import FILE --store DIR              ingest an exported bundle
  store gc --store DIR                drop generations/blobs unreachable from head
"
    .to_string()
}

fn store_err(e: tps_store::StoreError) -> CliError {
    CliError::Io(e.to_string())
}

fn read_bytes(path: &str) -> Result<Vec<u8>, CliError> {
    std::fs::read(Path::new(path)).map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))
}

fn parse_generation_id(s: &str) -> Result<u64, CliError> {
    s.parse()
        .map_err(|_| CliError::Usage(format!("expected a generation id, got `{s}`")))
}

/// `tps store …` — snapshot-versioned generations over the durable store.
/// A generation is an immutable commit of raw artifact files (entries
/// `world` and `artifacts`) addressed by content, so identical payloads
/// share one blob across generations and `cat` replays the exact bytes
/// that were committed — the substrate of the CI generation-parity gate.
fn cmd_store(args: &ParsedArgs) -> Result<String, CliError> {
    let pos = args.positionals();
    let Some(sub) = pos.first() else {
        return Err(CliError::Usage(store_usage()));
    };
    let rest = &pos[1..];
    match sub.as_str() {
        "commit" => {
            args.restrict_flags(&["store", "world", "artifacts", "note"])?;
            expect_positionals(rest, 0, "store commit", &store_usage())?;
            let world = read_bytes(args.require("world")?)?;
            let artifacts = read_bytes(args.require("artifacts")?)?;
            let mut store = open_store(args)?;
            // Test hook for the chaos CI gate: TPS_STORE_CRASH="<site> <index>
            // <kind>" aborts this process at the named commit point, so the
            // recovery path is exercised by a REAL kill, not just in-process
            // error returns.
            if let Ok(plan_text) = std::env::var("TPS_STORE_CRASH") {
                let plan = tps_store::CrashPlan::parse(&plan_text)
                    .map_err(|e| CliError::Usage(format!("bad TPS_STORE_CRASH: {e}")))?;
                store.set_crash_plan(plan.with_abort());
            }
            let rec = store
                .commit_generation(
                    &[("world", &world), ("artifacts", &artifacts)],
                    args.get("note").unwrap_or(""),
                )
                .map_err(store_err)?;
            Ok(format!(
                "committed generation {} (parent {}): {} entries, {} bytes\n",
                rec.id,
                rec.parent
                    .map_or_else(|| "none".to_string(), |p| p.to_string()),
                rec.entries.len(),
                rec.entries.values().map(|b| b.size).sum::<u64>(),
            ))
        }
        "log" => {
            args.restrict_flags(&["store"])?;
            expect_positionals(rest, 0, "store log", &store_usage())?;
            let store = open_store(args)?;
            let log = store.generation_log(None).map_err(store_err)?;
            if log.is_empty() {
                return Ok("no generations committed\n".into());
            }
            let head = log[0].id;
            let mut out = String::new();
            for rec in &log {
                let _ = writeln!(
                    out,
                    "generation {}{}  parent {}{}",
                    rec.id,
                    if rec.id == head { " (head)" } else { "" },
                    rec.parent
                        .map_or_else(|| "none".to_string(), |p| p.to_string()),
                    if rec.note.is_empty() {
                        String::new()
                    } else {
                        format!("  — {}", rec.note)
                    },
                );
                for (name, blob) in &rec.entries {
                    let _ = writeln!(
                        out,
                        "    {name:<12} {:>9} bytes  crc {:08x}",
                        blob.size, blob.checksum
                    );
                }
            }
            Ok(out)
        }
        "diff" => {
            args.restrict_flags(&["store"])?;
            let ids = expect_positionals(rest, 2, "store diff", &store_usage())?;
            let (a, b) = (parse_generation_id(&ids[0])?, parse_generation_id(&ids[1])?);
            let store = open_store(args)?;
            let diffs = store.diff_generations(a, b).map_err(store_err)?;
            if diffs.is_empty() {
                return Ok(format!("generations {a} and {b} are identical\n"));
            }
            let mut out = String::new();
            for d in &diffs {
                use tps_store::EntryChange;
                let _ = match &d.change {
                    EntryChange::Added(blob) => {
                        writeln!(out, "  added   {:<12} ({} bytes)", d.entry, blob.size)
                    }
                    EntryChange::Removed(blob) => {
                        writeln!(out, "  removed {:<12} ({} bytes)", d.entry, blob.size)
                    }
                    EntryChange::Changed { from, to } => writeln!(
                        out,
                        "  changed {:<12} crc {:08x} -> {:08x} ({} -> {} bytes)",
                        d.entry, from.checksum, to.checksum, from.size, to.size
                    ),
                };
            }
            let _ = writeln!(
                out,
                "{} entr(ies) differ between generations {a} and {b}",
                diffs.len()
            );
            Ok(out)
        }
        "rollback" => {
            args.restrict_flags(&["store"])?;
            let ids = expect_positionals(rest, 1, "store rollback", &store_usage())?;
            let id = parse_generation_id(&ids[0])?;
            let mut store = open_store(args)?;
            let rec = store.rollback_generation(id).map_err(store_err)?;
            Ok(format!(
                "head is now generation {} ({} entries); run `tps store gc` to drop \
                 unreachable generations\n",
                rec.id,
                rec.entries.len()
            ))
        }
        "cat" => {
            args.restrict_flags(&["store", "out"])?;
            let p = expect_positionals(rest, 2, "store cat", &store_usage())?;
            let id = parse_generation_id(&p[0])?;
            let out_path = args.require("out")?;
            let store = open_store(args)?;
            let bytes = store.generation_entry(id, &p[1]).map_err(store_err)?;
            std::fs::write(Path::new(out_path), &bytes)
                .map_err(|e| CliError::Io(format!("cannot write {out_path}: {e}")))?;
            Ok(format!(
                "wrote generation {id} entry `{}` to {out_path}: {} bytes\n",
                p[1],
                bytes.len()
            ))
        }
        "export" => {
            args.restrict_flags(&["store", "out"])?;
            let ids = expect_positionals(rest, 1, "store export", &store_usage())?;
            let id = parse_generation_id(&ids[0])?;
            let out_path = args.require("out")?;
            let store = open_store(args)?;
            store
                .export_generation(id, Path::new(out_path))
                .map_err(store_err)?;
            Ok(format!("exported generation {id} to {out_path}\n"))
        }
        "import" => {
            args.restrict_flags(&["store"])?;
            let files = expect_positionals(rest, 1, "store import", &store_usage())?;
            let mut store = open_store(args)?;
            let rec = store
                .import_generation(Path::new(files[0].as_str()))
                .map_err(store_err)?;
            Ok(format!(
                "imported generation {} ({} entries)\n",
                rec.id,
                rec.entries.len()
            ))
        }
        "gc" => {
            args.restrict_flags(&["store"])?;
            expect_positionals(rest, 0, "store gc", &store_usage())?;
            let mut store = open_store(args)?;
            let report = store.gc_generations().map_err(store_err)?;
            Ok(format!(
                "gc removed {} generation record(s) and {} blob(s)\n",
                report.removed_generations, report.removed_blobs
            ))
        }
        other => Err(CliError::Usage(format!(
            "unknown store subcommand `{other}`\n{}",
            store_usage()
        ))),
    }
}

/// Incrementally grow the repository: synthesize a new model (optionally
/// near an existing one), simulate its benchmark fine-tuning runs, and
/// update both the world file and the offline artifacts in place — no
/// global rebuild.
fn cmd_grow(args: &ParsedArgs) -> Result<String, CliError> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tps_core::incremental::{ModelAddition, Placement};
    use tps_zoo::ModelSpec;

    args.restrict(&["world", "artifacts", "name", "like", "capability", "seed"])?;
    let world_path = args.require("world")?;
    let arts_path = args.require("artifacts")?;
    let name = args.require("name")?;
    let mut world: World = read_json(world_path)?;
    let mut artifacts: OfflineArtifacts = read_json(arts_path)?;
    if artifacts.matrix.n_models() != world.n_models() {
        return Err(CliError::Usage(
            "world and artifacts disagree on the model count; rebuild offline artifacts".into(),
        ));
    }
    if world.models.iter().any(|m| m.name == name) {
        return Err(CliError::Usage(format!("model `{name}` already exists")));
    }

    let mut rng = StdRng::seed_from_u64(args.get_parse("seed", 1u64, "integer")?);
    let spec = match args.get("like") {
        Some(like) => {
            let base = world
                .models
                .iter()
                .find(|m| m.name == like)
                .ok_or_else(|| CliError::Usage(format!("no model named `{like}`")))?;
            let capability = args.get_parse("capability", base.capability, "number")?;
            ModelSpec::new(
                name,
                base.family,
                base.domain.jitter(0.05, &mut rng),
                capability,
                base.upstream.clone(),
                base.n_source_labels,
            )
            .with_speed(rng.gen_range(0.7..=1.3))
        }
        None => {
            let capability = args.get_parse("capability", 0.6f64, "number")?;
            ModelSpec::new(
                name,
                tps_zoo::Family::TextEncoder,
                tps_zoo::DomainVec::sample(&mut rng),
                capability,
                "custom",
                2,
            )
            .with_speed(rng.gen_range(0.7..=1.3))
        }
    };

    // Simulate the new model's offline fine-tuning on every benchmark.
    let curves: Vec<tps_core::curve::LearningCurve> = world
        .benchmarks
        .iter()
        .map(|bench| {
            world
                .law
                .run(&spec, bench, world.stages, world.hyper, world.seed)
                .to_curve()
        })
        .collect();
    let report = artifacts.add_model(
        &ModelAddition {
            name: name.to_string(),
            benchmark_curves: curves,
        },
        &OfflineConfig::default(),
    )?;
    world.models.push(spec);
    write_json(world_path, &world)?;
    write_json(arts_path, &artifacts)?;

    let placement = match report.placement {
        Placement::Joined {
            cluster,
            similarity,
        } => {
            let members: Vec<&str> = artifacts
                .clustering
                .members(cluster)
                .iter()
                .filter(|&&m| m != report.model)
                .map(|&m| artifacts.matrix.model_name(m))
                .collect();
            format!(
                "joined cluster {cluster} (similarity {similarity:.3}) with {}",
                members.join(", ")
            )
        }
        Placement::NewSingleton { cluster } => format!("new singleton cluster {cluster}"),
    };
    Ok(format!(
        "added `{name}` as model {} ({} benchmark runs simulated): {placement}
",
        report.model,
        artifacts.matrix.n_datasets(),
    ))
}

/// `tps update` — run a deterministic live-zoo churn stream (publish /
/// retire / refresh models, add / drop benchmarks) through the
/// incremental delta engine. Each event is folded into the offline
/// artifacts with localized work — no global rebuild — yet the rewritten
/// world + artifacts files are byte-identical to what a from-scratch
/// `tps offline` on the mutated world would produce, provided the build
/// flags (`--top-k-sim`, `--threshold`, `--ann*`) match the original
/// build. CI's `store-smoke` job enforces exactly that with `cmp`.
fn cmd_update(args: &ParsedArgs) -> Result<String, CliError> {
    use tps_core::incremental::DeltaEngine;
    use tps_zoo::Churn;

    args.restrict(&[
        "world",
        "artifacts",
        "ops",
        "seed",
        "top-k-sim",
        "threshold",
        "threads",
        "trace-out",
        "ann",
        "ann-k",
        "ann-ef",
    ])?;
    let world_path = args.require("world")?;
    let arts_path = args.require("artifacts")?;
    let mut world: World = read_json(world_path)?;
    let artifacts: OfflineArtifacts = read_json(arts_path)?;
    if artifacts.matrix.n_models() != world.n_models() {
        return Err(CliError::Usage(
            "world and artifacts disagree on the model count; rebuild offline artifacts".into(),
        ));
    }
    let n_ops = args.get_parse("ops", 1usize, "integer")?;
    let seed = args.get_parse("seed", 1u64, "integer")?;
    let config = offline_config(args)?;
    with_trace(args, |tel| {
        // The engine needs the curve table the artifacts were built from;
        // regenerate it through the transfer law (pure in (model, dataset))
        // — the constructor cross-checks every curve against the matrix,
        // so a world/artifacts mismatch fails loudly here.
        let (_, curves) = world.build_offline_par(config.parallel.resolve())?;
        let mut engine = DeltaEngine::from_curve_set(artifacts, &curves, config)?;
        let mut churn = Churn::new(seed);
        let mut out = String::new();
        for _ in 0..n_ops {
            let event = churn.next_update(&world);
            let update = world.apply_churn(&event).map_err(CliError::Usage)?;
            let report = engine.apply_update_traced(&update, tel)?;
            let _ = writeln!(
                out,
                "applied {} `{}`: {} models x {} datasets, {} clusters \
                 ({} row(s) re-mined, {} kNN list(s) touched)",
                report.op,
                report.target,
                report.models,
                report.datasets,
                report.clusters,
                report.remined_rows,
                report.touched_lists,
            );
        }
        write_json(world_path, &world)?;
        write_json(arts_path, engine.artifacts())?;
        let _ = writeln!(
            out,
            "rewrote {world_path} + {arts_path} after {n_ops} event(s)"
        );
        Ok(out)
    })
}

/// Where `serve` loads its world + artifacts pair from: the artifact
/// store (`--store DIR --name TAG`, as written by `tps archive`) or plain
/// JSON files (`--world FILE --artifacts FILE`). Owned, so the server's
/// reload source can re-read the same inputs on a hot-swap long after the
/// parsed arguments are gone.
#[derive(Clone)]
enum ServeSource {
    Store { dir: String, name: String },
    Files { world: String, artifacts: String },
}

fn serve_source(args: &ParsedArgs) -> Result<ServeSource, CliError> {
    match (args.get("store"), args.get("world")) {
        (Some(dir), None) => Ok(ServeSource::Store {
            dir: dir.to_string(),
            name: args.require("name")?.to_string(),
        }),
        (None, Some(world)) => Ok(ServeSource::Files {
            world: world.to_string(),
            artifacts: args.require("artifacts")?.to_string(),
        }),
        _ => Err(CliError::Usage(
            "serve needs either --store DIR --name TAG or --world FILE --artifacts FILE".into(),
        )),
    }
}

fn load_serve_source(source: &ServeSource) -> Result<(World, OfflineArtifacts), String> {
    use tps_store::ArtifactKind;
    match source {
        ServeSource::Store { dir, name } => {
            let store = tps_store::Store::open(dir).map_err(|e| e.to_string())?;
            let world = store
                .get(&format!("{name}.world"), ArtifactKind::World)
                .map_err(|e| e.to_string())?;
            let artifacts = store
                .get(&format!("{name}.artifacts"), ArtifactKind::OfflineArtifacts)
                .map_err(|e| e.to_string())?;
            Ok((world, artifacts))
        }
        ServeSource::Files { world, artifacts } => Ok((
            read_json(world).map_err(|e| e.to_string())?,
            read_json(artifacts).map_err(|e| e.to_string())?,
        )),
    }
}

/// Run the resident selection service until a `shutdown` request or
/// SIGTERM drains it, then report final stats (and the aggregate trace,
/// when `--trace-out` is given).
fn cmd_serve(args: &ParsedArgs) -> Result<String, CliError> {
    args.restrict(&[
        "store",
        "name",
        "world",
        "artifacts",
        "addr",
        "max-inflight",
        "queue-depth",
        "cache",
        "threads",
        "top-k",
        "threshold",
        "stages",
        "ready-file",
        "trace-out",
        "ann",
        "ann-k",
        "ann-ef",
        "access-log",
        "slo-ms",
        "max-line-bytes",
        "stall-timeout-ms",
        "net-fault-plan",
        "shards",
        "batch-window-ticks",
    ])?;
    let source = serve_source(args)?;
    let (world, artifacts) = load_serve_source(&source).map_err(CliError::Io)?;
    let net_faults = match args.get("net-fault-plan") {
        None => tps_serve::NetFaultPlan::empty(),
        Some(path) => {
            let text = std::fs::read_to_string(Path::new(path))
                .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
            tps_serve::NetFaultPlan::parse(&text)
                .map_err(|e| CliError::Usage(format!("bad net-fault plan {path}: {e}")))?
        }
    };
    let config = tps_serve::ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:0").to_string(),
        max_inflight: args.get_parse("max-inflight", 2usize, "integer")?,
        queue_depth: args.get_parse("queue-depth", 16usize, "integer")?,
        cache_capacity: args.get_parse("cache", 64usize, "integer")?,
        threads: parallel_config(args)?.resolve(),
        top_k: args.get_parse("top-k", 10usize, "integer")?,
        threshold: args.get_parse("threshold", 0.0f64, "number")?,
        stages: match args.get("stages") {
            Some(_) => Some(args.get_parse("stages", world.stages, "integer")?),
            None => None,
        },
        ann: ann_config(args)?,
        access_log: args.get("access-log").map(str::to_string),
        slo_ms: match args.get("slo-ms") {
            Some(_) => Some(args.get_parse("slo-ms", 0u64, "integer")?),
            None => None,
        },
        max_line_bytes: args.get_parse("max-line-bytes", 1usize << 20, "integer")?,
        stall_timeout_ms: match args.get_parse("stall-timeout-ms", 30_000u64, "integer")? {
            0 => None, // 0 disables the slow-loris timeout
            ms => Some(ms),
        },
        net_faults: std::sync::Arc::new(net_faults),
        shards: args.get_parse("shards", 1usize, "integer")?,
        batch_window_ticks: args.get_parse("batch-window-ticks", 0u64, "integer")?,
    };
    // Mirror bind()'s validation with a friendlier usage error: the
    // scatter plane's byte-identity proof only covers exact recall.
    if (config.shards > 1 || config.batch_window_ticks > 0) && config.ann.mode != AnnMode::Exact {
        return Err(CliError::Usage(
            "--shards > 1 / --batch-window-ticks > 0 require --ann exact".to_string(),
        ));
    }
    if config.shards == 0 {
        return Err(CliError::Usage("--shards must be >= 1".to_string()));
    }
    tps_serve::install_signal_drain();
    let server = tps_serve::Server::bind(&world, &artifacts, config)
        .map_err(|e| CliError::Io(format!("bind: {e}")))?
        // `{"op":"reload"}` / SIGHUP re-reads the same inputs and
        // hot-swaps to them without dropping in-flight requests.
        .with_reload_source(Box::new(move || load_serve_source(&source)));
    let addr = server.addr();
    // `run` blocks until drain, so the listening line goes straight to
    // stdout now instead of into the returned report.
    {
        use std::io::Write as _;
        let mut stdout = std::io::stdout();
        let _ = writeln!(
            stdout,
            "serving {} models / {} targets on {addr} — drain with {{\"op\":\"shutdown\"}} or \
             SIGTERM, hot-swap with {{\"op\":\"reload\"}} or SIGHUP",
            world.n_models(),
            world.n_targets()
        );
        let _ = stdout.flush();
    }
    if let Some(path) = args.get("ready-file") {
        std::fs::write(Path::new(path), format!("{addr}\n"))
            .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
    }
    let summary = server
        .run()
        .map_err(|e| CliError::Io(format!("serve: {e}")))?;
    let s = &summary.stats;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "drained after {} request(s): {} executed, {} cache hit(s), {} overloaded, \
         {} drain-rejected, {} deadline-rejected, {} error(s)",
        s.requests,
        s.executed,
        s.cache_hits,
        s.rejected,
        s.drain_rejected,
        s.deadline_rejected,
        s.errors
    );
    let _ = writeln!(
        out,
        "  queue peak {}/{} capacity; {:.1} epoch-equivalents spent",
        s.queue_peak, s.queue_capacity, s.total_epochs
    );
    let w = &summary.window;
    let _ = writeln!(
        out,
        "  window: {} request(s), p50 {}µs p95 {}µs p99 {}µs; {} SLO violation(s)",
        w.count, w.p50_us, w.p95_us, w.p99_us, s.slo_violations
    );
    if s.sharded_requests > 0 {
        let _ = writeln!(
            out,
            "  scatter: {} sharded request(s), {} scatter job(s)",
            s.sharded_requests, s.shard_scatter_jobs
        );
    }
    if s.batch_calls > 0 {
        let _ = writeln!(
            out,
            "  batching: {} call(s) / {} job(s) coalesced into {} batch(es), widest {}",
            s.batch_calls, s.batch_jobs, s.batches, s.batch_width_max
        );
    }
    if args.get("access-log").is_some() {
        let _ = writeln!(
            out,
            "  access log: {} record(s), {} written, {} dropped",
            s.access_log_records, s.access_log_written, s.access_log_dropped
        );
    }
    if let Some(path) = args.get("trace-out") {
        write_json(path, &summary.trace)?;
        let _ = writeln!(
            out,
            "wrote aggregate trace to {path}: {} request span(s), {} counter(s)",
            summary.trace.spans.len(),
            summary.trace.counters.len()
        );
    }
    Ok(out)
}

/// Send requests to a running server and print the response lines.
fn cmd_client(args: &ParsedArgs) -> Result<String, CliError> {
    args.restrict(&[
        "addr",
        "request",
        "file",
        "shutdown",
        "metrics",
        "retries",
        "retry-backoff-ms",
        "timeout-ms",
    ])?;
    let addr = args.require("addr")?;
    let policy = tps_serve::RetryPolicy {
        retries: args.get_parse("retries", 0u32, "integer")?,
        backoff_ms: args.get_parse("retry-backoff-ms", 50u64, "integer")?,
        timeout_ms: match args.get("timeout-ms") {
            Some(_) => Some(args.get_parse("timeout-ms", 0u64, "integer")?),
            None => None,
        },
    };
    if args.get("metrics") == Some("true") {
        // A scrape prints the decoded OpenMetrics text, not the JSON
        // envelope, so the output pipes straight into Prometheus tooling.
        let mut client = tps_serve::Client::connect(addr)
            .map_err(|e| CliError::Io(format!("connect {addr}: {e}")))?;
        return client
            .scrape(0)
            .map_err(|e| CliError::Io(format!("metrics scrape failed: {e}")));
    }
    let mut lines: Vec<String> = Vec::new();
    if let Some(req) = args.get("request") {
        lines.push(req.to_string());
    }
    if let Some(path) = args.get("file") {
        let text = std::fs::read_to_string(Path::new(path))
            .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
        lines.extend(
            text.lines()
                .filter(|l| !l.trim().is_empty())
                .map(str::to_string),
        );
    }
    if args.get("shutdown") == Some("true") {
        lines.push("{\"op\":\"shutdown\"}".to_string());
    }
    if lines.is_empty() {
        use std::io::BufRead as _;
        for line in std::io::stdin().lock().lines() {
            let line = line.map_err(|e| CliError::Io(format!("stdin: {e}")))?;
            if !line.trim().is_empty() {
                lines.push(line);
            }
        }
    }
    // Retries resend through a fresh connection; the server's fingerprint
    // cache makes the retried response byte-identical, so a flaky network
    // changes latency but never output.
    let mut client = tps_serve::RetryClient::new(addr, policy);
    let mut out = String::new();
    for line in &lines {
        let response = client
            .roundtrip(line)
            .map_err(|e| CliError::Io(format!("request failed: {e}")))?;
        let _ = writeln!(out, "{response}");
    }
    Ok(out)
}

/// `tps loadgen` — drive a running server with a deterministic open-loop
/// arrival schedule and print the latency report.
fn cmd_loadgen(args: &ParsedArgs) -> Result<String, CliError> {
    args.restrict(&[
        "addr",
        "requests",
        "interval-us",
        "conns",
        "seed",
        "targets",
        "top-k",
        "format",
    ])?;
    let addr = args.require("addr")?;
    let targets: Vec<String> = args
        .require("targets")?
        .split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(str::to_string)
        .collect();
    if targets.is_empty() {
        return Err(CliError::Usage(
            "--targets needs at least one (comma-separated) target name".to_string(),
        ));
    }
    let plan = tps_serve::LoadgenPlan {
        requests: args.get_parse("requests", 1_000usize, "integer")?,
        interval_us: args.get_parse("interval-us", 1_000u64, "integer")?,
        conns: args.get_parse("conns", 4usize, "integer")?,
        seed: args.get_parse("seed", 0u64, "integer")?,
        targets,
        top_k: match args.get("top-k") {
            Some(_) => Some(args.get_parse("top-k", 10usize, "integer")?),
            None => None,
        },
    };
    let report = tps_serve::run_open_loop(addr, &plan)
        .map_err(|e| CliError::Io(format!("loadgen against {addr}: {e}")))?;
    match args.get("format").unwrap_or("text") {
        "json" => {
            let line = serde_json::to_string(&report)
                .map_err(|e| CliError::Io(format!("cannot serialize report: {e}")))?;
            Ok(format!("{line}\n"))
        }
        "text" => {
            let mut out = String::new();
            let _ = writeln!(
                out,
                "open-loop: {} request(s) over {} conn(s), one every {}µs (seed {})",
                report.requests, plan.conns, plan.interval_us, plan.seed
            );
            let _ = writeln!(
                out,
                "  {} ok, {} overloaded, {} error(s) in {}µs",
                report.ok, report.overloaded, report.errors, report.elapsed_us
            );
            let _ = writeln!(
                out,
                "  latency from scheduled arrival: p50 {}µs p95 {}µs p99 {}µs max {}µs",
                report.p50_us, report.p95_us, report.p99_us, report.max_us
            );
            Ok(out)
        }
        other => Err(CliError::Usage(format!(
            "--format must be text or json (got {other})"
        ))),
    }
}

/// One polled sample of a live server: the stats snapshot plus every
/// sample line parsed out of the metrics exposition (gauges and
/// counters alike, keyed by exposition metric name).
struct TopSample {
    stats: serde_json::Value,
    metrics: std::collections::BTreeMap<String, f64>,
}

impl TopSample {
    fn stat(&self, key: &str) -> u64 {
        self.stats.get(key).and_then(|v| v.as_u64()).unwrap_or(0)
    }

    fn metric(&self, name: &str) -> u64 {
        self.metrics.get(name).copied().unwrap_or(0.0) as u64
    }
}

fn top_sample(client: &mut tps_serve::Client, id: u64) -> Result<TopSample, CliError> {
    let line = client
        .request(&tps_serve::Request::control(id, "stats"))
        .map_err(|e| CliError::Io(format!("stats poll failed: {e}")))?;
    let result = tps_serve::protocol::extract_result(&line)
        .ok_or_else(|| CliError::Io(format!("stats poll returned no result: {line}")))?;
    let stats: serde_json::Value = serde_json::from_str(result)
        .map_err(|e| CliError::Io(format!("cannot parse stats: {e}")))?;
    let exposition = client
        .scrape(id + 1)
        .map_err(|e| CliError::Io(format!("metrics scrape failed: {e}")))?;
    let mut metrics = std::collections::BTreeMap::new();
    for sample in exposition.lines() {
        if sample.starts_with('#') || sample.contains('{') {
            continue; // comments and labelled bucket series
        }
        let mut parts = sample.split_whitespace();
        if let (Some(name), Some(value)) = (parts.next(), parts.next()) {
            if let Ok(v) = value.parse::<f64>() {
                metrics.insert(name.to_string(), v);
            }
        }
    }
    Ok(TopSample { stats, metrics })
}

/// The `--once` machine-readable line: one JSON object combining the
/// stats counters with the window gauges, for CI consumption.
fn top_once_line(s: &TopSample) -> String {
    format!(
        "{{\"generation\":{},\"requests\":{},\"executed\":{},\"cache_hits\":{},\
         \"rejected\":{},\"errors\":{},\"queue_waiting\":{},\"queue_inflight\":{},\
         \"queue_peak\":{},\"cache_entries\":{},\"slo_violations\":{},\
         \"access_log_records\":{},\"access_log_dropped\":{},\"window_count\":{},\
         \"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
        s.stat("generation"),
        s.stat("requests"),
        s.stat("executed"),
        s.stat("cache_hits"),
        s.stat("rejected"),
        s.stat("errors"),
        s.stat("queue_waiting"),
        s.stat("queue_inflight"),
        s.stat("queue_peak"),
        s.stat("cache_entries"),
        s.stat("slo_violations"),
        s.stat("access_log_records"),
        s.stat("access_log_dropped"),
        s.metric("tps_serve_window_count"),
        s.metric("tps_serve_window_p50_us"),
        s.metric("tps_serve_window_p95_us"),
        s.metric("tps_serve_window_p99_us"),
    )
}

/// Render one dashboard frame. `prev` is the previous sample's request
/// count and age, for the requests/s rate.
fn render_top(addr: &str, s: &TopSample, prev: Option<(u64, std::time::Duration)>) -> String {
    let rate = match prev {
        Some((prev_requests, age)) if age.as_secs_f64() > 0.0 => {
            (s.stat("requests").saturating_sub(prev_requests)) as f64 / age.as_secs_f64()
        }
        _ => 0.0,
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "tps top — {addr} · generation {} · {} worker(s)",
        s.stat("generation"),
        s.metric("tps_serve_workers"),
    );
    let _ = writeln!(
        out,
        "  requests {} ({rate:.1}/s) · executed {} · cache hits {} · rejected {} · errors {}",
        s.stat("requests"),
        s.stat("executed"),
        s.stat("cache_hits"),
        s.stat("rejected"),
        s.stat("errors"),
    );
    let _ = writeln!(
        out,
        "  queue {}/{} (waiting {}, inflight {}, peak {}) · cache {} entries",
        s.stat("queue_waiting") + s.stat("queue_inflight"),
        s.stat("queue_capacity"),
        s.stat("queue_waiting"),
        s.stat("queue_inflight"),
        s.stat("queue_peak"),
        s.stat("cache_entries"),
    );
    let _ = writeln!(
        out,
        "  window[{}]: p50 {}µs · p95 {}µs · p99 {}µs · SLO violations {}",
        s.metric("tps_serve_window_count"),
        s.metric("tps_serve_window_p50_us"),
        s.metric("tps_serve_window_p95_us"),
        s.metric("tps_serve_window_p99_us"),
        s.stat("slo_violations"),
    );
    if s.stat("access_log_records") > 0 || s.stat("access_log_dropped") > 0 {
        let _ = writeln!(
            out,
            "  access log: {} record(s), {} dropped",
            s.stat("access_log_records"),
            s.stat("access_log_dropped"),
        );
    }
    // Scatter-plane gauges render only when the server exports them, so a
    // plain server's dashboard is unchanged.
    let shards = s.metric("tps_serve_shards");
    if shards > 0 {
        let per_shard: Vec<String> = (0..shards)
            .map(|i| {
                format!(
                    "s{i} busy {} jobs {}",
                    s.metric(&format!("tps_serve_shard{i}_busy")),
                    s.metric(&format!("tps_serve_shard{i}_jobs")),
                )
            })
            .collect();
        let _ = writeln!(out, "  shards[{shards}]: {}", per_shard.join(" · "));
    }
    if s.metrics.contains_key("tps_serve_batch_width_last") {
        let _ = writeln!(
            out,
            "  batching: {} flush(es) · width last {} · width max {}",
            s.metric("tps_serve_batches"),
            s.metric("tps_serve_batch_width_last"),
            s.metric("tps_serve_batch_width_max"),
        );
    }
    out
}

/// `tps top` — poll a live server's metrics/stats ops and render a
/// one-screen dashboard, or one machine-readable JSON line with
/// `--once true`.
fn cmd_top(args: &ParsedArgs) -> Result<String, CliError> {
    args.restrict(&["addr", "interval-ms", "samples", "once"])?;
    let addr = args.require("addr")?;
    let interval_ms = args.get_parse("interval-ms", 1_000u64, "integer")?;
    let samples = args.get_parse("samples", 0usize, "integer")?;
    let mut client = tps_serve::Client::connect(addr)
        .map_err(|e| CliError::Io(format!("connect {addr}: {e}")))?;
    if args.get("once") == Some("true") {
        let sample = top_sample(&mut client, 0)?;
        return Ok(format!("{}\n", top_once_line(&sample)));
    }
    let mut prev: Option<(u64, std::time::Instant)> = None;
    let mut taken = 0usize;
    loop {
        let sample = match top_sample(&mut client, (taken as u64) * 2) {
            Ok(sample) => sample,
            // A server draining away mid-watch ends the dashboard; it is
            // only an error if we never got a single frame.
            Err(_) if taken > 0 => return Ok("top: server went away\n".to_string()),
            Err(e) => return Err(e),
        };
        let now = std::time::Instant::now();
        let frame = render_top(
            addr,
            &sample,
            prev.map(|(requests, at)| (requests, now.duration_since(at))),
        );
        {
            use std::io::Write as _;
            let mut stdout = std::io::stdout();
            let _ = write!(stdout, "{frame}");
            let _ = stdout.flush();
        }
        prev = Some((sample.stat("requests"), now));
        taken += 1;
        if samples > 0 && taken >= samples {
            return Ok(String::new());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tps-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_line(line: &[&str]) -> Result<String, CliError> {
        run(&ParsedArgs::parse(line.iter().copied()).unwrap())
    }

    #[test]
    fn full_cli_workflow() {
        let dir = tmpdir();
        let world = dir.join("w.json");
        let arts = dir.join("a.json");
        let world_s = world.to_str().unwrap();
        let arts_s = arts.to_str().unwrap();

        let out = run_line(&["world", "--domain", "cv", "--seed", "7", "--out", world_s]).unwrap();
        assert!(out.contains("30 models"));

        let out = run_line(&["offline", "--world", world_s, "--out", arts_s]).unwrap();
        assert!(out.contains("30 x 10"));

        let out = run_line(&["inspect", "--artifacts", arts_s]).unwrap();
        assert!(out.contains("non-singleton"));
        assert!(out.contains("top models"));

        let out = run_line(&[
            "select",
            "--world",
            world_s,
            "--artifacts",
            arts_s,
            "--target",
            "beans",
        ])
        .unwrap();
        assert!(out.contains("selected `"));
        assert!(out.contains("test accuracy"));

        let out = run_line(&[
            "compare",
            "--world",
            world_s,
            "--artifacts",
            arts_s,
            "--target",
            "beans",
        ])
        .unwrap();
        assert!(out.contains("two-phase speedup"));
    }

    #[test]
    fn trace_out_writes_a_consistent_trace() {
        use tps_core::telemetry::TraceReport;
        let dir = tmpdir();
        let world = dir.join("tw.json");
        let arts = dir.join("ta.json");
        let trace = dir.join("trace.json");
        let offline_trace = dir.join("offline-trace.json");
        let world_s = world.to_str().unwrap();
        let arts_s = arts.to_str().unwrap();
        let trace_s = trace.to_str().unwrap();

        run_line(&["world", "--domain", "cv", "--seed", "7", "--out", world_s]).unwrap();
        let out = run_line(&[
            "offline",
            "--world",
            world_s,
            "--out",
            arts_s,
            "--trace-out",
            offline_trace.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("wrote trace to"), "{out}");
        let offline_report: TraceReport =
            serde_json::from_str(&std::fs::read_to_string(&offline_trace).unwrap()).unwrap();
        assert!(offline_report.find_span("zoo.offline.build").is_some());
        assert!(offline_report.find_span("offline.build").is_some());
        // 30 models x 10 benchmarks simulated.
        assert_eq!(offline_report.counter("zoo.offline.runs"), Some(300.0));
        assert_eq!(offline_report.counter("offline.models"), Some(30.0));

        let out = run_line(&[
            "select",
            "--world",
            world_s,
            "--artifacts",
            arts_s,
            "--target",
            "beans",
            "--trace-out",
            trace_s,
        ])
        .unwrap();
        assert!(out.contains("wrote trace to"), "{out}");
        let report: TraceReport =
            serde_json::from_str(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        // Counters are self-consistent with the printed accounting and each
        // other: epochs the selectors charged equal epochs the trainer ran.
        assert_eq!(
            report.counter("select.train_epochs"),
            report.counter("zoo.train.stages"),
        );
        assert_eq!(report.counter("recall.recalled"), Some(10.0));
        let pipeline = report.find_span("pipeline.two_phase_select").unwrap();
        assert!(pipeline.find("recall.coarse").is_some());
        assert!(pipeline.find("select.fine").is_some());

        // compare traces all three selectors.
        let cmp_trace = dir.join("cmp-trace.json");
        run_line(&[
            "compare",
            "--world",
            world_s,
            "--artifacts",
            arts_s,
            "--target",
            "beans",
            "--trace-out",
            cmp_trace.to_str().unwrap(),
        ])
        .unwrap();
        let cmp: TraceReport =
            serde_json::from_str(&std::fs::read_to_string(&cmp_trace).unwrap()).unwrap();
        for span in [
            "select.brute",
            "select.halving",
            "pipeline.two_phase_select",
        ] {
            assert!(cmp.find_span(span).is_some(), "missing {span}");
        }
        // BF trains everyone for every stage: 30 models x stages epochs of
        // the total; SH and 2PH add theirs on top.
        assert!(cmp.counter("select.train_epochs").unwrap() > 30.0 * 4.0);
    }

    #[test]
    fn fault_plan_quarantines_and_still_selects() {
        use tps_core::telemetry::TraceReport;
        let dir = tmpdir();
        let world = dir.join("fw.json");
        let arts = dir.join("fa.json");
        let trace = dir.join("ftrace.json");
        let (world_s, arts_s, trace_s) = (
            world.to_str().unwrap(),
            arts.to_str().unwrap(),
            trace.to_str().unwrap(),
        );
        run_line(&["world", "--domain", "cv", "--seed", "7", "--out", world_s]).unwrap();
        run_line(&["offline", "--world", world_s, "--out", arts_s]).unwrap();

        let select = |extra: &[&str]| {
            let mut line = vec![
                "select",
                "--world",
                world_s,
                "--artifacts",
                arts_s,
                "--target",
                "beans",
            ];
            line.extend_from_slice(extra);
            run_line(&line)
        };
        let baseline = select(&[]).unwrap();
        let winner = baseline.split('`').nth(1).unwrap().to_string();
        let artifacts: OfflineArtifacts = read_json(arts_s).unwrap();
        let idx = artifacts
            .matrix
            .model_ids()
            .find(|&m| artifacts.matrix.model_name(m) == winner)
            .unwrap()
            .index();

        // Permanently kill the fault-free winner's first training stage:
        // the run must quarantine it, pick someone else, and say so.
        let plan = dir.join("faults.txt");
        let plan_s = plan.to_str().unwrap();
        std::fs::write(&plan, format!("advance m{idx} 0 permanent\n")).unwrap();
        let out = select(&["--fault-plan", plan_s, "--trace-out", trace_s]).unwrap();
        assert!(out.contains("selected `"), "{out}");
        assert!(out.contains("quarantined"), "{out}");
        assert!(out.contains("injected permanent fault"), "{out}");
        assert_ne!(out.split('`').nth(1).unwrap(), winner);

        let report: TraceReport =
            serde_json::from_str(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        assert!(report.completed);
        assert_eq!(report.casualties.len(), 1);
        assert_eq!(report.casualties[0].model.index(), idx);
        assert_eq!(report.counter("fault.permanent"), Some(1.0));

        // The two fault flags are mutually exclusive.
        assert!(matches!(
            select(&["--fault-plan", plan_s, "--fault-seed", "3"]),
            Err(CliError::Usage(_))
        ));
        // A garbage plan file is rejected with a line-numbered error.
        std::fs::write(&plan, "advance m0 zero permanent\n").unwrap();
        let err = select(&["--fault-plan", plan_s]).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn indexed_offline_and_select_workflow() {
        let dir = tmpdir();
        let world = dir.join("iw.json");
        let arts_exact = dir.join("ia-exact.json");
        let arts_indexed = dir.join("ia-indexed.json");
        let arts_streamed = dir.join("ia-streamed.json");
        let world_s = world.to_str().unwrap();

        run_line(&["world", "--domain", "cv", "--seed", "7", "--out", world_s]).unwrap();

        // Exact artifacts with an explicit `--ann exact` are byte-identical
        // to the flagless build (the legacy path).
        run_line(&[
            "offline",
            "--world",
            world_s,
            "--out",
            arts_exact.to_str().unwrap(),
            "--ann",
            "exact",
        ])
        .unwrap();
        let flagless = dir.join("ia-flagless.json");
        run_line(&[
            "offline",
            "--world",
            world_s,
            "--out",
            flagless.to_str().unwrap(),
        ])
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&arts_exact).unwrap(),
            std::fs::read_to_string(&flagless).unwrap()
        );

        // Indexed batch and streamed builds agree byte-for-byte.
        run_line(&[
            "offline",
            "--world",
            world_s,
            "--out",
            arts_indexed.to_str().unwrap(),
            "--ann",
            "indexed",
        ])
        .unwrap();
        run_line(&[
            "offline",
            "--world",
            world_s,
            "--out",
            arts_streamed.to_str().unwrap(),
            "--ann",
            "indexed",
            "--stream-batch",
            "7",
        ])
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&arts_indexed).unwrap(),
            std::fs::read_to_string(&arts_streamed).unwrap()
        );

        // Indexed select works end-to-end and emits the ann.* counters.
        let trace = dir.join("itrace.json");
        let out = run_line(&[
            "select",
            "--world",
            world_s,
            "--artifacts",
            arts_indexed.to_str().unwrap(),
            "--target",
            "beans",
            "--ann",
            "indexed",
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("selected `"), "{out}");
        let report: TraceReport =
            serde_json::from_str(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        assert!(report.counter("ann.k").is_some());
        assert!(report.counter("ann.candidates").is_some());

        // Streaming without indexed mode is refused up front.
        assert!(matches!(
            run_line(&[
                "offline",
                "--world",
                world_s,
                "--out",
                flagless.to_str().unwrap(),
                "--stream-batch",
                "8",
            ]),
            Err(CliError::Usage(_))
        ));
        // Bad mode string.
        assert!(matches!(
            run_line(&[
                "offline",
                "--world",
                world_s,
                "--out",
                flagless.to_str().unwrap(),
                "--ann",
                "fuzzy",
            ]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn synthetic_world_generation() {
        let dir = tmpdir();
        let world = dir.join("syn.json");
        let out = run_line(&[
            "world",
            "--domain",
            "synthetic",
            "--models",
            "30",
            "--benchmarks",
            "12",
            "--out",
            world.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("12 benchmark datasets"));
    }

    /// The CI generation-parity gate in unit form: churn applied through
    /// the incremental engine must leave files byte-identical to a
    /// from-scratch rebuild, and a store rollback must restore the
    /// pre-churn bytes exactly.
    #[test]
    fn update_store_generation_workflow() {
        let dir = tmpdir();
        let world = dir.join("live-w.json");
        let arts = dir.join("live-a.json");
        let scratch = dir.join("live-scratch.json");
        let store = dir.join("live-store");
        let (world_s, arts_s, store_s) = (
            world.to_str().unwrap(),
            arts.to_str().unwrap(),
            store.to_str().unwrap(),
        );
        let build = |out| {
            vec![
                "offline",
                "--world",
                world_s,
                "--out",
                out,
                "--ann",
                "indexed",
                "--threshold",
                "0.05",
            ]
        };

        run_line(&[
            "world",
            "--domain",
            "synthetic",
            "--models",
            "12",
            "--benchmarks",
            "6",
            "--targets",
            "2",
            "--stages",
            "4",
            "--seed",
            "5",
            "--out",
            world_s,
        ])
        .unwrap();
        run_line(&build(arts_s)).unwrap();
        let (world_v1, arts_v1) = (
            std::fs::read(&world).unwrap(),
            std::fs::read(&arts).unwrap(),
        );

        let out = run_line(&[
            "store",
            "commit",
            "--store",
            store_s,
            "--world",
            world_s,
            "--artifacts",
            arts_s,
            "--note",
            "base",
        ])
        .unwrap();
        assert!(
            out.contains("committed generation 1 (parent none)"),
            "{out}"
        );

        let out = run_line(&[
            "update",
            "--world",
            world_s,
            "--artifacts",
            arts_s,
            "--ops",
            "2",
            "--seed",
            "9",
            "--ann",
            "indexed",
            "--threshold",
            "0.05",
        ])
        .unwrap();
        assert!(out.contains("applied "), "{out}");
        assert!(out.contains("rewrote "), "{out}");

        let out = run_line(&[
            "store",
            "commit",
            "--store",
            store_s,
            "--world",
            world_s,
            "--artifacts",
            arts_s,
        ])
        .unwrap();
        assert!(out.contains("committed generation 2 (parent 1)"), "{out}");

        let out = run_line(&["store", "diff", "1", "2", "--store", store_s]).unwrap();
        assert!(out.contains("changed"), "{out}");
        assert!(out.contains("entr(ies) differ"), "{out}");

        // Generation parity: a from-scratch rebuild of the churned world
        // is byte-identical to the incrementally maintained artifacts.
        run_line(&build(scratch.to_str().unwrap())).unwrap();
        assert_eq!(
            std::fs::read(&scratch).unwrap(),
            std::fs::read(&arts).unwrap(),
            "incremental artifacts differ from a from-scratch rebuild"
        );

        // Rollback + cat restore the pre-churn bytes exactly.
        let out = run_line(&["store", "rollback", "1", "--store", store_s]).unwrap();
        assert!(out.contains("head is now generation 1"), "{out}");
        let restored = dir.join("live-restored.json");
        let restored_s = restored.to_str().unwrap();
        run_line(&[
            "store", "cat", "1", "world", "--store", store_s, "--out", restored_s,
        ])
        .unwrap();
        assert_eq!(std::fs::read(&restored).unwrap(), world_v1);
        run_line(&[
            "store",
            "cat",
            "1",
            "artifacts",
            "--store",
            store_s,
            "--out",
            restored_s,
        ])
        .unwrap();
        assert_eq!(std::fs::read(&restored).unwrap(), arts_v1);

        let out = run_line(&["store", "log", "--store", store_s]).unwrap();
        assert!(out.contains("generation 1 (head)"), "{out}");

        // Export/import round-trips the abandoned generation 2 elsewhere;
        // gc then prunes it from the original store.
        let bundle = dir.join("live-gen2.bundle");
        let bundle_s = bundle.to_str().unwrap();
        run_line(&[
            "store", "export", "2", "--store", store_s, "--out", bundle_s,
        ])
        .unwrap();
        let store2 = dir.join("live-store-2");
        let out = run_line(&[
            "store",
            "import",
            bundle_s,
            "--store",
            store2.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("imported generation 2"), "{out}");

        let out = run_line(&["store", "gc", "--store", store_s]).unwrap();
        assert!(out.contains("removed 1 generation record(s)"), "{out}");
        assert!(run_line(&["store", "fsck"]).is_err());
        let out = run_line(&["fsck", "--store", store_s]).unwrap();
        assert!(out.contains("all healthy"), "{out}");
    }

    #[test]
    fn helpful_errors() {
        assert!(matches!(run_line(&["frobnicate"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run_line(&["world", "--domain", "quantum", "--out", "/tmp/x.json"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_line(&["inspect", "--artifacts", "/nonexistent/a.json"]),
            Err(CliError::Io(_))
        ));
        assert!(matches!(
            run_line(&["select", "--world", "/nonexistent/w.json"]),
            Err(CliError::Args(_)) | Err(CliError::Io(_))
        ));
        // Unknown target names list the available ones.
        let dir = tmpdir();
        let world = dir.join("w2.json");
        let arts = dir.join("a2.json");
        run_line(&["world", "--domain", "cv", "--out", world.to_str().unwrap()]).unwrap();
        run_line(&[
            "offline",
            "--world",
            world.to_str().unwrap(),
            "--out",
            arts.to_str().unwrap(),
        ])
        .unwrap();
        let err = run_line(&[
            "select",
            "--world",
            world.to_str().unwrap(),
            "--artifacts",
            arts.to_str().unwrap(),
            "--target",
            "nope",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("beans"));
    }

    #[test]
    fn help_lists_commands() {
        let h = run_line(&["help"]).unwrap();
        for cmd in ["world", "offline", "inspect", "select", "compare", "grow"] {
            assert!(h.contains(cmd), "help missing {cmd}");
        }
    }

    #[test]
    fn archive_catalog_fsck_workflow() {
        let dir = tmpdir();
        let world = dir.join("sw.json");
        let arts = dir.join("sa.json");
        let store = dir.join("store");
        let (world_s, arts_s, store_s) = (
            world.to_str().unwrap(),
            arts.to_str().unwrap(),
            store.to_str().unwrap(),
        );
        run_line(&["world", "--domain", "cv", "--out", world_s]).unwrap();
        run_line(&["offline", "--world", world_s, "--out", arts_s]).unwrap();

        let out = run_line(&[
            "archive",
            "--store",
            store_s,
            "--name",
            "cv-v1",
            "--world",
            world_s,
            "--artifacts",
            arts_s,
        ])
        .unwrap();
        assert!(out.contains("archived `cv-v1`"), "{out}");

        // Double-archive without --force is refused.
        assert!(run_line(&[
            "archive",
            "--store",
            store_s,
            "--name",
            "cv-v1",
            "--world",
            world_s,
            "--artifacts",
            arts_s,
        ])
        .is_err());
        // With --force it succeeds.
        run_line(&[
            "archive",
            "--store",
            store_s,
            "--name",
            "cv-v1",
            "--world",
            world_s,
            "--artifacts",
            arts_s,
            "--force",
            "true",
        ])
        .unwrap();

        let out = run_line(&["catalog", "--store", store_s]).unwrap();
        assert!(out.contains("cv-v1.world"), "{out}");
        assert!(out.contains("cv-v1.artifacts"), "{out}");

        let out = run_line(&["fsck", "--store", store_s]).unwrap();
        assert!(out.contains("all healthy"), "{out}");
    }

    #[test]
    fn grow_adds_a_model_incrementally() {
        let dir = tmpdir();
        let world = dir.join("gw.json");
        let arts = dir.join("ga.json");
        let world_s = world.to_str().unwrap();
        let arts_s = arts.to_str().unwrap();
        run_line(&["world", "--domain", "cv", "--out", world_s]).unwrap();
        run_line(&["offline", "--world", world_s, "--out", arts_s]).unwrap();

        // A sibling of an existing family member joins its cluster.
        let out = run_line(&[
            "grow",
            "--world",
            world_s,
            "--artifacts",
            arts_s,
            "--name",
            "lab/vit-clone",
            "--like",
            "google/vit-base-patch16-224",
        ])
        .unwrap();
        assert!(out.contains("joined cluster"), "{out}");

        // The grown repository is still fully usable.
        let out = run_line(&["inspect", "--artifacts", arts_s]).unwrap();
        assert!(out.contains("31 models"));
        let out = run_line(&[
            "select",
            "--world",
            world_s,
            "--artifacts",
            arts_s,
            "--target",
            "beans",
        ])
        .unwrap();
        assert!(out.contains("selected `"));

        // Duplicate names are rejected.
        assert!(run_line(&[
            "grow",
            "--world",
            world_s,
            "--artifacts",
            arts_s,
            "--name",
            "lab/vit-clone",
        ])
        .is_err());
    }

    /// Build a world + artifacts + select trace in `dir`, returning the
    /// trace path. Shared by the `trace` family tests.
    fn make_trace(dir: &std::path::Path, tag: &str) -> std::path::PathBuf {
        let world = dir.join(format!("{tag}-w.json"));
        let arts = dir.join(format!("{tag}-a.json"));
        let trace = dir.join(format!("{tag}-trace.json"));
        let world_s = world.to_str().unwrap();
        let arts_s = arts.to_str().unwrap();
        run_line(&["world", "--domain", "cv", "--seed", "7", "--out", world_s]).unwrap();
        run_line(&["offline", "--world", world_s, "--out", arts_s]).unwrap();
        run_line(&[
            "select",
            "--world",
            world_s,
            "--artifacts",
            arts_s,
            "--target",
            "beans",
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .unwrap();
        trace
    }

    #[test]
    fn trace_summarize_export_and_baseline() {
        let dir = tmpdir();
        let trace = make_trace(&dir, "sum");
        let trace_s = trace.to_str().unwrap();

        let out = run_line(&["trace", "summarize", trace_s]).unwrap();
        assert!(out.contains("pipeline.two_phase_select"), "{out}");
        assert!(out.contains("recall.recalled"), "{out}");
        // --top 1 keeps the span table to a single row.
        let brief = run_line(&["trace", "summarize", trace_s, "--top", "1"]).unwrap();
        assert!(brief.len() < out.len());

        // --format json emits one machine-readable object mirroring the text.
        let json = run_line(&["trace", "summarize", trace_s, "--format", "json"]).unwrap();
        let summary: tps_core::telemetry::analysis::TraceSummary =
            serde_json::from_str(json.trim()).unwrap();
        assert!(summary.completed);
        assert!(summary.counters.contains_key("recall.recalled"));
        assert!(summary
            .spans
            .iter()
            .any(|s| s.name == "pipeline.two_phase_select"));
        let brief_json = run_line(&[
            "trace",
            "summarize",
            trace_s,
            "--top",
            "1",
            "--format",
            "json",
        ])
        .unwrap();
        let brief_summary: tps_core::telemetry::analysis::TraceSummary =
            serde_json::from_str(brief_json.trim()).unwrap();
        assert_eq!(brief_summary.spans.len(), 1);
        assert!(matches!(
            run_line(&["trace", "summarize", trace_s, "--format", "yaml"]),
            Err(CliError::Usage(_))
        ));

        let om = run_line(&["trace", "export", trace_s]).unwrap();
        assert!(om.starts_with("# TYPE") || om.contains("# TYPE"), "{om}");
        assert!(om.contains("tps_recall_recalled_total"), "{om}");
        assert!(om.contains("_bucket{le=\"+Inf\"}"), "{om}");
        assert!(om.ends_with("# EOF\n"), "{om}");
        let om_file = dir.join("metrics.txt");
        run_line(&[
            "trace",
            "export",
            trace_s,
            "--out",
            om_file.to_str().unwrap(),
        ])
        .unwrap();
        assert_eq!(std::fs::read_to_string(&om_file).unwrap(), om);

        let base = dir.join("base.json");
        let base_s = base.to_str().unwrap();
        let out = run_line(&["trace", "baseline", trace_s, "--out", base_s]).unwrap();
        assert!(out.contains("wrote baseline"), "{out}");
        let report: TraceReport =
            serde_json::from_str(&std::fs::read_to_string(&base).unwrap()).unwrap();
        assert!(report.spans.is_empty());
        assert!(report.histograms.values().all(|h| !h.is_wall_clock()));

        // A fresh identical run diffs clean against the stripped baseline.
        let trace2 = make_trace(&dir, "sum2");
        let out = run_line(&["trace", "diff", base_s, trace2.to_str().unwrap()]).unwrap();
        assert!(out.contains("no drift"), "{out}");

        // Usage errors: bad subcommand, wrong arity.
        assert!(matches!(
            run_line(&["trace", "frobnicate"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(run_line(&["trace"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run_line(&["trace", "diff", trace_s]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn trace_diff_fails_on_counter_drift() {
        let dir = tmpdir();
        let trace = make_trace(&dir, "drift");
        let trace_s = trace.to_str().unwrap();
        // Perturb one deterministic counter in a copy.
        let mut report: TraceReport =
            serde_json::from_str(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        *report.counters.get_mut("recall.recalled").unwrap() += 1.0;
        let forged = dir.join("forged.json");
        write_json(forged.to_str().unwrap(), &report).unwrap();

        let err = run_line(&["trace", "diff", trace_s, forged.to_str().unwrap()]).unwrap_err();
        match err {
            CliError::Failed(msg) => {
                assert!(msg.contains("recall.recalled"), "{msg}");
                assert!(msg.contains("drift"), "{msg}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn trace_check_enforces_budgets() {
        let dir = tmpdir();
        let trace = make_trace(&dir, "check");
        let trace_s = trace.to_str().unwrap();
        let budgets = dir.join("budgets.toml");
        std::fs::write(
            &budgets,
            "version = 1\n\
             \n\
             [[rule]]\n\
             name = \"recall-cap\"\n\
             expect = \"recall.recalled <= 10\"\n\
             \n\
             [[rule]]\n\
             name = \"halving\"\n\
             per_stage = \"fine\"\n\
             expect = \"fine.stage{t}.survivors <= ceil(fine.stage{t}.pool / 2)\"\n",
        )
        .unwrap();
        let out = run_line(&[
            "trace",
            "check",
            trace_s,
            "--budgets",
            budgets.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("passed"), "{out}");

        // An impossible rule produces a structured FAIL and nonzero exit.
        std::fs::write(
            &budgets,
            "version = 1\n[[rule]]\nname = \"impossible\"\nexpect = \"recall.recalled <= 0\"\n",
        )
        .unwrap();
        let err = run_line(&[
            "trace",
            "check",
            trace_s,
            "--budgets",
            budgets.to_str().unwrap(),
        ])
        .unwrap_err();
        match err {
            CliError::Failed(msg) => assert!(msg.contains("impossible"), "{msg}"),
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn failed_run_flushes_partial_trace() {
        let dir = tmpdir();
        let world = dir.join("pw.json");
        let arts = dir.join("pa.json");
        let trace = dir.join("partial.json");
        let world_s = world.to_str().unwrap();
        let arts_s = arts.to_str().unwrap();
        let trace_s = trace.to_str().unwrap();
        run_line(&["world", "--domain", "cv", "--seed", "7", "--out", world_s]).unwrap();
        run_line(&["offline", "--world", world_s, "--out", arts_s]).unwrap();

        // --stages 0 fails validation *inside* the traced pipeline body.
        let err = run_line(&[
            "select",
            "--world",
            world_s,
            "--artifacts",
            arts_s,
            "--target",
            "beans",
            "--stages",
            "0",
            "--trace-out",
            trace_s,
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Selection(_)), "{err:?}");

        // The partial trace still landed on disk, marked incomplete.
        let report: TraceReport =
            serde_json::from_str(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        assert!(!report.completed);
        // And downstream tooling refuses to budget-check it.
        let budgets = dir.join("b.toml");
        std::fs::write(
            &budgets,
            "version = 1\n[[rule]]\nname = \"x\"\nexpect = \"1 <= 2\"\n",
        )
        .unwrap();
        let err = run_line(&[
            "trace",
            "check",
            trace_s,
            "--budgets",
            budgets.to_str().unwrap(),
        ])
        .unwrap_err();
        match err {
            CliError::Failed(msg) => assert!(msg.contains("partial"), "{msg}"),
            other => panic!("expected Failed, got {other:?}"),
        }
        // `summarize` flags it instead of pretending the run finished.
        let out = run_line(&["trace", "summarize", trace_s]).unwrap();
        assert!(out.contains("INCOMPLETE"), "{out}");
    }

    #[test]
    fn serve_and_client_round_trip_through_a_drain() {
        use tps_core::telemetry::TraceReport;
        let dir = tmpdir();
        let world = dir.join("sw.json");
        let arts = dir.join("sa.json");
        let ready = dir.join("serve-ready");
        let trace = dir.join("serve-trace.json");
        let access = dir.join("serve-access.jsonl");
        let world_s = world.to_str().unwrap().to_string();
        let arts_s = arts.to_str().unwrap().to_string();
        let ready_s = ready.to_str().unwrap().to_string();
        let trace_s = trace.to_str().unwrap().to_string();
        let access_s = access.to_str().unwrap().to_string();

        run_line(&["world", "--domain", "cv", "--seed", "7", "--out", &world_s]).unwrap();
        run_line(&["offline", "--world", &world_s, "--out", &arts_s]).unwrap();

        let server = std::thread::spawn({
            let (world_s, arts_s, ready_s, trace_s, access_s) = (
                world_s.clone(),
                arts_s.clone(),
                ready_s.clone(),
                trace_s.clone(),
                access_s.clone(),
            );
            move || {
                run_line(&[
                    "serve",
                    "--world",
                    &world_s,
                    "--artifacts",
                    &arts_s,
                    "--ready-file",
                    &ready_s,
                    "--trace-out",
                    &trace_s,
                    "--access-log",
                    &access_s,
                    "--slo-ms",
                    "60000",
                ])
            }
        });
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&ready) {
                if text.contains(':') {
                    break text.trim().to_string();
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        };

        // One-shot select for the same target: the served result must embed
        // a bit-identical outcome.
        let expected = run_line(&[
            "select",
            "--world",
            &world_s,
            "--artifacts",
            &arts_s,
            "--target",
            "beans",
        ])
        .unwrap();
        let out = run_line(&[
            "client",
            "--addr",
            &addr,
            "--request",
            r#"{"id":1,"target":"beans"}"#,
        ])
        .unwrap();
        assert!(out.contains("\"status\":\"ok\""), "{out}");
        let winner = expected
            .lines()
            .next()
            .and_then(|l| l.split('`').nth(1))
            .unwrap();
        assert!(out.contains(&format!("\"winner\":\"{winner}\"")), "{out}");

        // Repeat → cache hit, byte-identical response line.
        let again = run_line(&[
            "client",
            "--addr",
            &addr,
            "--request",
            r#"{"id":1,"target":"beans"}"#,
        ])
        .unwrap();
        assert_eq!(out, again);

        // Live scrape without draining: a full OpenMetrics exposition.
        let exposition = run_line(&["client", "--addr", &addr, "--metrics", "true"]).unwrap();
        assert!(
            exposition.contains("tps_serve_requests_total 2"),
            "{exposition}"
        );
        assert!(
            exposition.contains("tps_serve_cache_hits_total 1"),
            "{exposition}"
        );
        assert!(
            exposition.contains("tps_serve_request_latency_us_count 2"),
            "{exposition}"
        );
        assert!(
            exposition.contains("tps_serve_window_p50_us"),
            "{exposition}"
        );
        assert!(exposition.trim_end().ends_with("# EOF"), "{exposition}");

        // `tps top --once` condenses the same scrape into one JSON line.
        let top = run_line(&["top", "--addr", &addr, "--once", "true"]).unwrap();
        let top_json: serde_json::Value = serde_json::from_str(top.trim()).unwrap();
        assert_eq!(top_json["requests"], 2, "{top}");
        assert_eq!(top_json["executed"], 1, "{top}");
        assert_eq!(top_json["cache_hits"], 1, "{top}");
        assert_eq!(top_json["slo_violations"], 0, "{top}");
        assert_eq!(top_json["access_log_records"], 2, "{top}");
        assert_eq!(top_json["window_count"], 2, "{top}");

        let out = run_line(&["client", "--addr", &addr, "--shutdown", "true"]).unwrap();
        assert!(out.contains("draining"), "{out}");
        let summary = server.join().unwrap().unwrap();
        assert!(summary.contains("drained after 2 request(s)"), "{summary}");
        assert!(summary.contains("1 executed, 1 cache hit(s)"), "{summary}");
        assert!(summary.contains("window: 2 request(s)"), "{summary}");
        assert!(summary.contains("0 SLO violation(s)"), "{summary}");
        assert!(summary.contains("access log: 2 record(s)"), "{summary}");

        let report: TraceReport =
            serde_json::from_str(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        assert!(report.completed);
        assert_eq!(report.counter("serve.requests"), Some(2.0));
        assert_eq!(report.counter("serve.executed"), Some(1.0));
        assert_eq!(report.counter("serve.cache_hits"), Some(1.0));
        assert_eq!(report.spans_named("serve.request").len(), 1);
        assert_eq!(report.counter("serve.slo_violations"), Some(0.0));
        assert_eq!(report.counter("serve.access_log_records"), Some(2.0));
        assert_eq!(report.counter("serve.access_log_dropped"), Some(0.0));

        // The access log carries one JSONL record per admitted request,
        // and the cache verdicts reconcile with the stats.
        let log = std::fs::read_to_string(&access).unwrap();
        let lines: Vec<&str> = log.lines().collect();
        assert_eq!(lines.len(), 2, "{log}");
        let first: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        let second: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(first["cache"], "miss", "{log}");
        assert_eq!(second["cache"], "hit", "{log}");
        assert_eq!(first["status"], "ok", "{log}");
        assert_eq!(first["fingerprint"], second["fingerprint"], "{log}");
    }
}
