//! `tps` — command-line front end for the two-phase model-selection
//! framework. See `tps help` for usage.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::ParsedArgs::parse(raw) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::usage());
            return ExitCode::FAILURE;
        }
    };
    match commands::run(&parsed) {
        Ok(output) => {
            // Swallow EPIPE so `tps catalog | head` exits cleanly.
            use std::io::Write as _;
            let _ = std::io::stdout().write_all(output.as_bytes());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
