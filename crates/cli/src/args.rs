//! Minimal dependency-free argument parsing for the `tps` binary.
//!
//! Grammar: `tps <command> [POSITIONAL]... [--flag value]...`. Flags are
//! always `--name value` pairs; unknown flags are errors (typos should not
//! be silently ignored on a tool that kicks off hours of fine-tuning).
//! Positionals are collected for the commands that take them (the `trace`
//! family: `tps trace summarize FILE`); every other command rejects them
//! via [`ParsedArgs::restrict`].

use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line: the subcommand, its positional arguments, and
/// its `--flag value` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand (first positional argument).
    pub command: String,
    positionals: Vec<String>,
    flags: BTreeMap<String, String>,
}

/// Argument-parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// A `--flag` had no value.
    MissingValue(String),
    /// A positional argument appeared where a flag was expected.
    UnexpectedPositional(String),
    /// The same flag appeared twice.
    DuplicateFlag(String),
    /// A flag not in the allow-list was passed.
    UnknownFlag(String),
    /// A required flag was absent.
    MissingFlag(&'static str),
    /// A flag value failed to parse.
    BadValue {
        /// The flag.
        flag: String,
        /// The offending value.
        value: String,
        /// Expected kind, e.g. "integer".
        expected: &'static str,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no command given; try `tps help`"),
            ArgError::MissingValue(flag) => write!(f, "flag --{flag} needs a value"),
            ArgError::UnexpectedPositional(arg) => {
                write!(f, "unexpected argument `{arg}` (flags are --name value)")
            }
            ArgError::DuplicateFlag(flag) => write!(f, "flag --{flag} given twice"),
            ArgError::UnknownFlag(flag) => write!(f, "unknown flag --{flag}"),
            ArgError::MissingFlag(flag) => write!(f, "required flag --{flag} missing"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "--{flag} expects {expected}, got `{value}`"),
        }
    }
}

impl std::error::Error for ArgError {}

impl ParsedArgs {
    /// Parse raw arguments (without the program name).
    pub fn parse<I, S>(args: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut iter = args.into_iter().map(Into::into);
        let command = iter.next().ok_or(ArgError::MissingCommand)?;
        if command.starts_with("--") {
            return Err(ArgError::MissingCommand);
        }
        let mut flags = BTreeMap::new();
        let mut positionals = Vec::new();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                positionals.push(arg);
                continue;
            };
            let value = iter
                .next()
                .ok_or_else(|| ArgError::MissingValue(name.to_string()))?;
            if flags.insert(name.to_string(), value).is_some() {
                return Err(ArgError::DuplicateFlag(name.to_string()));
            }
        }
        Ok(Self {
            command,
            positionals,
            flags,
        })
    }

    /// Reject any flag outside `allowed` and any positional argument —
    /// the contract of every non-`trace` command.
    pub fn restrict(&self, allowed: &[&str]) -> Result<(), ArgError> {
        if let Some(stray) = self.positionals.first() {
            return Err(ArgError::UnexpectedPositional(stray.clone()));
        }
        self.restrict_flags(allowed)
    }

    /// Reject any flag outside `allowed`, leaving positionals to the
    /// caller (the `trace` subcommands consume them).
    pub fn restrict_flags(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for flag in self.flags.keys() {
            if !allowed.contains(&flag.as_str()) {
                return Err(ArgError::UnknownFlag(flag.clone()));
            }
        }
        Ok(())
    }

    /// The positional arguments after the subcommand, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Optional string flag.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// Required string flag.
    pub fn require(&self, flag: &'static str) -> Result<&str, ArgError> {
        self.get(flag).ok_or(ArgError::MissingFlag(flag))
    }

    /// Optional typed flag with a default.
    pub fn get_parse<T: std::str::FromStr>(
        &self,
        flag: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                value: v.to_string(),
                expected,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_and_flags() {
        let a = ParsedArgs::parse(["select", "--target", "mnli", "--top-k", "10"]).unwrap();
        assert_eq!(a.command, "select");
        assert_eq!(a.get("target"), Some("mnli"));
        assert_eq!(a.get_parse("top-k", 0usize, "integer").unwrap(), 10);
        assert_eq!(a.get("absent"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert_eq!(
            ParsedArgs::parse(Vec::<String>::new()).unwrap_err(),
            ArgError::MissingCommand
        );
        assert_eq!(
            ParsedArgs::parse(["--seed", "1"]).unwrap_err(),
            ArgError::MissingCommand
        );
        assert_eq!(
            ParsedArgs::parse(["world", "--seed"]).unwrap_err(),
            ArgError::MissingValue("seed".into())
        );
        assert_eq!(
            ParsedArgs::parse(["world", "--seed", "1", "--seed", "2"]).unwrap_err(),
            ArgError::DuplicateFlag("seed".into())
        );
    }

    #[test]
    fn restrict_catches_typos() {
        let a = ParsedArgs::parse(["world", "--sede", "1"]).unwrap();
        assert_eq!(
            a.restrict(&["seed"]).unwrap_err(),
            ArgError::UnknownFlag("sede".into())
        );
        let ok = ParsedArgs::parse(["world", "--seed", "1"]).unwrap();
        assert!(ok.restrict(&["seed"]).is_ok());
    }

    #[test]
    fn positionals_are_collected_but_restrict_rejects_them() {
        let a = ParsedArgs::parse(["trace", "summarize", "t.json", "--top", "5"]).unwrap();
        assert_eq!(a.command, "trace");
        assert_eq!(a.positionals(), ["summarize", "t.json"]);
        assert_eq!(a.get("top"), Some("5"));
        // Non-trace commands keep their strict no-positionals contract.
        assert_eq!(
            a.restrict(&["top"]).unwrap_err(),
            ArgError::UnexpectedPositional("summarize".into())
        );
        assert!(a.restrict_flags(&["top"]).is_ok());
        let stray = ParsedArgs::parse(["world", "stray"]).unwrap();
        assert_eq!(
            stray.restrict(&["seed"]).unwrap_err(),
            ArgError::UnexpectedPositional("stray".into())
        );
    }

    #[test]
    fn typed_parsing() {
        let a = ParsedArgs::parse(["x", "--k", "ten"]).unwrap();
        assert!(matches!(
            a.get_parse("k", 0usize, "integer"),
            Err(ArgError::BadValue { .. })
        ));
        assert_eq!(a.get_parse("missing", 7usize, "integer").unwrap(), 7);
    }

    #[test]
    fn require_reports_flag_name() {
        let a = ParsedArgs::parse(["x"]).unwrap();
        assert_eq!(
            a.require("target").unwrap_err(),
            ArgError::MissingFlag("target")
        );
    }

    #[test]
    fn errors_display_helpfully() {
        let s = ArgError::BadValue {
            flag: "seed".into(),
            value: "abc".into(),
            expected: "integer",
        }
        .to_string();
        assert!(s.contains("seed") && s.contains("abc") && s.contains("integer"));
    }
}
