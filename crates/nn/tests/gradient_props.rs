//! Property-based verification of the hand-rolled backprop: for random
//! network shapes, random parameters, and random batches, every analytic
//! gradient must match central finite differences. This is the single most
//! load-bearing test in `tps-nn` — everything else trusts these gradients.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tps_nn::{Matrix, Mlp};

/// Build a random network and batch from a seed.
fn setup(
    dim: usize,
    hidden: usize,
    classes: usize,
    n: usize,
    seed: u64,
) -> (Mlp, Matrix, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mlp = Mlp::new(dim, hidden, classes, &mut rng);
    let x = Matrix::kaiming(n, dim, 1, &mut rng); // reuse kaiming as a bounded sampler
    let y: Vec<usize> = (0..n).map(|i| i % classes).collect();
    (mlp, x, y)
}

fn finite_diff(mlp: &Mlp, x: &Matrix, y: &[usize], mutate: impl Fn(&mut Mlp, f64)) -> f64 {
    let eps = 1e-6;
    let mut plus = mlp.clone();
    mutate(&mut plus, eps);
    let mut minus = mlp.clone();
    mutate(&mut minus, -eps);
    (plus.loss_and_grad(x, y).0 - minus.loss_and_grad(x, y).0) / (2.0 * eps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn analytic_gradients_match_finite_differences(
        dim in 2usize..6,
        hidden in 2usize..8,
        classes in 2usize..5,
        n in 1usize..6,
        seed in 0u64..10_000,
        // Random parameter coordinates to probe (fractions of each shape).
        fw1 in 0.0f64..1.0,
        fw2 in 0.0f64..1.0,
        fb in 0.0f64..1.0,
    ) {
        let (mlp, x, y) = setup(dim, hidden, classes, n, seed);
        let (_, grads) = mlp.loss_and_grad(&x, &y);

        // One probed coordinate per parameter tensor.
        let w1_idx = ((dim * hidden) as f64 * fw1) as usize % (dim * hidden);
        let (r1, c1) = (w1_idx / hidden, w1_idx % hidden);
        let fd = finite_diff(&mlp, &x, &y, |m, e| {
            m.w1.set(r1, c1, m.w1.get(r1, c1) + e);
        });
        prop_assert!(
            (fd - grads.w1.get(r1, c1)).abs() < 1e-4,
            "w1[{r1},{c1}]: fd {fd} vs analytic {}",
            grads.w1.get(r1, c1)
        );

        let w2_idx = ((hidden * classes) as f64 * fw2) as usize % (hidden * classes);
        let (r2, c2) = (w2_idx / classes, w2_idx % classes);
        let fd = finite_diff(&mlp, &x, &y, |m, e| {
            m.w2.set(r2, c2, m.w2.get(r2, c2) + e);
        });
        prop_assert!(
            (fd - grads.w2.get(r2, c2)).abs() < 1e-4,
            "w2[{r2},{c2}]: fd {fd} vs analytic {}",
            grads.w2.get(r2, c2)
        );

        let b1_idx = (hidden as f64 * fb) as usize % hidden;
        let fd = finite_diff(&mlp, &x, &y, |m, e| m.b1[b1_idx] += e);
        prop_assert!((fd - grads.b1[b1_idx]).abs() < 1e-4, "b1[{b1_idx}]");

        let b2_idx = (classes as f64 * fb) as usize % classes;
        let fd = finite_diff(&mlp, &x, &y, |m, e| m.b2[b2_idx] += e);
        prop_assert!((fd - grads.b2[b2_idx]).abs() < 1e-4, "b2[{b2_idx}]");
    }

    #[test]
    fn loss_is_nonnegative_and_probs_normalised(
        dim in 2usize..6,
        hidden in 2usize..8,
        classes in 2usize..5,
        n in 1usize..8,
        seed in 0u64..10_000,
    ) {
        let (mlp, x, y) = setup(dim, hidden, classes, n, seed);
        let (loss, _) = mlp.loss_and_grad(&x, &y);
        prop_assert!(loss >= 0.0 && loss.is_finite(), "loss {loss}");
        let p = mlp.predict_proba(&x);
        for r in 0..p.rows() {
            let s: f64 = p.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn gradient_step_never_increases_loss_much(
        dim in 2usize..6,
        hidden in 2usize..8,
        classes in 2usize..4,
        n in 2usize..8,
        seed in 0u64..10_000,
    ) {
        // A tiny step along the negative gradient must reduce the loss
        // (first-order Taylor); tolerance covers curvature.
        let (mut mlp, x, y) = setup(dim, hidden, classes, n, seed);
        let (loss0, grads) = mlp.loss_and_grad(&x, &y);
        let step = 1e-3;
        mlp.w1.add_scaled(&grads.w1, -step);
        mlp.w2.add_scaled(&grads.w2, -step);
        for (b, g) in mlp.b1.iter_mut().zip(&grads.b1) {
            *b -= step * g;
        }
        for (b, g) in mlp.b2.iter_mut().zip(&grads.b2) {
            *b -= step * g;
        }
        let (loss1, _) = mlp.loss_and_grad(&x, &y);
        prop_assert!(loss1 <= loss0 + 1e-9, "loss rose: {loss0} -> {loss1}");
    }
}
