//! Synthetic classification tasks for the real-NN substrate.
//!
//! All tasks live in one shared feature space. A [`TaskUniverse`] holds a
//! pool of class *prototypes* (Gaussian cluster centers); a [`NnTask`]
//! picks a subset of prototypes as its classes, with task-specific jitter.
//! Two tasks are *related* exactly when they share (or sit near the same)
//! prototypes — a model pre-trained on one then carries features that
//! linearly separate the other, which is the phenomenon LEEP and the whole
//! selection framework exploit, here reproduced with real training rather
//! than a parametric law.

use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A pool of Gaussian class prototypes in a shared feature space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskUniverse {
    dim: usize,
    prototypes: Vec<Vec<f64>>,
}

impl TaskUniverse {
    /// Sample `n_prototypes` prototype centers on a scaled sphere-ish shell
    /// so classes are separable but not trivially so.
    pub fn new(dim: usize, n_prototypes: usize, seed: u64) -> Self {
        assert!(dim >= 2 && n_prototypes >= 2);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7a5e);
        let prototypes = (0..n_prototypes)
            .map(|_| {
                let v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..=1.0)).collect();
                let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
                // Scale to radius 2: inter-class distance dominates the
                // within-class noise used below.
                v.into_iter().map(|x| 2.0 * x / norm).collect()
            })
            .collect();
        Self { dim, prototypes }
    }

    /// Feature-space dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of prototypes in the pool.
    pub fn n_prototypes(&self) -> usize {
        self.prototypes.len()
    }

    /// A prototype center.
    pub fn prototype(&self, i: usize) -> &[f64] {
        &self.prototypes[i]
    }
}

/// A classification task: a subset of prototypes with jitter and noise.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NnTask {
    /// Task name.
    pub name: String,
    /// Prototype index per class.
    pub proto_ids: Vec<usize>,
    /// Per-task displacement applied to each class center (domain shift).
    pub center_jitter: f64,
    /// Within-class Gaussian noise scale.
    pub sample_noise: f64,
    /// Task seed (controls jitter and sampling).
    pub seed: u64,
}

impl NnTask {
    /// Number of classes.
    pub fn n_labels(&self) -> usize {
        self.proto_ids.len()
    }

    /// Materialised class centers (prototypes + task jitter).
    pub fn centers(&self, universe: &TaskUniverse) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xce17);
        self.proto_ids
            .iter()
            .map(|&p| {
                universe
                    .prototype(p)
                    .iter()
                    .map(|&x| x + rng.gen_range(-self.center_jitter..=self.center_jitter))
                    .collect()
            })
            .collect()
    }

    /// Sample a labelled split of `n_per_class` samples per class.
    /// `split_tag` decorrelates train/val/test draws.
    pub fn sample(
        &self,
        universe: &TaskUniverse,
        n_per_class: usize,
        split_tag: u64,
    ) -> LabelledData {
        assert!(n_per_class > 0);
        let centers = self.centers(universe);
        let mut rng = StdRng::seed_from_u64(self.seed ^ split_tag.rotate_left(17));
        let n = n_per_class * centers.len();
        let dim = universe.dim();
        let mut x = Vec::with_capacity(n * dim);
        let mut y = Vec::with_capacity(n);
        // Interleave classes so mini-batch order is label-balanced.
        for i in 0..n_per_class {
            for (label, center) in centers.iter().enumerate() {
                let _ = i;
                for &c in center {
                    x.push(c + gaussian(&mut rng) * self.sample_noise);
                }
                y.push(label);
            }
        }
        LabelledData {
            x: Matrix::from_vec(n, dim, x),
            y,
        }
    }
}

/// A labelled dataset: features (rows = samples) plus labels.
#[derive(Debug, Clone)]
pub struct LabelledData {
    /// `n × dim` feature matrix.
    pub x: Matrix,
    /// One label per row of `x`.
    pub y: Vec<usize>,
}

impl LabelledData {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the split is empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }
}

/// Box–Muller standard normal.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> TaskUniverse {
        TaskUniverse::new(8, 12, 99)
    }

    fn task(protos: Vec<usize>) -> NnTask {
        NnTask {
            name: "t".into(),
            proto_ids: protos,
            center_jitter: 0.05,
            sample_noise: 0.3,
            seed: 5,
        }
    }

    #[test]
    fn prototypes_on_radius_two_shell() {
        let u = universe();
        for i in 0..u.n_prototypes() {
            let r = u.prototype(i).iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((r - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_shapes_and_balance() {
        let u = universe();
        let t = task(vec![0, 3, 7]);
        let d = t.sample(&u, 20, 1);
        assert_eq!(d.len(), 60);
        assert_eq!(d.x.rows(), 60);
        assert_eq!(d.x.cols(), 8);
        for label in 0..3 {
            assert_eq!(d.y.iter().filter(|&&l| l == label).count(), 20);
        }
    }

    #[test]
    fn splits_differ_but_are_reproducible() {
        let u = universe();
        let t = task(vec![1, 2]);
        let train = t.sample(&u, 10, 1);
        let train2 = t.sample(&u, 10, 1);
        let val = t.sample(&u, 10, 2);
        assert_eq!(train.x, train2.x);
        assert_ne!(train.x, val.x);
    }

    #[test]
    fn samples_cluster_near_their_centers() {
        let u = universe();
        let t = task(vec![0, 5]);
        let centers = t.centers(&u);
        let d = t.sample(&u, 30, 3);
        for i in 0..d.len() {
            let own: f64 =
                d.x.row(i)
                    .iter()
                    .zip(&centers[d.y[i]])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
            let other: f64 =
                d.x.row(i)
                    .iter()
                    .zip(&centers[1 - d.y[i]])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
            // Not every point, but the vast majority should be closer to its
            // own center; assert on the mean.
            let _ = (own, other);
        }
        let mean_margin: f64 = (0..d.len())
            .map(|i| {
                let own: f64 =
                    d.x.row(i)
                        .iter()
                        .zip(&centers[d.y[i]])
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                let other: f64 =
                    d.x.row(i)
                        .iter()
                        .zip(&centers[1 - d.y[i]])
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                other - own
            })
            .sum::<f64>()
            / d.len() as f64;
        assert!(mean_margin > 0.5, "mean margin {mean_margin}");
    }

    #[test]
    fn task_jitter_moves_centers() {
        let u = universe();
        let mut t1 = task(vec![0, 1]);
        let mut t2 = task(vec![0, 1]);
        t1.seed = 10;
        t2.seed = 11;
        assert_ne!(t1.centers(&u), t2.centers(&u));
    }
}
