//! Adam optimizer (Kingma & Ba, 2015) — the de-facto default for
//! fine-tuning transformers, and therefore the more faithful optimiser for
//! the substrate's fine-tuning runs. Kept alongside SGD-with-momentum so
//! the two can be compared (see `optimizer_comparison` test).

use crate::mlp::{Gradients, Mlp};
use crate::tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate (head and body share it here; transformers typically
    /// fine-tune whole-network with one small LR).
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical floor.
    pub eps: f64,
    /// Decoupled weight decay (AdamW-style).
    pub weight_decay: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 0.01,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 1e-4,
        }
    }
}

/// Per-parameter first/second moment state.
#[derive(Debug, Clone)]
pub struct AdamState {
    step: u64,
    mw1: Matrix,
    vw1: Matrix,
    mb1: Vec<f64>,
    vb1: Vec<f64>,
    mw2: Matrix,
    vw2: Matrix,
    mb2: Vec<f64>,
    vb2: Vec<f64>,
}

impl AdamState {
    /// Zeroed state matching a network's shapes.
    pub fn for_mlp(mlp: &Mlp) -> Self {
        Self {
            step: 0,
            mw1: Matrix::zeros(mlp.w1.rows(), mlp.w1.cols()),
            vw1: Matrix::zeros(mlp.w1.rows(), mlp.w1.cols()),
            mb1: vec![0.0; mlp.b1.len()],
            vb1: vec![0.0; mlp.b1.len()],
            mw2: Matrix::zeros(mlp.w2.rows(), mlp.w2.cols()),
            vw2: Matrix::zeros(mlp.w2.rows(), mlp.w2.cols()),
            mb2: vec![0.0; mlp.b2.len()],
            vb2: vec![0.0; mlp.b2.len()],
        }
    }

    /// Apply one Adam update from a gradient batch.
    pub fn apply(&mut self, mlp: &mut Mlp, grads: &Gradients, cfg: &AdamConfig) {
        self.step += 1;
        let bc1 = 1.0 - cfg.beta1.powi(self.step as i32);
        let bc2 = 1.0 - cfg.beta2.powi(self.step as i32);
        update_slice(
            self.mw1.data_mut(),
            self.vw1.data_mut(),
            mlp.w1.data_mut(),
            grads.w1.data(),
            cfg,
            bc1,
            bc2,
        );
        update_slice(
            &mut self.mb1,
            &mut self.vb1,
            &mut mlp.b1,
            &grads.b1,
            cfg,
            bc1,
            bc2,
        );
        update_slice(
            self.mw2.data_mut(),
            self.vw2.data_mut(),
            mlp.w2.data_mut(),
            grads.w2.data(),
            cfg,
            bc1,
            bc2,
        );
        update_slice(
            &mut self.mb2,
            &mut self.vb2,
            &mut mlp.b2,
            &grads.b2,
            cfg,
            bc1,
            bc2,
        );
    }
}

fn update_slice(
    m: &mut [f64],
    v: &mut [f64],
    w: &mut [f64],
    g: &[f64],
    cfg: &AdamConfig,
    bc1: f64,
    bc2: f64,
) {
    for i in 0..w.len() {
        m[i] = cfg.beta1 * m[i] + (1.0 - cfg.beta1) * g[i];
        v[i] = cfg.beta2 * v[i] + (1.0 - cfg.beta2) * g[i] * g[i];
        let m_hat = m[i] / bc1;
        let v_hat = v[i] / bc2;
        // AdamW: decay decoupled from the adaptive step.
        w[i] -= cfg.lr * (m_hat / (v_hat.sqrt() + cfg.eps) + cfg.weight_decay * w[i]);
    }
}

/// Train one epoch with Adam (mini-batched, shuffled). Returns mean loss.
pub fn train_epoch_adam<R: rand::Rng + ?Sized>(
    mlp: &mut Mlp,
    state: &mut AdamState,
    data: &crate::datagen::LabelledData,
    cfg: &AdamConfig,
    batch_size: usize,
    rng: &mut R,
) -> f64 {
    use rand::seq::SliceRandom;
    assert!(!data.is_empty(), "cannot train on an empty split");
    let n = data.len();
    let dim = data.x.cols();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut total = 0.0;
    let mut batches = 0;
    for chunk in order.chunks(batch_size.max(1)) {
        let mut bx = Vec::with_capacity(chunk.len() * dim);
        let mut by = Vec::with_capacity(chunk.len());
        for &i in chunk {
            bx.extend_from_slice(data.x.row(i));
            by.push(data.y[i]);
        }
        let bx = Matrix::from_vec(chunk.len(), dim, bx);
        let (loss, grads) = mlp.loss_and_grad(&bx, &by);
        state.apply(mlp, &grads, cfg);
        total += loss;
        batches += 1;
    }
    total / batches.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{NnTask, TaskUniverse};
    use crate::train::{evaluate, train_epoch, SgdState, TrainConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (
        TaskUniverse,
        crate::datagen::LabelledData,
        crate::datagen::LabelledData,
    ) {
        let universe = TaskUniverse::new(10, 12, 6);
        let task = NnTask {
            name: "adam-test".into(),
            proto_ids: vec![0, 4, 8],
            center_jitter: 0.05,
            sample_noise: 0.4,
            seed: 31,
        };
        let train = task.sample(&universe, 30, 1);
        let val = task.sample(&universe, 15, 2);
        (universe, train, val)
    }

    #[test]
    fn adam_learns_the_task() {
        let (universe, train, val) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let mut mlp = Mlp::new(universe.dim(), 16, 3, &mut rng);
        let mut state = AdamState::for_mlp(&mlp);
        let cfg = AdamConfig::default();
        for _ in 0..15 {
            train_epoch_adam(&mut mlp, &mut state, &train, &cfg, 16, &mut rng);
        }
        let acc = evaluate(&mlp, &val);
        assert!(acc > 0.85, "val accuracy {acc}");
    }

    #[test]
    fn adam_loss_decreases() {
        let (universe, train, _) = setup();
        let mut rng = StdRng::seed_from_u64(6);
        let mut mlp = Mlp::new(universe.dim(), 16, 3, &mut rng);
        let mut state = AdamState::for_mlp(&mlp);
        let cfg = AdamConfig::default();
        let first = train_epoch_adam(&mut mlp, &mut state, &train, &cfg, 16, &mut rng);
        let mut last = first;
        for _ in 0..8 {
            last = train_epoch_adam(&mut mlp, &mut state, &train, &cfg, 16, &mut rng);
        }
        assert!(last < first * 0.7, "first {first} last {last}");
    }

    #[test]
    fn optimizer_comparison_both_converge() {
        // Adam and SGD reach comparable accuracy on the same budget; this
        // is a regression guard on both optimisers, not a horse race.
        let (universe, train, val) = setup();
        let mut rng = StdRng::seed_from_u64(7);
        let mut adam_net = Mlp::new(universe.dim(), 16, 3, &mut rng);
        let mut sgd_net = adam_net.clone();
        let mut adam_state = AdamState::for_mlp(&adam_net);
        let mut sgd_state = SgdState::for_mlp(&sgd_net);
        for _ in 0..12 {
            train_epoch_adam(
                &mut adam_net,
                &mut adam_state,
                &train,
                &AdamConfig::default(),
                16,
                &mut rng,
            );
            train_epoch(
                &mut sgd_net,
                &mut sgd_state,
                &train,
                &TrainConfig::default(),
                &mut rng,
            );
        }
        let adam_acc = evaluate(&adam_net, &val);
        let sgd_acc = evaluate(&sgd_net, &val);
        assert!(adam_acc > 0.8, "adam {adam_acc}");
        assert!(sgd_acc > 0.8, "sgd {sgd_acc}");
        assert!((adam_acc - sgd_acc).abs() < 0.2);
    }

    #[test]
    fn bias_correction_matters_on_first_step() {
        // After one step, the update magnitude should be ~lr (bias-corrected),
        // not lr * (1 - beta1) as it would be without correction.
        let (universe, train, _) = setup();
        let mut rng = StdRng::seed_from_u64(8);
        let mut mlp = Mlp::new(universe.dim(), 8, 3, &mut rng);
        let before = mlp.w2.clone();
        let mut state = AdamState::for_mlp(&mlp);
        let cfg = AdamConfig {
            weight_decay: 0.0,
            ..Default::default()
        };
        // One full-batch step.
        let (_, grads) = mlp.loss_and_grad(&train.x, &train.y);
        state.apply(&mut mlp, &grads, &cfg);
        let max_delta = mlp
            .w2
            .data()
            .iter()
            .zip(before.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        // Bias-corrected first step ≈ lr for any nonzero-gradient weight.
        assert!(max_delta > cfg.lr * 0.5, "max delta {max_delta}");
        assert!(max_delta < cfg.lr * 1.5, "max delta {max_delta}");
    }
}
