//! Minimal dense-matrix type for the micro neural-network substrate.
//!
//! Row-major `f64` storage with exactly the operations the MLP needs:
//! matmul, transposed matmuls for backprop, and element-wise helpers.
//! Deliberately not a general tensor library — shapes are validated with
//! assertions because shape errors here are programmer bugs, not runtime
//! conditions.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from existing row-major data.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self { rows, cols, data }
    }

    /// Kaiming-style uniform init: `U(±sqrt(6 / fan_in))`.
    pub fn kaiming<R: Rng + ?Sized>(rows: usize, cols: usize, fan_in: usize, rng: &mut R) -> Self {
        let bound = (6.0 / fan_in.max(1) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..=bound))
            .collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the raw data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the raw data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other` (`m×k · k×n → m×n`).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        // ikj loop order: streams through `other` rows, cache-friendly.
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[p * n..(p + 1) * n];
                let orow = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · other` (`m×k ᵀ · m×n → k×n`) — used for weight gradients.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(k, n);
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            let brow = &other.data[i * n..(i + 1) * n];
            for (p, &a) in arow.iter_enumerate_nonzero() {
                let orow = &mut out.data[p * n..(p + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` (`m×k · n×k ᵀ → m×n`) — used for input gradients.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &other.data[j * k..(j + 1) * k];
                out.data[i * n + j] = arow.iter().zip(brow).map(|(x, y)| x * y).sum();
            }
        }
        out
    }

    /// `self += alpha * other` (same shape).
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f64) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scale all elements in place.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }
}

/// Tiny helper trait so `t_matmul` can skip zero activations (common after
/// ReLU) without allocating.
trait IterEnumNonzero {
    fn iter_enumerate_nonzero(&self) -> NonzeroIter<'_>;
}

impl IterEnumNonzero for [f64] {
    fn iter_enumerate_nonzero(&self) -> NonzeroIter<'_> {
        NonzeroIter {
            slice: self,
            idx: 0,
        }
    }
}

struct NonzeroIter<'a> {
    slice: &'a [f64],
    idx: usize,
}

impl<'a> Iterator for NonzeroIter<'a> {
    type Item = (usize, &'a f64);

    fn next(&mut self) -> Option<Self::Item> {
        while self.idx < self.slice.len() {
            let i = self.idx;
            self.idx += 1;
            if self.slice[i] != 0.0 {
                return Some((i, &self.slice[i]));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transposed_matmuls_agree_with_naive() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Matrix::kaiming(4, 3, 3, &mut rng);
        let b = Matrix::kaiming(4, 5, 5, &mut rng);
        let t = a.t_matmul(&b); // aᵀ b: 3×5
        for i in 0..3 {
            for j in 0..5 {
                let naive: f64 = (0..4).map(|r| a.get(r, i) * b.get(r, j)).sum();
                assert!((t.get(i, j) - naive).abs() < 1e-12);
            }
        }
        let c = Matrix::kaiming(5, 3, 3, &mut rng);
        let mt = a.matmul_t(&c); // a cᵀ: 4×5
        for i in 0..4 {
            for j in 0..5 {
                let naive: f64 = (0..3).map(|k| a.get(i, k) * c.get(j, k)).sum();
                assert!((mt.get(i, j) - naive).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn add_scaled_and_scale() {
        let mut a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![10.0, 20.0]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data(), &[6.0, 12.0]);
        a.scale(2.0);
        assert_eq!(a.data(), &[12.0, 24.0]);
    }

    #[test]
    fn kaiming_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::kaiming(10, 10, 25, &mut rng);
        let bound = (6.0f64 / 25.0).sqrt();
        assert!(m.data().iter().all(|&x| x.abs() <= bound));
        assert!(m.data().iter().any(|&x| x != 0.0));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn row_access() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.get(0, 1), 2.0);
    }
}
