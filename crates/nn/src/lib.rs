//! # tps-nn — micro neural-network substrate
//!
//! A small but *real* deep-learning stack: dense matrices with hand-rolled
//! backprop ([`tensor`], [`mlp`]), SGD with momentum ([`train`]), Gaussian
//! prototype classification tasks in a shared feature space ([`datagen`]),
//! and a zoo of genuinely pre-trained models ([`zoo`]) implementing the
//! `tps-core` substrate traits.
//!
//! Its purpose in the reproduction: everything `tps-zoo` *simulates*
//! (transfer curves, prediction matrices) this crate *computes* — the
//! selection pipeline runs unchanged on real SGD fine-tuning, validating
//! that the framework's assumptions (family similarity, LEEP ↔ transfer
//! correlation, early-val ↔ final-test consistency) are properties of
//! actual training and not artifacts of the simulator.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adam;
pub mod datagen;
pub mod mlp;
pub mod tensor;
pub mod train;
pub mod zoo;

pub use adam::{train_epoch_adam, AdamConfig, AdamState};
pub use datagen::{LabelledData, NnTask, TaskUniverse};
pub use mlp::Mlp;
pub use tensor::Matrix;
pub use train::{evaluate, train_epoch, SgdState, TrainConfig};
pub use zoo::{NnOracle, NnTrainer, PretrainedModel, RealZoo, RealZooConfig};
