//! A zoo of **really trained** models, and `tps-core` trait implementations
//! backed by real SGD fine-tuning.
//!
//! Where `tps-zoo` samples curves from a parametric law, this module
//! actually pre-trains one MLP per repository model on an upstream task,
//! really fine-tunes each on benchmark/target tasks, and feeds genuine
//! soft-max outputs to LEEP — the honest end-to-end validation of the
//! framework (integration tests and the `real_nn_pipeline` example run on
//! it). Scales are kept small (tens of models, thousands of parameters)
//! so a full offline build takes well under a second.

use crate::datagen::{LabelledData, NnTask, TaskUniverse};
use crate::mlp::Mlp;
use crate::train::{evaluate, train_epoch, SgdState, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tps_core::curve::{CurveSet, LearningCurve};
use tps_core::error::{Result, SelectionError};
use tps_core::ids::{DatasetId, ModelId};
use tps_core::matrix::PerformanceMatrix;
use tps_core::proxy::PredictionMatrix;
use tps_core::telemetry::Telemetry;
use tps_core::traits::{FeatureOracle, ProxyOracle, TargetTrainer};

/// Split tags for decorrelated data draws.
const TRAIN_SPLIT: u64 = 0x11;
const VAL_SPLIT: u64 = 0x22;
const TEST_SPLIT: u64 = 0x33;

/// Configuration of a real-NN zoo.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RealZooConfig {
    /// Master seed.
    pub seed: u64,
    /// Shared feature-space dimensionality.
    pub dim: usize,
    /// Hidden width of every model.
    pub hidden: usize,
    /// Prototype pool size.
    pub n_prototypes: usize,
    /// Number of model families (members share an upstream task).
    pub n_families: usize,
    /// Members per family.
    pub family_size: usize,
    /// Singleton models with unique upstream tasks.
    pub n_singletons: usize,
    /// Benchmark tasks.
    pub n_benchmarks: usize,
    /// Target tasks.
    pub n_targets: usize,
    /// Fine-tuning stage budget (epochs) per run.
    pub stages: usize,
    /// Pre-training epochs per model.
    pub pretrain_epochs: usize,
    /// Classes per task.
    pub labels_per_task: usize,
    /// Training samples per class.
    pub n_train_per_class: usize,
    /// Validation/test samples per class.
    pub n_eval_per_class: usize,
    /// Within-class sample noise of every task (larger = harder tasks,
    /// more spread in fine-tuning outcomes).
    pub task_noise: f64,
    /// Per-task jitter applied to prototype centers.
    pub center_jitter: f64,
}

impl Default for RealZooConfig {
    fn default() -> Self {
        Self {
            seed: 17,
            dim: 12,
            hidden: 24,
            n_prototypes: 18,
            n_families: 4,
            family_size: 3,
            n_singletons: 3,
            n_benchmarks: 6,
            n_targets: 2,
            stages: 3,
            pretrain_epochs: 15,
            labels_per_task: 3,
            n_train_per_class: 30,
            n_eval_per_class: 20,
            task_noise: 0.45,
            center_jitter: 0.12,
        }
    }
}

/// One pre-trained repository model.
#[derive(Debug, Clone)]
pub struct PretrainedModel {
    /// Repository-style name.
    pub name: String,
    /// The trained network (body + upstream head).
    pub mlp: Mlp,
    /// The upstream task it was pre-trained on.
    pub upstream: NnTask,
}

/// A fully materialised real-NN zoo.
#[derive(Debug, Clone)]
pub struct RealZoo {
    /// Generation configuration.
    pub config: RealZooConfig,
    /// Shared prototype universe.
    pub universe: TaskUniverse,
    /// The pre-trained repository.
    pub models: Vec<PretrainedModel>,
    /// Benchmark tasks (offline).
    pub benchmarks: Vec<NnTask>,
    /// Target tasks (online).
    pub targets: Vec<NnTask>,
}

impl RealZoo {
    /// Generate tasks and **pre-train every model with real SGD**.
    pub fn generate(config: &RealZooConfig) -> RealZoo {
        assert!(config.labels_per_task >= 2);
        assert!(config.labels_per_task <= config.n_prototypes);
        let universe = TaskUniverse::new(config.dim, config.n_prototypes, config.seed);
        let mk_task = |name: String, first_proto: usize, seed: u64| NnTask {
            name,
            proto_ids: (0..config.labels_per_task)
                .map(|i| (first_proto + i) % config.n_prototypes)
                .collect(),
            center_jitter: config.center_jitter,
            sample_noise: config.task_noise,
            seed,
        };

        // Upstream tasks: families stride through the prototype pool so
        // different families have different class structure; benchmarks
        // interleave so every family is close to *some* benchmarks.
        let mut models = Vec::new();
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9e11);
        for f in 0..config.n_families {
            let upstream = mk_task(
                format!("upstream-f{f}"),
                f * 3,
                config.seed.wrapping_add(100 + f as u64),
            );
            for m in 0..config.family_size {
                let name = format!("family{f}/member-{m}");
                let mlp = pretrain(&universe, &upstream, config, &mut rng);
                models.push(PretrainedModel {
                    name,
                    mlp,
                    upstream: upstream.clone(),
                });
            }
        }
        for s in 0..config.n_singletons {
            let upstream = mk_task(
                format!("upstream-s{s}"),
                config.n_families * 3 + s * 2 + 1,
                config.seed.wrapping_add(900 + s as u64),
            );
            let mlp = pretrain(&universe, &upstream, config, &mut rng);
            models.push(PretrainedModel {
                name: format!("singleton/model-{s}"),
                mlp,
                upstream,
            });
        }

        let benchmarks = (0..config.n_benchmarks)
            .map(|b| {
                mk_task(
                    format!("bench-{b}"),
                    (b * 3 + 1) % config.n_prototypes,
                    config.seed.wrapping_add(500 + b as u64),
                )
            })
            .collect();
        // Targets reuse a family's prototype neighbourhood with fresh
        // jitter: related to the repository, disjoint from the benchmarks.
        let targets = (0..config.n_targets)
            .map(|t| {
                mk_task(
                    format!("target-{t}"),
                    (t * 3) % config.n_prototypes,
                    config.seed.wrapping_add(700 + t as u64),
                )
            })
            .collect();

        RealZoo {
            config: *config,
            universe,
            models,
            benchmarks,
            targets,
        }
    }

    /// Number of models.
    pub fn n_models(&self) -> usize {
        self.models.len()
    }

    /// Really fine-tune every model on every benchmark and collect the
    /// performance matrix + learning curves (the offline phase).
    pub fn build_offline(&self) -> Result<(PerformanceMatrix, CurveSet)> {
        self.build_offline_par(1)
    }

    /// [`Self::build_offline`] with the `|M| × |D|` fine-tuning runs spread
    /// over `threads` workers. Every run seeds its own session from
    /// `(zoo seed, model name, task name)`, so the artifacts are
    /// bit-identical to the serial build.
    pub fn build_offline_par(&self, threads: usize) -> Result<(PerformanceMatrix, CurveSet)> {
        self.build_offline_traced(threads, &Telemetry::disabled())
    }

    /// [`Self::build_offline_par`] with telemetry: an `nn.offline.build`
    /// span around the whole build and an `nn.offline.runs` counter for the
    /// `|M| × |D|` real fine-tuning runs performed.
    pub fn build_offline_traced(
        &self,
        threads: usize,
        tel: &Telemetry,
    ) -> Result<(PerformanceMatrix, CurveSet)> {
        let _span = tel.span("nn.offline.build");
        let mut builder = PerformanceMatrix::builder(
            self.models.iter().map(|m| m.name.clone()).collect(),
            self.benchmarks.iter().map(|b| b.name.clone()).collect(),
        );
        let pairs: Vec<(usize, usize)> = (0..self.n_models())
            .flat_map(|mi| (0..self.benchmarks.len()).map(move |bi| (mi, bi)))
            .collect();
        tel.add("nn.offline.runs", pairs.len() as f64);
        let runs = tps_core::parallel::map_indexed(&pairs, threads, |_, &(mi, bi)| {
            self.fine_tune_run(&self.models[mi], &self.benchmarks[bi], self.config.stages)
        });
        let mut curves = Vec::with_capacity(pairs.len());
        for (&(mi, bi), run) in pairs.iter().zip(&runs) {
            builder.record(
                DatasetId::from(bi),
                ModelId::from(mi),
                *run.tests.last().expect("stages >= 1"),
            )?;
            curves.push(LearningCurve::new(
                run.vals.clone(),
                *run.tests.last().expect("stages >= 1"),
            )?);
        }
        Ok((
            builder.build()?,
            CurveSet::new(self.n_models(), self.benchmarks.len(), curves)?,
        ))
    }

    /// Fine-tune one model on one task for `stages` epochs, returning the
    /// validation trace and per-stage test accuracies.
    fn fine_tune_run(&self, model: &PretrainedModel, task: &NnTask, stages: usize) -> FtRun {
        let mut session = FtSession::start(self, model, task);
        let mut vals = Vec::with_capacity(stages);
        let mut tests = Vec::with_capacity(stages);
        for _ in 0..stages {
            let (v, t) = session.advance_epoch();
            vals.push(v);
            tests.push(t);
        }
        FtRun { vals, tests }
    }

    /// A [`TargetTrainer`] that really fine-tunes on `targets[target]`.
    pub fn trainer(&self, target: usize) -> Result<NnTrainer<'_>> {
        if target >= self.targets.len() {
            return Err(SelectionError::UnknownId {
                what: "target task",
                id: target,
            });
        }
        Ok(NnTrainer {
            zoo: self,
            target,
            sessions: (0..self.n_models()).map(|_| None).collect(),
            tel: Telemetry::disabled(),
        })
    }

    /// A [`ProxyOracle`] exposing real model predictions on
    /// `targets[target]`.
    pub fn oracle(&self, target: usize) -> Result<NnOracle<'_>> {
        if target >= self.targets.len() {
            return Err(SelectionError::UnknownId {
                what: "target task",
                id: target,
            });
        }
        let data =
            self.targets[target].sample(&self.universe, self.config.n_train_per_class, TRAIN_SPLIT);
        Ok(NnOracle {
            zoo: self,
            target,
            data,
        })
    }

    /// Ground-truth accuracy of a model fully fine-tuned on a target — for
    /// evaluation only.
    pub fn target_accuracy(&self, model: ModelId, target: usize) -> f64 {
        let run = self.fine_tune_run(
            &self.models[model.index()],
            &self.targets[target],
            self.config.stages,
        );
        *run.tests.last().expect("stages >= 1")
    }
}

/// Validation/test traces of one real fine-tuning run.
struct FtRun {
    vals: Vec<f64>,
    tests: Vec<f64>,
}

/// Live fine-tuning state of one model on one task.
struct FtSession {
    mlp: Mlp,
    state: SgdState,
    rng: StdRng,
    train: LabelledData,
    val: LabelledData,
    test: LabelledData,
    cfg: TrainConfig,
}

impl FtSession {
    fn start(zoo: &RealZoo, model: &PretrainedModel, task: &NnTask) -> FtSession {
        let seed = session_seed(zoo.config.seed, &model.name, &task.name);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mlp = model.mlp.clone();
        mlp.replace_head(task.n_labels(), &mut rng);
        let state = SgdState::for_mlp(&mlp);
        FtSession {
            state,
            rng,
            train: task.sample(&zoo.universe, zoo.config.n_train_per_class, TRAIN_SPLIT),
            val: task.sample(&zoo.universe, zoo.config.n_eval_per_class, VAL_SPLIT),
            test: task.sample(&zoo.universe, zoo.config.n_eval_per_class, TEST_SPLIT),
            mlp,
            cfg: TrainConfig::fine_tune(),
        }
    }

    /// One epoch; returns `(val accuracy, test accuracy)`.
    fn advance_epoch(&mut self) -> (f64, f64) {
        train_epoch(
            &mut self.mlp,
            &mut self.state,
            &self.train,
            &self.cfg,
            &mut self.rng,
        );
        (
            evaluate(&self.mlp, &self.val),
            evaluate(&self.mlp, &self.test),
        )
    }
}

/// Deterministic session seed from the zoo seed and run identity.
fn session_seed(seed: u64, model: &str, task: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for b in model.bytes().chain([0xfe]).chain(task.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Pre-train a fresh model on its upstream task.
fn pretrain(
    universe: &TaskUniverse,
    upstream: &NnTask,
    config: &RealZooConfig,
    rng: &mut StdRng,
) -> Mlp {
    let mut mlp = Mlp::new(universe.dim(), config.hidden, upstream.n_labels(), rng);
    let mut state = SgdState::for_mlp(&mlp);
    let train = upstream.sample(universe, config.n_train_per_class, TRAIN_SPLIT);
    let cfg = TrainConfig::default();
    for _ in 0..config.pretrain_epochs {
        train_epoch(&mut mlp, &mut state, &train, &cfg, rng);
    }
    mlp
}

/// Real-SGD [`TargetTrainer`]: each `advance` trains one more epoch.
pub struct NnTrainer<'z> {
    zoo: &'z RealZoo,
    target: usize,
    sessions: Vec<Option<FtSessionState>>,
    tel: Telemetry,
}

/// Per-model training state inside [`NnTrainer`].
struct FtSessionState {
    session: FtSession,
    stages: usize,
    last_val: f64,
    last_test: f64,
}

impl NnTrainer<'_> {
    /// Record `nn.train.{epochs, sessions}` counters on `tel` (per epoch
    /// trained / per fine-tuning session started). Counter values are
    /// identical whether epochs run serially or via the parallel
    /// `advance_many` fan-out.
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.tel = tel;
        self
    }

    fn session_mut(&mut self, model: ModelId) -> Result<&mut FtSessionState> {
        let idx = model.index();
        if idx >= self.zoo.n_models() {
            return Err(SelectionError::UnknownId {
                what: "model",
                id: idx,
            });
        }
        if self.sessions[idx].is_none() {
            let session = FtSession::start(
                self.zoo,
                &self.zoo.models[idx],
                &self.zoo.targets[self.target],
            );
            self.sessions[idx] = Some(FtSessionState {
                session,
                stages: 0,
                last_val: 0.0,
                last_test: 0.0,
            });
            self.tel.incr("nn.train.sessions");
        }
        Ok(self.sessions[idx].as_mut().expect("just filled"))
    }
}

impl TargetTrainer for NnTrainer<'_> {
    fn advance(&mut self, model: ModelId) -> Result<f64> {
        let state = self.session_mut(model)?;
        let (val, test) = state.session.advance_epoch();
        state.stages += 1;
        state.last_val = val;
        state.last_test = test;
        self.tel.incr("nn.train.epochs");
        Ok(val)
    }

    fn test(&mut self, model: ModelId) -> Result<f64> {
        let state = self.session_mut(model)?;
        if state.stages == 0 {
            return Err(SelectionError::InvalidConfig(
                "test() before any training stage".into(),
            ));
        }
        Ok(state.last_test)
    }

    fn stages_trained(&self, model: ModelId) -> usize {
        self.sessions[model.index()]
            .as_ref()
            .map_or(0, |s| s.stages)
    }

    /// Parallel stage fan-out: each pooled model owns an independent
    /// fine-tuning session (own network, optimiser state, RNG), so missing
    /// sessions are started and one epoch is trained across `threads`
    /// workers. Bit-identical to the serial loop.
    fn advance_many(&mut self, pool: &[ModelId], threads: usize) -> Result<Vec<f64>> {
        // Serial semantics first: the first invalid id (pool order) errors
        // before any training; a pool with duplicates would advance one
        // session several times in order, so it falls back to the serial
        // loop rather than racing a shared session.
        let mut seen = vec![false; self.zoo.n_models()];
        let mut duplicated = false;
        for &m in pool {
            if m.index() >= self.zoo.n_models() {
                return Err(SelectionError::UnknownId {
                    what: "model",
                    id: m.index(),
                });
            }
            duplicated |= seen[m.index()];
            seen[m.index()] = true;
        }
        if threads <= 1 || duplicated {
            return pool.iter().map(|&m| self.advance(m)).collect();
        }

        let missing: Vec<ModelId> = pool
            .iter()
            .copied()
            .filter(|m| self.sessions[m.index()].is_none())
            .collect();
        let zoo = self.zoo;
        let target = self.target;
        let started = tps_core::parallel::map_indexed(&missing, threads, |_, &m| {
            FtSession::start(zoo, &zoo.models[m.index()], &zoo.targets[target])
        });
        // Counted in bulk (outside the workers) so serial and parallel runs
        // record identical totals.
        self.tel.add("nn.train.sessions", missing.len() as f64);
        for (&m, session) in missing.iter().zip(started) {
            self.sessions[m.index()] = Some(FtSessionState {
                session,
                stages: 0,
                last_val: 0.0,
                last_test: 0.0,
            });
        }

        // Take the pooled sessions out, train one epoch each in parallel,
        // and put them back.
        let mut states: Vec<FtSessionState> = pool
            .iter()
            .map(|&m| self.sessions[m.index()].take().expect("ensured above"))
            .collect();
        tps_core::parallel::for_each_mut(&mut states, threads, |_, st| {
            let (val, test) = st.session.advance_epoch();
            st.stages += 1;
            st.last_val = val;
            st.last_test = test;
        });
        self.tel.add("nn.train.epochs", pool.len() as f64);
        let vals = states.iter().map(|st| st.last_val).collect();
        for (&m, st) in pool.iter().zip(states) {
            self.sessions[m.index()] = Some(st);
        }
        Ok(vals)
    }
}

/// Real-prediction [`ProxyOracle`]: LEEP consumes the pre-trained model's
/// actual soft-max outputs over its upstream label space.
pub struct NnOracle<'z> {
    zoo: &'z RealZoo,
    target: usize,
    data: LabelledData,
}

impl NnOracle<'_> {
    /// The target task this oracle serves.
    pub fn target_task(&self) -> &NnTask {
        &self.zoo.targets[self.target]
    }
}

impl FeatureOracle for NnOracle<'_> {
    /// Hidden-layer activations of the pre-trained model on the target
    /// samples — real features for the LogME / kNN proxies.
    fn features(&self, model: ModelId) -> Result<(Vec<f64>, usize, usize)> {
        if model.index() >= self.zoo.n_models() {
            return Err(SelectionError::UnknownId {
                what: "model",
                id: model.index(),
            });
        }
        let f = self.zoo.models[model.index()].mlp.features(&self.data.x);
        let (n, d) = (f.rows(), f.cols());
        Ok((f.data().to_vec(), n, d))
    }
}

impl ProxyOracle for NnOracle<'_> {
    fn predictions(&self, model: ModelId) -> Result<PredictionMatrix> {
        if model.index() >= self.zoo.n_models() {
            return Err(SelectionError::UnknownId {
                what: "model",
                id: model.index(),
            });
        }
        let probs = self.zoo.models[model.index()]
            .mlp
            .predict_proba(&self.data.x);
        PredictionMatrix::new(probs.cols(), probs.data().to_vec())
    }

    fn target_labels(&self) -> &[usize] {
        &self.data.y
    }

    fn n_target_labels(&self) -> usize {
        self.zoo.targets[self.target].n_labels()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_core::proxy::leep::leep;
    use tps_core::similarity::performance_similarity;

    fn small_zoo() -> RealZoo {
        RealZoo::generate(&RealZooConfig {
            n_families: 3,
            family_size: 2,
            n_singletons: 2,
            n_benchmarks: 4,
            n_targets: 2,
            pretrain_epochs: 10,
            n_train_per_class: 20,
            n_eval_per_class: 15,
            ..Default::default()
        })
    }

    #[test]
    fn zoo_generation_counts() {
        let zoo = small_zoo();
        assert_eq!(zoo.n_models(), 8);
        assert_eq!(zoo.benchmarks.len(), 4);
        assert_eq!(zoo.targets.len(), 2);
    }

    #[test]
    fn pretrained_models_master_their_upstream() {
        let zoo = small_zoo();
        for model in &zoo.models {
            let eval = model.upstream.sample(&zoo.universe, 15, VAL_SPLIT);
            let acc = evaluate(&model.mlp, &eval);
            assert!(acc > 0.8, "{} upstream acc {acc}", model.name);
        }
    }

    #[test]
    fn offline_build_produces_valid_matrix() {
        let zoo = small_zoo();
        let (matrix, curves) = zoo.build_offline().unwrap();
        assert_eq!(matrix.n_models(), 8);
        assert_eq!(matrix.n_datasets(), 4);
        assert_eq!(curves.n_models(), 8);
        // Real accuracies are meaningful: above chance on average.
        let mean: f64 = (0..8)
            .map(|m| matrix.avg_accuracy(ModelId::from(m)))
            .sum::<f64>()
            / 8.0;
        assert!(mean > 0.4, "mean benchmark accuracy {mean}");
    }

    #[test]
    fn family_members_more_similar_than_strangers() {
        let zoo = small_zoo();
        let (matrix, _) = zoo.build_offline().unwrap();
        // Models 0,1 share an upstream; model 6 is a singleton.
        let sib = performance_similarity(
            &matrix.model_vector(ModelId(0)),
            &matrix.model_vector(ModelId(1)),
            3,
        )
        .unwrap();
        let cross = performance_similarity(
            &matrix.model_vector(ModelId(0)),
            &matrix.model_vector(ModelId(6)),
            3,
        )
        .unwrap();
        assert!(
            sib > cross - 0.02,
            "siblings {sib} should be at least as similar as strangers {cross}"
        );
    }

    #[test]
    fn trainer_really_trains() {
        let zoo = small_zoo();
        let mut trainer = zoo.trainer(0).unwrap();
        let m = ModelId(0);
        let v1 = trainer.advance(m).unwrap();
        for _ in 0..4 {
            trainer.advance(m).unwrap();
        }
        let v5 = trainer.advance(m).unwrap();
        assert_eq!(trainer.stages_trained(m), 6);
        // Real training should improve (or at least not collapse).
        assert!(v5 >= v1 - 0.1, "v1 {v1} v5 {v5}");
        let t = trainer.test(m).unwrap();
        assert!((0.0..=1.0).contains(&t));
    }

    #[test]
    fn leep_on_real_predictions_tracks_relatedness() {
        let zoo = small_zoo();
        // target-0 reuses family 0's prototypes: family-0 models should
        // out-LEEP at least most of the zoo.
        let oracle = zoo.oracle(0).unwrap();
        let labels = oracle.target_labels().to_vec();
        let n_labels = oracle.n_target_labels();
        let related = leep(&oracle.predictions(ModelId(0)).unwrap(), &labels, n_labels).unwrap();
        let unrelated_scores: Vec<f64> = (4..8)
            .map(|m| leep(&oracle.predictions(ModelId(m)).unwrap(), &labels, n_labels).unwrap())
            .collect();
        let beaten = unrelated_scores.iter().filter(|&&s| related > s).count();
        assert!(
            beaten >= 2,
            "related LEEP {related} should beat most unrelated {unrelated_scores:?}"
        );
    }

    #[test]
    fn oracle_features_shape() {
        let zoo = small_zoo();
        let oracle = zoo.oracle(0).unwrap();
        let (f, n, d) = oracle.features(ModelId(0)).unwrap();
        assert_eq!(n, oracle.target_labels().len());
        assert_eq!(d, zoo.config.hidden);
        assert_eq!(f.len(), n * d);
    }

    #[test]
    fn invalid_indices_rejected() {
        let zoo = small_zoo();
        assert!(zoo.trainer(99).is_err());
        assert!(zoo.oracle(99).is_err());
        let mut t = zoo.trainer(0).unwrap();
        assert!(t.advance(ModelId(999)).is_err());
        let o = zoo.oracle(0).unwrap();
        assert!(o.predictions(ModelId(999)).is_err());
        assert!(o.features(ModelId(999)).is_err());
    }

    #[test]
    fn parallel_offline_build_matches_serial() {
        let zoo = small_zoo();
        let (matrix, curves) = zoo.build_offline().unwrap();
        let (m4, c4) = zoo.build_offline_par(4).unwrap();
        assert_eq!(m4, matrix);
        assert_eq!(c4, curves);
    }

    #[test]
    fn advance_many_matches_serial_advance() {
        let zoo = small_zoo();
        let pool: Vec<ModelId> = (0..zoo.n_models()).map(ModelId::from).collect();
        let mut serial = zoo.trainer(0).unwrap();
        let mut expected = Vec::new();
        for _ in 0..2 {
            expected.push(
                pool.iter()
                    .map(|&m| serial.advance(m).unwrap())
                    .collect::<Vec<_>>(),
            );
        }
        for threads in [1, 4] {
            let mut par = zoo.trainer(0).unwrap();
            for stage_vals in &expected {
                assert_eq!(&par.advance_many(&pool, threads).unwrap(), stage_vals);
            }
        }
        // Duplicate pools fall back to serial semantics.
        let mut dup = zoo.trainer(0).unwrap();
        let vals = dup.advance_many(&[ModelId(0), ModelId(0)], 4).unwrap();
        assert_eq!(vals.len(), 2);
        assert_eq!(dup.stages_trained(ModelId(0)), 2);
    }

    #[test]
    fn faulted_advance_many_reports_first_pool_order_model() {
        use tps_core::error::FaultClass;
        use tps_core::fault::{FaultKind, FaultPlan, FaultSite, FaultSpec, FaultyTrainer};
        let zoo = small_zoo();
        // Faults on m0 and m5; the pool lists m5 first, so the batch must
        // report m5 for any thread count, not the lowest faulted id.
        let plan = FaultPlan::new(vec![
            FaultSpec {
                site: FaultSite::Advance,
                model: ModelId(0),
                attempt: 0,
                kind: FaultKind::Permanent,
            },
            FaultSpec {
                site: FaultSite::Advance,
                model: ModelId(5),
                attempt: 0,
                kind: FaultKind::Transient,
            },
        ]);
        let pool = vec![ModelId(5), ModelId(2), ModelId(0), ModelId(7)];
        for threads in [1, 4] {
            let mut t = FaultyTrainer::new(zoo.trainer(0).unwrap(), plan.clone());
            let err = t.advance_many(&pool, threads).unwrap_err();
            assert_eq!(err.fault_model(), Some(5), "threads={threads}");
            assert_eq!(err.classify(), FaultClass::Transient);
            // Transactional: the failed batch started no sessions and
            // trained no epochs.
            for &m in &pool {
                assert_eq!(t.stages_trained(m), 0, "threads={threads}");
            }
            // The failed batch consumed every model's scripted attempt, so
            // the retry batch is clean and matches an unwrapped serial run.
            let vals = t.advance_many(&pool, threads).unwrap();
            let mut plain = zoo.trainer(0).unwrap();
            let expected: Vec<f64> = pool.iter().map(|&m| plain.advance(m).unwrap()).collect();
            assert_eq!(vals, expected, "threads={threads}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_zoo();
        let b = small_zoo();
        assert_eq!(a.models[0].mlp, b.models[0].mlp);
        assert_eq!(a.models[5].mlp, b.models[5].mlp);
    }
}
