//! A one-hidden-layer MLP classifier with hand-rolled backprop.
//!
//! `logits = relu(x·W1 + b1)·W2 + b2`, softmax cross-entropy loss. The
//! hidden layer is the *body* (transferable features); the output layer is
//! the *head* (task-specific). Fine-tuning on a new task replaces the head
//! and continues training both — the standard transfer-learning recipe the
//! paper's repository models all follow.

use crate::tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The MLP parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    /// `dim × hidden` body weights.
    pub w1: Matrix,
    /// Hidden bias.
    pub b1: Vec<f64>,
    /// `hidden × classes` head weights.
    pub w2: Matrix,
    /// Output bias.
    pub b2: Vec<f64>,
}

/// Gradients matching [`Mlp`]'s parameters.
#[derive(Debug, Clone)]
pub struct Gradients {
    /// Body-weight gradient.
    pub w1: Matrix,
    /// Hidden-bias gradient.
    pub b1: Vec<f64>,
    /// Head-weight gradient.
    pub w2: Matrix,
    /// Output-bias gradient.
    pub b2: Vec<f64>,
}

impl Mlp {
    /// Fresh network with Kaiming-uniform weights and zero biases.
    pub fn new<R: Rng + ?Sized>(dim: usize, hidden: usize, classes: usize, rng: &mut R) -> Self {
        assert!(dim > 0 && hidden > 0 && classes >= 2);
        Self {
            w1: Matrix::kaiming(dim, hidden, dim, rng),
            b1: vec![0.0; hidden],
            w2: Matrix::kaiming(hidden, classes, hidden, rng),
            b2: vec![0.0; classes],
        }
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.w1.rows()
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.w1.cols()
    }

    /// Output classes.
    pub fn n_classes(&self) -> usize {
        self.w2.cols()
    }

    /// Replace the head with a freshly-initialised one for `classes`
    /// outputs, keeping the body — the start of fine-tuning on a new task.
    pub fn replace_head<R: Rng + ?Sized>(&mut self, classes: usize, rng: &mut R) {
        assert!(classes >= 2);
        self.w2 = Matrix::kaiming(self.hidden(), classes, self.hidden(), rng);
        self.b2 = vec![0.0; classes];
    }

    /// Hidden-layer activations (the *features* LogME/kNN proxies consume).
    pub fn features(&self, x: &Matrix) -> Matrix {
        let mut h = x.matmul(&self.w1);
        for r in 0..h.rows() {
            for c in 0..h.cols() {
                let v = h.get(r, c) + self.b1[c];
                h.set(r, c, v.max(0.0));
            }
        }
        h
    }

    /// Softmax class probabilities, one row per sample — the prediction
    /// matrix LEEP consumes.
    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        let h = self.features(x);
        let mut logits = h.matmul(&self.w2);
        for r in 0..logits.rows() {
            softmax_row(&mut logits, r, &self.b2);
        }
        logits
    }

    /// Forward + backward over a batch; returns `(mean CE loss, gradients)`.
    pub fn loss_and_grad(&self, x: &Matrix, y: &[usize]) -> (f64, Gradients) {
        let n = x.rows();
        assert_eq!(y.len(), n, "labels must match batch rows");
        let h = self.features(x);
        let mut probs = h.matmul(&self.w2);
        let mut loss = 0.0;
        for (r, &label) in y.iter().enumerate() {
            softmax_row(&mut probs, r, &self.b2);
            loss -= probs.get(r, label).max(1e-12).ln();
        }
        loss /= n as f64;

        // dL/dlogits = (probs − onehot) / n
        let mut dlogits = probs;
        for (r, &label) in y.iter().enumerate() {
            let base = dlogits.get(r, label);
            dlogits.set(r, label, base - 1.0);
        }
        dlogits.scale(1.0 / n as f64);

        // Head grads.
        let gw2 = h.t_matmul(&dlogits);
        let mut gb2 = vec![0.0; self.n_classes()];
        for r in 0..n {
            for (g, &d) in gb2.iter_mut().zip(dlogits.row(r)) {
                *g += d;
            }
        }

        // Back through the head and ReLU.
        let mut dh = dlogits.matmul_t(&self.w2);
        for r in 0..n {
            for c in 0..dh.cols() {
                if h.get(r, c) <= 0.0 {
                    dh.set(r, c, 0.0);
                }
            }
        }
        let gw1 = x.t_matmul(&dh);
        let mut gb1 = vec![0.0; self.hidden()];
        for r in 0..n {
            for (g, &d) in gb1.iter_mut().zip(dh.row(r)) {
                *g += d;
            }
        }

        (
            loss,
            Gradients {
                w1: gw1,
                b1: gb1,
                w2: gw2,
                b2: gb2,
            },
        )
    }

    /// Classification accuracy on a labelled set.
    pub fn accuracy(&self, x: &Matrix, y: &[usize]) -> f64 {
        let probs = self.predict_proba(x);
        let mut correct = 0usize;
        for (r, &label) in y.iter().enumerate() {
            let pred = probs
                .row(r)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            if pred == label {
                correct += 1;
            }
        }
        correct as f64 / y.len().max(1) as f64
    }
}

/// In-place stable softmax of row `r` after adding the bias.
fn softmax_row(m: &mut Matrix, r: usize, bias: &[f64]) {
    let cols = m.cols();
    let mut max = f64::NEG_INFINITY;
    for (c, &b) in bias.iter().enumerate() {
        let v = m.get(r, c) + b;
        m.set(r, c, v);
        max = max.max(v);
    }
    debug_assert_eq!(bias.len(), cols);
    let mut sum = 0.0;
    for c in 0..cols {
        let e = (m.get(r, c) - max).exp();
        m.set(r, c, e);
        sum += e;
    }
    for c in 0..cols {
        let v = m.get(r, c) / sum;
        m.set(r, c, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> (Mlp, Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(2);
        let mlp = Mlp::new(3, 5, 2, &mut rng);
        let x = Matrix::from_vec(
            4,
            3,
            vec![
                1.0, 0.2, -0.3, //
                -0.9, 0.1, 0.4, //
                0.8, -0.2, 0.1, //
                -1.1, 0.3, -0.2,
            ],
        );
        let y = vec![0, 1, 0, 1];
        (mlp, x, y)
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (mlp, x, _) = tiny();
        let p = mlp.predict_proba(&x);
        for r in 0..p.rows() {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(p.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    /// Finite-difference check of every parameter gradient.
    #[test]
    fn gradients_match_finite_differences() {
        let (mlp, x, y) = tiny();
        let (_, grads) = mlp.loss_and_grad(&x, &y);
        let eps = 1e-6;
        let loss_of = |m: &Mlp| m.loss_and_grad(&x, &y).0;

        for (r, c) in [(0, 0), (1, 3), (2, 4)] {
            let mut plus = mlp.clone();
            plus.w1.set(r, c, plus.w1.get(r, c) + eps);
            let mut minus = mlp.clone();
            minus.w1.set(r, c, minus.w1.get(r, c) - eps);
            let fd = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
            assert!(
                (fd - grads.w1.get(r, c)).abs() < 1e-5,
                "w1[{r},{c}] fd {fd} vs {}",
                grads.w1.get(r, c)
            );
        }
        for (r, c) in [(0, 0), (4, 1)] {
            let mut plus = mlp.clone();
            plus.w2.set(r, c, plus.w2.get(r, c) + eps);
            let mut minus = mlp.clone();
            minus.w2.set(r, c, minus.w2.get(r, c) - eps);
            let fd = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
            assert!((fd - grads.w2.get(r, c)).abs() < 1e-5);
        }
        for i in 0..2 {
            let mut plus = mlp.clone();
            plus.b2[i] += eps;
            let mut minus = mlp.clone();
            minus.b2[i] -= eps;
            let fd = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
            assert!((fd - grads.b2[i]).abs() < 1e-5);
        }
        for i in [0, 2, 4] {
            let mut plus = mlp.clone();
            plus.b1[i] += eps;
            let mut minus = mlp.clone();
            minus.b1[i] -= eps;
            let fd = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
            assert!((fd - grads.b1[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn replace_head_keeps_body() {
        let (mut mlp, _, _) = tiny();
        let body = mlp.w1.clone();
        let mut rng = StdRng::seed_from_u64(7);
        mlp.replace_head(4, &mut rng);
        assert_eq!(mlp.n_classes(), 4);
        assert_eq!(mlp.w1, body);
        assert_eq!(mlp.b2, vec![0.0; 4]);
    }

    #[test]
    fn accuracy_bounds() {
        let (mlp, x, y) = tiny();
        let acc = mlp.accuracy(&x, &y);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn one_gradient_step_reduces_loss() {
        let (mut mlp, x, y) = tiny();
        let (loss0, grads) = mlp.loss_and_grad(&x, &y);
        mlp.w1.add_scaled(&grads.w1, -0.5);
        mlp.w2.add_scaled(&grads.w2, -0.5);
        for (b, g) in mlp.b1.iter_mut().zip(&grads.b1) {
            *b -= 0.5 * g;
        }
        for (b, g) in mlp.b2.iter_mut().zip(&grads.b2) {
            *b -= 0.5 * g;
        }
        let (loss1, _) = mlp.loss_and_grad(&x, &y);
        assert!(loss1 < loss0, "{loss1} !< {loss0}");
    }
}
