//! Mini-batch SGD training loop with momentum and a transfer-aware
//! learning-rate split (body vs head).

use crate::datagen::LabelledData;
use crate::mlp::{Gradients, Mlp};
use crate::tensor::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Head learning rate.
    pub lr: f64,
    /// Body learning rate as a fraction of `lr` (1.0 when training from
    /// scratch; < 1 during fine-tuning so pre-trained features persist).
    pub body_lr_scale: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 weight decay.
    pub weight_decay: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            lr: 0.15,
            body_lr_scale: 1.0,
            momentum: 0.9,
            batch_size: 16,
            weight_decay: 1e-4,
        }
    }
}

impl TrainConfig {
    /// The standard fine-tuning variant: gentler head LR and a reduced body
    /// LR so pre-trained features adapt without being destroyed.
    pub fn fine_tune() -> Self {
        Self {
            lr: 0.08,
            body_lr_scale: 0.3,
            ..Default::default()
        }
    }

    /// Linear probing: the body is frozen (`body_lr_scale = 0`) and only
    /// the head trains — the cheapest transfer recipe, and the training
    /// analogue of the kNN/LogME feature proxies.
    pub fn linear_probe() -> Self {
        Self {
            lr: 0.1,
            body_lr_scale: 0.0,
            ..Default::default()
        }
    }
}

/// SGD-with-momentum state (velocity per parameter group).
#[derive(Debug, Clone)]
pub struct SgdState {
    vw1: Matrix,
    vb1: Vec<f64>,
    vw2: Matrix,
    vb2: Vec<f64>,
}

impl SgdState {
    /// Zero-velocity state matching a network's shapes.
    pub fn for_mlp(mlp: &Mlp) -> Self {
        Self {
            vw1: Matrix::zeros(mlp.w1.rows(), mlp.w1.cols()),
            vb1: vec![0.0; mlp.b1.len()],
            vw2: Matrix::zeros(mlp.w2.rows(), mlp.w2.cols()),
            vb2: vec![0.0; mlp.b2.len()],
        }
    }

    fn apply(&mut self, mlp: &mut Mlp, grads: &Gradients, cfg: &TrainConfig) {
        let body_lr = cfg.lr * cfg.body_lr_scale;
        update_matrix(&mut self.vw1, &mut mlp.w1, &grads.w1, body_lr, cfg);
        update_vec(&mut self.vb1, &mut mlp.b1, &grads.b1, body_lr, cfg.momentum);
        update_matrix(&mut self.vw2, &mut mlp.w2, &grads.w2, cfg.lr, cfg);
        update_vec(&mut self.vb2, &mut mlp.b2, &grads.b2, cfg.lr, cfg.momentum);
    }
}

fn update_matrix(v: &mut Matrix, w: &mut Matrix, g: &Matrix, lr: f64, cfg: &TrainConfig) {
    for ((vi, wi), &gi) in v.data_mut().iter_mut().zip(w.data_mut()).zip(g.data()) {
        *vi = cfg.momentum * *vi - lr * (gi + cfg.weight_decay * *wi);
        *wi += *vi;
    }
}

fn update_vec(v: &mut [f64], b: &mut [f64], g: &[f64], lr: f64, momentum: f64) {
    for ((vi, bi), &gi) in v.iter_mut().zip(b.iter_mut()).zip(g) {
        *vi = momentum * *vi - lr * gi;
        *bi += *vi;
    }
}

/// Train one epoch (all samples once, shuffled mini-batches). Returns the
/// mean training loss over batches.
pub fn train_epoch<R: Rng + ?Sized>(
    mlp: &mut Mlp,
    state: &mut SgdState,
    data: &LabelledData,
    cfg: &TrainConfig,
    rng: &mut R,
) -> f64 {
    assert!(!data.is_empty(), "cannot train on an empty split");
    let n = data.len();
    let dim = data.x.cols();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);

    let mut total_loss = 0.0;
    let mut batches = 0;
    for chunk in order.chunks(cfg.batch_size.max(1)) {
        let mut bx = Vec::with_capacity(chunk.len() * dim);
        let mut by = Vec::with_capacity(chunk.len());
        for &i in chunk {
            bx.extend_from_slice(data.x.row(i));
            by.push(data.y[i]);
        }
        let bx = Matrix::from_vec(chunk.len(), dim, bx);
        let (loss, grads) = mlp.loss_and_grad(&bx, &by);
        state.apply(mlp, &grads, cfg);
        total_loss += loss;
        batches += 1;
    }
    total_loss / batches.max(1) as f64
}

/// Accuracy of a network on a labelled split.
pub fn evaluate(mlp: &Mlp, data: &LabelledData) -> f64 {
    mlp.accuracy(&data.x, &data.y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{NnTask, TaskUniverse};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (TaskUniverse, NnTask) {
        let universe = TaskUniverse::new(8, 10, 4);
        let task = NnTask {
            name: "train-test".into(),
            proto_ids: vec![0, 4, 8],
            center_jitter: 0.05,
            sample_noise: 0.35,
            seed: 21,
        };
        (universe, task)
    }

    #[test]
    fn training_reaches_high_accuracy_on_separable_task() {
        let (universe, task) = setup();
        let train = task.sample(&universe, 40, 1);
        let val = task.sample(&universe, 20, 2);
        let mut rng = StdRng::seed_from_u64(8);
        let mut mlp = Mlp::new(universe.dim(), 16, task.n_labels(), &mut rng);
        let mut state = SgdState::for_mlp(&mlp);
        let cfg = TrainConfig::default();
        let acc0 = evaluate(&mlp, &val);
        let mut last_loss = f64::INFINITY;
        for _ in 0..12 {
            last_loss = train_epoch(&mut mlp, &mut state, &train, &cfg, &mut rng);
        }
        let acc = evaluate(&mlp, &val);
        assert!(acc > 0.9, "val accuracy {acc} (from {acc0})");
        assert!(last_loss < 0.3, "training loss {last_loss}");
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let (universe, task) = setup();
        let train = task.sample(&universe, 30, 1);
        let mut rng = StdRng::seed_from_u64(9);
        let mut mlp = Mlp::new(universe.dim(), 16, task.n_labels(), &mut rng);
        let mut state = SgdState::for_mlp(&mlp);
        let cfg = TrainConfig::default();
        let first = train_epoch(&mut mlp, &mut state, &train, &cfg, &mut rng);
        let mut last = first;
        for _ in 0..8 {
            last = train_epoch(&mut mlp, &mut state, &train, &cfg, &mut rng);
        }
        assert!(last < first * 0.8, "first {first} last {last}");
    }

    #[test]
    fn fine_tune_config_is_gentler() {
        let ft = TrainConfig::fine_tune();
        let scratch = TrainConfig::default();
        assert!(ft.lr < scratch.lr);
        assert!(ft.body_lr_scale < scratch.body_lr_scale);
    }

    #[test]
    fn linear_probe_freezes_the_body() {
        let (universe, task) = setup();
        let train = task.sample(&universe, 20, 1);
        let mut rng = StdRng::seed_from_u64(11);
        let mut mlp = Mlp::new(universe.dim(), 16, task.n_labels(), &mut rng);
        let body_before = mlp.w1.clone();
        let bias_before = mlp.b1.clone();
        let mut state = SgdState::for_mlp(&mlp);
        for _ in 0..4 {
            train_epoch(
                &mut mlp,
                &mut state,
                &train,
                &TrainConfig::linear_probe(),
                &mut rng,
            );
        }
        assert_eq!(mlp.w1, body_before, "body weights must not move");
        assert_eq!(mlp.b1, bias_before, "body bias must not move");
        // But the head did learn something.
        assert!(evaluate(&mlp, &train) > 0.5);
    }

    #[test]
    #[should_panic(expected = "empty split")]
    fn rejects_empty_data() {
        let (universe, task) = setup();
        let mut d = task.sample(&universe, 1, 1);
        d.y.clear();
        let mut rng = StdRng::seed_from_u64(0);
        let mut mlp = Mlp::new(8, 4, 2, &mut rng);
        let mut state = SgdState::for_mlp(&mlp);
        train_epoch(&mut mlp, &mut state, &d, &TrainConfig::default(), &mut rng);
    }
}
