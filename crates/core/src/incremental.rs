//! Incremental repository maintenance.
//!
//! Public model hubs grow continuously (the paper's core motivation), and
//! rebuilding all offline artifacts on every upload would defeat the
//! purpose of precomputing them. This module adds a model to existing
//! [`OfflineArtifacts`] with only the *new* model's benchmark fine-tuning
//! runs as input:
//!
//! 1. the performance matrix gains a column;
//! 2. the similarity matrix is recomputed (cheap: `O(|M|² · |D|)`);
//! 3. the new model joins the cluster whose **representative** it is most
//!    similar to — if that similarity clears the clustering threshold —
//!    and otherwise becomes a new singleton (no global re-clustering);
//! 4. its convergence trends are mined from its own curves.
//!
//! Placement is a greedy approximation of re-clustering; callers that want
//! exactness can rebuild with [`OfflineArtifacts::build`] at any cadence.

use crate::cluster::Clustering;
use crate::curve::LearningCurve;
use crate::error::{Result, SelectionError};
use crate::ids::ModelId;
use crate::pipeline::{ClusterMethod, OfflineArtifacts, OfflineConfig};
use crate::similarity::SimilarityMatrix;
use crate::trend::mine_trends;
use serde::{Deserialize, Serialize};

/// A new model's offline measurements: one fine-tuning run per benchmark
/// dataset, in the matrix's dataset order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelAddition {
    /// Repository name of the model.
    pub name: String,
    /// `curves[d]` = the model's learning curve on benchmark dataset `d`.
    pub benchmark_curves: Vec<LearningCurve>,
}

/// Where the new model landed in the clustering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Placement {
    /// Joined an existing cluster (similarity to its representative shown).
    Joined {
        /// Index of the joined cluster.
        cluster: usize,
        /// Eq. 1 similarity to that cluster's representative.
        similarity: f64,
    },
    /// Became a new singleton cluster.
    NewSingleton {
        /// Index of the new cluster.
        cluster: usize,
    },
}

/// Result of one incremental addition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdditionReport {
    /// Id assigned to the new model.
    pub model: ModelId,
    /// Cluster placement decision.
    pub placement: Placement,
}

impl OfflineArtifacts {
    /// Add one model to the artifacts in place. `config` must be the
    /// configuration the artifacts were built with (its `similarity_top_k`,
    /// threshold and trend settings drive the incremental update).
    pub fn add_model(
        &mut self,
        addition: &ModelAddition,
        config: &OfflineConfig,
    ) -> Result<AdditionReport> {
        let n_datasets = self.matrix.n_datasets();
        if addition.benchmark_curves.len() != n_datasets {
            return Err(SelectionError::DimensionMismatch {
                what: "benchmark curves",
                expected: n_datasets,
                got: addition.benchmark_curves.len(),
            });
        }
        if self.matrix.model_by_name(&addition.name).is_some() {
            return Err(SelectionError::InvalidConfig(format!(
                "model `{}` already in the repository",
                addition.name
            )));
        }

        // 1. Extend the performance matrix with the final test accuracies.
        let accuracies: Vec<f64> = addition
            .benchmark_curves
            .iter()
            .map(LearningCurve::test)
            .collect();
        self.matrix = self.matrix.with_model(&addition.name, &accuracies)?;
        let new_id = ModelId::from(self.matrix.n_models() - 1);

        // 2. Refresh the similarity matrix.
        self.similarity =
            SimilarityMatrix::from_performance(&self.matrix, config.similarity_top_k)?;

        // 3. Greedy cluster placement against existing representatives.
        // (Representatives are derived from the matrix *before* growth —
        // identical, since representative choice ignores the new model.)
        let reps = self
            .clustering
            .representatives_excluding_last(&self.matrix)?;
        let join_threshold = match config.cluster {
            ClusterMethod::HierarchicalThreshold(t) => 1.0 - t,
            // DBSCAN's radius is already a distance bound.
            ClusterMethod::Dbscan { eps, .. } => 1.0 - eps,
            // For k-targeted methods there is no natural join radius; use a
            // conservative high-similarity bar.
            ClusterMethod::HierarchicalK(_) | ClusterMethod::KMeans { .. } => 0.95,
        };
        let best = reps
            .iter()
            .enumerate()
            .map(|(c, &rep)| (c, self.similarity.similarity(new_id, rep)))
            .max_by(|a, b| a.1.total_cmp(&b.1));
        let placement = match best {
            Some((cluster, similarity)) if similarity >= join_threshold => {
                self.clustering = self.clustering.with_model(Some(cluster))?;
                Placement::Joined {
                    cluster,
                    similarity,
                }
            }
            _ => {
                self.clustering = self.clustering.with_model(None)?;
                Placement::NewSingleton {
                    cluster: self.clustering.n_clusters() - 1,
                }
            }
        };

        // 4. Mine the new model's convergence trends from its own curves.
        let trends = mine_trends(
            &addition.benchmark_curves,
            config.trend_stages,
            &config.trend,
        )?;
        self.trends.push(trends);

        // 5. The stored representative index (indexed builds) no longer
        // matches the grown repository; drop it so online recall rebuilds
        // one from the fresh matrix instead of querying stale vectors.
        self.ann = None;

        Ok(AdditionReport {
            model: new_id,
            placement,
        })
    }
}

impl crate::matrix::PerformanceMatrix {
    /// A copy of the matrix with one extra model column.
    pub fn with_model(&self, name: &str, accuracies: &[f64]) -> Result<Self> {
        if accuracies.len() != self.n_datasets() {
            return Err(SelectionError::DimensionMismatch {
                what: "model accuracies",
                expected: self.n_datasets(),
                got: accuracies.len(),
            });
        }
        let mut names: Vec<String> = (0..self.n_models())
            .map(|m| self.model_name(ModelId::from(m)).to_string())
            .collect();
        names.push(name.to_string());
        let dataset_names: Vec<String> = (0..self.n_datasets())
            .map(|d| {
                self.dataset_name(crate::ids::DatasetId::from(d))
                    .to_string()
            })
            .collect();
        let rows: Vec<Vec<f64>> = (0..self.n_datasets())
            .map(|d| {
                let mut row = self.dataset_row(crate::ids::DatasetId::from(d)).to_vec();
                row.push(accuracies[d]);
                row
            })
            .collect();
        Self::new(names, dataset_names, rows)
    }
}

impl Clustering {
    /// A copy with one extra model appended: into cluster `Some(c)` or as a
    /// fresh singleton (`None`).
    pub fn with_model(&self, cluster: Option<usize>) -> Result<Self> {
        let mut assignments = self.assignments().to_vec();
        match cluster {
            Some(c) => {
                if c >= self.n_clusters() {
                    return Err(SelectionError::UnknownId {
                        what: "cluster",
                        id: c,
                    });
                }
                assignments.push(c);
            }
            None => assignments.push(self.n_clusters()),
        }
        Clustering::new(assignments)
    }

    /// Representatives computed against a matrix that may already contain
    /// one *extra* trailing model not covered by this clustering (used
    /// mid-addition). Falls back to [`Clustering::representatives`] when
    /// sizes match.
    pub(crate) fn representatives_excluding_last(
        &self,
        matrix: &crate::matrix::PerformanceMatrix,
    ) -> Result<Vec<ModelId>> {
        if matrix.n_models() == self.n_models() {
            return self.representatives(matrix);
        }
        if matrix.n_models() != self.n_models() + 1 {
            return Err(SelectionError::DimensionMismatch {
                what: "clustering vs matrix models",
                expected: self.n_models() + 1,
                got: matrix.n_models(),
            });
        }
        let mut reps = Vec::with_capacity(self.n_clusters());
        for c in 0..self.n_clusters() {
            let rep = self
                .members(c)
                .into_iter()
                .max_by(|&a, &b| matrix.avg_accuracy(a).total_cmp(&matrix.avg_accuracy(b)))
                .expect("compact clustering has no empty clusters");
            reps.push(rep);
        }
        Ok(reps)
    }
}

impl crate::trend::TrendBook {
    /// Append one model's trends (the model must be the repository's newest).
    pub fn push(&mut self, trends: crate::trend::ConvergenceTrends) {
        self.push_inner(trends);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::CurveSet;
    use crate::matrix::PerformanceMatrix;
    use crate::pipeline::OfflineConfig;
    use crate::trend::TrendConfig;

    /// Artifacts over 4 models / 3 datasets: models 0,1 a tight family,
    /// 2,3 distinct singletons.
    fn artifacts() -> (OfflineArtifacts, OfflineConfig) {
        let matrix = PerformanceMatrix::new(
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
            vec!["d0".into(), "d1".into(), "d2".into()],
            vec![
                vec![0.90, 0.89, 0.50, 0.20],
                vec![0.80, 0.81, 0.20, 0.60],
                vec![0.70, 0.69, 0.40, 0.40],
            ],
        )
        .unwrap();
        let curves = CurveSet::from_fn(4, 3, |m, d| {
            let f = matrix.accuracy(d, m);
            LearningCurve::new(vec![f * 0.7, f * 0.9, f], f).unwrap()
        })
        .unwrap();
        let config = OfflineConfig {
            similarity_top_k: 2,
            cluster: ClusterMethod::HierarchicalThreshold(0.05),
            trend: TrendConfig {
                n_trends: 2,
                max_iter: 32,
            },
            trend_stages: 3,
            parallel: Default::default(),
            ann: Default::default(),
        };
        (
            OfflineArtifacts::build(matrix, &curves, &config).unwrap(),
            config,
        )
    }

    fn addition(name: &str, finals: [f64; 3]) -> ModelAddition {
        ModelAddition {
            name: name.into(),
            benchmark_curves: finals
                .iter()
                .map(|&f| LearningCurve::new(vec![f * 0.7, f * 0.9, f], f).unwrap())
                .collect(),
        }
    }

    #[test]
    fn sibling_joins_the_family_cluster() {
        let (mut arts, config) = artifacts();
        let family_cluster = arts.clustering.cluster_of(ModelId(0));
        let report = arts
            .add_model(&addition("a-sibling", [0.895, 0.805, 0.695]), &config)
            .unwrap();
        assert_eq!(report.model, ModelId(4));
        match report.placement {
            Placement::Joined {
                cluster,
                similarity,
            } => {
                assert_eq!(cluster, family_cluster);
                assert!(similarity > 0.95);
            }
            other => panic!("expected join, got {other:?}"),
        }
        assert_eq!(arts.matrix.n_models(), 5);
        assert_eq!(arts.similarity.len(), 5);
        assert_eq!(arts.clustering.n_models(), 5);
        assert_eq!(arts.trends.n_models(), 5);
        assert_eq!(arts.clustering.cluster_of(ModelId(4)), family_cluster);
    }

    #[test]
    fn outlier_becomes_a_new_singleton() {
        let (mut arts, config) = artifacts();
        let before = arts.clustering.n_clusters();
        let report = arts
            .add_model(&addition("weird", [0.15, 0.95, 0.10]), &config)
            .unwrap();
        match report.placement {
            Placement::NewSingleton { cluster } => assert_eq!(cluster, before),
            other => panic!("expected singleton, got {other:?}"),
        }
        assert_eq!(arts.clustering.n_clusters(), before + 1);
        assert_eq!(arts.clustering.cluster_size(before), 1);
    }

    #[test]
    fn added_model_participates_in_recall() {
        use crate::recall::{coarse_recall, RecallConfig};
        let (mut arts, config) = artifacts();
        arts.add_model(&addition("a-sibling", [0.91, 0.82, 0.71]), &config)
            .unwrap();
        let out = coarse_recall(
            &arts.matrix,
            &arts.clustering,
            &arts.similarity,
            &RecallConfig {
                top_k: 3,
                ..Default::default()
            },
            |_| Ok(-0.4),
        )
        .unwrap();
        // The newcomer has the highest average accuracy in the family
        // cluster, so it should lead the recall ranking.
        assert!(
            out.recalled.contains(&ModelId(4)),
            "recalled {:?}",
            out.recalled
        );
    }

    #[test]
    fn validates_input() {
        let (mut arts, config) = artifacts();
        // Wrong curve count.
        let bad = ModelAddition {
            name: "x".into(),
            benchmark_curves: vec![LearningCurve::new(vec![0.5], 0.5).unwrap()],
        };
        assert!(arts.add_model(&bad, &config).is_err());
        // Duplicate name.
        assert!(arts
            .add_model(&addition("a", [0.5, 0.5, 0.5]), &config)
            .is_err());
        // Artifacts untouched after failed additions.
        assert_eq!(arts.matrix.n_models(), 4);
    }

    #[test]
    fn incremental_matches_rebuild_for_clear_cases() {
        // Adding an exact family sibling: the incremental placement must
        // agree with a from-scratch rebuild's co-clustering.
        let (mut arts, config) = artifacts();
        arts.add_model(&addition("a-sibling", [0.90, 0.80, 0.70]), &config)
            .unwrap();

        // Rebuild from the extended matrix.
        let curves = CurveSet::from_fn(5, 3, |m, d| {
            let f = arts.matrix.accuracy(d, m);
            LearningCurve::new(vec![f * 0.7, f * 0.9, f], f).unwrap()
        })
        .unwrap();
        let rebuilt = OfflineArtifacts::build(arts.matrix.clone(), &curves, &config).unwrap();
        let same_incr =
            arts.clustering.cluster_of(ModelId(4)) == arts.clustering.cluster_of(ModelId(0));
        let same_rebuild =
            rebuilt.clustering.cluster_of(ModelId(4)) == rebuilt.clustering.cluster_of(ModelId(0));
        assert_eq!(same_incr, same_rebuild);
        assert!(same_incr, "sibling should co-cluster with model a");
    }

    #[test]
    fn matrix_with_model_validates() {
        let (arts, _) = artifacts();
        assert!(arts.matrix.with_model("x", &[0.5]).is_err());
        let grown = arts.matrix.with_model("x", &[0.5, 0.5, 0.5]).unwrap();
        assert_eq!(grown.n_models(), 5);
        assert_eq!(grown.model_name(ModelId(4)), "x");
        assert_eq!(grown.accuracy(crate::ids::DatasetId(1), ModelId(4)), 0.5);
    }

    #[test]
    fn clustering_with_model_validates() {
        let c = Clustering::new(vec![0, 0, 1]).unwrap();
        assert!(c.with_model(Some(5)).is_err());
        let joined = c.with_model(Some(1)).unwrap();
        assert_eq!(joined.cluster_size(1), 2);
        let single = c.with_model(None).unwrap();
        assert_eq!(single.n_clusters(), 3);
    }
}
