//! Incremental repository maintenance: the live-zoo delta engine.
//!
//! Public model hubs grow continuously (the paper's core motivation), and
//! rebuilding all offline artifacts on every upload would defeat the
//! purpose of precomputing them. This module maintains existing
//! [`OfflineArtifacts`] under repository churn two ways:
//!
//! - [`OfflineArtifacts::add_model`] — the legacy greedy single-add:
//!   the matrix gains a column, the new model joins the cluster whose
//!   representative it is most similar to (or becomes a singleton), and
//!   its trends are mined from its own curves. Placement is a greedy
//!   approximation of re-clustering.
//! - [`DeltaEngine`] — the full delta engine behind `tps update`:
//!   [`DeltaEngine::apply_update`] applies
//!   [`Update::{AddModel, RetireModel, RefreshModel, AddDataset,
//!   DropDataset}`](Update) and re-derives artifacts **byte-identically**
//!   to a from-scratch [`OfflineArtifacts::build`] on the post-update
//!   zoo, while re-mining trends only for the affected rows and (in the
//!   `--ann indexed` exhaustive regime) patching only the kNN neighbour
//!   lists the change actually touches. See `DESIGN.md` §5.7.
//!
//! # Byte-identity
//!
//! The engine leans on three facts. Trend mining is per-model, so an
//! untouched row's mined trends are bit-equal to a rebuild's. Lazy
//! similarity serializes as the vector set itself, so refreshing it is
//! O(M·D). And in the exhaustive search regime (`max(ef_search, k+1) >=
//! n`, where [`crate::ann::AnnIndex`] queries degrade to exact scans) each
//! kNN list is a pure function of the vector set — the engine maintains
//! exactly that function under inserts, retires and refreshes. Outside
//! that regime the engine falls back to rebuilding the index (still
//! avoiding the dense O(M²) similarity and the O(M) trend re-mine); the
//! rebuild inserts in id order, which is what a from-scratch build does,
//! so byte-identity is preserved there too.

use crate::ann::{eq1_distance_buf, AnnIndex, AnnMode, AnnRepIndex};
use crate::cluster::knn::knn_threshold_components;
use crate::cluster::Clustering;
use crate::curve::LearningCurve;
use crate::error::{Result, SelectionError};
use crate::ids::{DatasetId, ModelId};
use crate::pipeline::{cluster_models, ClusterMethod, OfflineArtifacts, OfflineConfig};
use crate::recall::scored_cluster_set;
use crate::similarity::SimilarityMatrix;
use crate::telemetry::Telemetry;
use crate::trend::mine_trends;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A new model's offline measurements: one fine-tuning run per benchmark
/// dataset, in the matrix's dataset order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelAddition {
    /// Repository name of the model.
    pub name: String,
    /// `curves[d]` = the model's learning curve on benchmark dataset `d`.
    pub benchmark_curves: Vec<LearningCurve>,
}

/// Where the new model landed in the clustering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Placement {
    /// Joined an existing cluster (similarity to its representative shown).
    Joined {
        /// Index of the joined cluster.
        cluster: usize,
        /// Eq. 1 similarity to that cluster's representative.
        similarity: f64,
    },
    /// Became a new singleton cluster.
    NewSingleton {
        /// Index of the new cluster.
        cluster: usize,
    },
}

/// Result of one incremental addition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdditionReport {
    /// Id assigned to the new model.
    pub model: ModelId,
    /// Cluster placement decision.
    pub placement: Placement,
}

impl OfflineArtifacts {
    /// Add one model to the artifacts in place. `config` must be the
    /// configuration the artifacts were built with (its `similarity_top_k`,
    /// threshold and trend settings drive the incremental update).
    pub fn add_model(
        &mut self,
        addition: &ModelAddition,
        config: &OfflineConfig,
    ) -> Result<AdditionReport> {
        let n_datasets = self.matrix.n_datasets();
        if addition.benchmark_curves.len() != n_datasets {
            return Err(SelectionError::DimensionMismatch {
                what: "benchmark curves",
                expected: n_datasets,
                got: addition.benchmark_curves.len(),
            });
        }
        if self.matrix.model_by_name(&addition.name).is_some() {
            return Err(SelectionError::InvalidConfig(format!(
                "model `{}` already in the repository",
                addition.name
            )));
        }

        // 1. Extend the performance matrix with the final test accuracies.
        let accuracies: Vec<f64> = addition
            .benchmark_curves
            .iter()
            .map(LearningCurve::test)
            .collect();
        self.matrix = self.matrix.with_model(&addition.name, &accuracies)?;
        let new_id = ModelId::from(self.matrix.n_models() - 1);

        // 2. Refresh the similarity matrix, preserving the storage layout:
        // lazy artifacts (indexed builds) stay lazy, dense stay dense.
        self.similarity = if self.similarity.is_lazy() {
            SimilarityMatrix::lazy_from_vectors(
                Arc::new(self.matrix.model_vectors()),
                config.similarity_top_k,
            )?
        } else {
            SimilarityMatrix::from_performance(&self.matrix, config.similarity_top_k)?
        };

        // 3. Greedy cluster placement against existing representatives.
        // (Representatives are derived from the matrix *before* growth —
        // identical, since representative choice ignores the new model.)
        let reps = self
            .clustering
            .representatives_excluding_last(&self.matrix)?;
        let join_threshold = match config.cluster {
            ClusterMethod::HierarchicalThreshold(t) => 1.0 - t,
            // DBSCAN's radius is already a distance bound.
            ClusterMethod::Dbscan { eps, .. } => 1.0 - eps,
            // For k-targeted methods there is no natural join radius; use a
            // conservative high-similarity bar.
            ClusterMethod::HierarchicalK(_) | ClusterMethod::KMeans { .. } => 0.95,
        };
        let best = reps
            .iter()
            .enumerate()
            .map(|(c, &rep)| (c, self.similarity.similarity(new_id, rep)))
            .max_by(|a, b| a.1.total_cmp(&b.1));
        let placement = match best {
            Some((cluster, similarity)) if similarity >= join_threshold => {
                self.clustering = self.clustering.with_model(Some(cluster))?;
                Placement::Joined {
                    cluster,
                    similarity,
                }
            }
            _ => {
                self.clustering = self.clustering.with_model(None)?;
                Placement::NewSingleton {
                    cluster: self.clustering.n_clusters() - 1,
                }
            }
        };

        // 4. Mine the new model's convergence trends from its own curves.
        let trends = mine_trends(
            &addition.benchmark_curves,
            config.trend_stages,
            &config.trend,
        )?;
        self.trends.push(trends);

        // 5. Rebuild the stored representative index (indexed builds) over
        // the grown clustering: it is O(C) work, and dropping it instead
        // would silently push every indexed select onto the per-query
        // rebuild path.
        if self.ann.is_some() {
            let reps = self.clustering.representatives(&self.matrix)?;
            let scored = scored_cluster_set(&self.clustering);
            self.ann = Some(AnnRepIndex::build(
                &self.matrix,
                &reps,
                &scored,
                config.similarity_top_k,
                &config.ann,
            )?);
        }

        Ok(AdditionReport {
            model: new_id,
            placement,
        })
    }
}

impl crate::matrix::PerformanceMatrix {
    /// A copy of the matrix with one extra model column.
    pub fn with_model(&self, name: &str, accuracies: &[f64]) -> Result<Self> {
        if accuracies.len() != self.n_datasets() {
            return Err(SelectionError::DimensionMismatch {
                what: "model accuracies",
                expected: self.n_datasets(),
                got: accuracies.len(),
            });
        }
        let mut names: Vec<String> = (0..self.n_models())
            .map(|m| self.model_name(ModelId::from(m)).to_string())
            .collect();
        names.push(name.to_string());
        let dataset_names: Vec<String> = (0..self.n_datasets())
            .map(|d| {
                self.dataset_name(crate::ids::DatasetId::from(d))
                    .to_string()
            })
            .collect();
        let rows: Vec<Vec<f64>> = (0..self.n_datasets())
            .map(|d| {
                let mut row = self.dataset_row(crate::ids::DatasetId::from(d)).to_vec();
                row.push(accuracies[d]);
                row
            })
            .collect();
        Self::new(names, dataset_names, rows)
    }

    /// A copy of the matrix with model `m` removed; later ids shift down.
    pub fn without_model(&self, m: ModelId) -> Result<Self> {
        if m.index() >= self.n_models() {
            return Err(SelectionError::UnknownId {
                what: "model",
                id: m.index(),
            });
        }
        if self.n_models() < 2 {
            return Err(SelectionError::Empty("models after retirement"));
        }
        let names: Vec<String> = (0..self.n_models())
            .filter(|&j| j != m.index())
            .map(|j| self.model_name(ModelId::from(j)).to_string())
            .collect();
        let dataset_names: Vec<String> = (0..self.n_datasets())
            .map(|d| self.dataset_name(DatasetId::from(d)).to_string())
            .collect();
        let rows: Vec<Vec<f64>> = (0..self.n_datasets())
            .map(|d| {
                let mut row = self.dataset_row(DatasetId::from(d)).to_vec();
                row.remove(m.index());
                row
            })
            .collect();
        Self::new(names, dataset_names, rows)
    }

    /// A copy of the matrix with model `m`'s accuracies replaced (a
    /// retrained model keeps its id and name).
    pub fn with_model_replaced(&self, m: ModelId, accuracies: &[f64]) -> Result<Self> {
        if m.index() >= self.n_models() {
            return Err(SelectionError::UnknownId {
                what: "model",
                id: m.index(),
            });
        }
        if accuracies.len() != self.n_datasets() {
            return Err(SelectionError::DimensionMismatch {
                what: "model accuracies",
                expected: self.n_datasets(),
                got: accuracies.len(),
            });
        }
        let names: Vec<String> = (0..self.n_models())
            .map(|j| self.model_name(ModelId::from(j)).to_string())
            .collect();
        let dataset_names: Vec<String> = (0..self.n_datasets())
            .map(|d| self.dataset_name(DatasetId::from(d)).to_string())
            .collect();
        let rows: Vec<Vec<f64>> = (0..self.n_datasets())
            .map(|d| {
                let mut row = self.dataset_row(DatasetId::from(d)).to_vec();
                row[m.index()] = accuracies[d];
                row
            })
            .collect();
        Self::new(names, dataset_names, rows)
    }

    /// A copy of the matrix with one extra benchmark dataset appended.
    /// `row[m]` is model `m`'s accuracy on the new dataset.
    pub fn with_dataset(&self, name: &str, row: &[f64]) -> Result<Self> {
        if row.len() != self.n_models() {
            return Err(SelectionError::DimensionMismatch {
                what: "dataset row",
                expected: self.n_models(),
                got: row.len(),
            });
        }
        let names: Vec<String> = (0..self.n_models())
            .map(|j| self.model_name(ModelId::from(j)).to_string())
            .collect();
        let mut dataset_names: Vec<String> = (0..self.n_datasets())
            .map(|d| self.dataset_name(DatasetId::from(d)).to_string())
            .collect();
        dataset_names.push(name.to_string());
        let mut rows: Vec<Vec<f64>> = (0..self.n_datasets())
            .map(|d| self.dataset_row(DatasetId::from(d)).to_vec())
            .collect();
        rows.push(row.to_vec());
        Self::new(names, dataset_names, rows)
    }

    /// A copy of the matrix with dataset `d` removed; later ids shift down.
    pub fn without_dataset(&self, d: DatasetId) -> Result<Self> {
        if d.index() >= self.n_datasets() {
            return Err(SelectionError::UnknownId {
                what: "dataset",
                id: d.index(),
            });
        }
        if self.n_datasets() < 2 {
            return Err(SelectionError::Empty("datasets after drop"));
        }
        let keep: Vec<DatasetId> = (0..self.n_datasets())
            .filter(|&j| j != d.index())
            .map(DatasetId::from)
            .collect();
        self.select_datasets(&keep)
    }
}

impl Clustering {
    /// A copy with one extra model appended: into cluster `Some(c)` or as a
    /// fresh singleton (`None`).
    pub fn with_model(&self, cluster: Option<usize>) -> Result<Self> {
        let mut assignments = self.assignments().to_vec();
        match cluster {
            Some(c) => {
                if c >= self.n_clusters() {
                    return Err(SelectionError::UnknownId {
                        what: "cluster",
                        id: c,
                    });
                }
                assignments.push(c);
            }
            None => assignments.push(self.n_clusters()),
        }
        Clustering::new(assignments)
    }

    /// Representatives computed against a matrix that may already contain
    /// one *extra* trailing model not covered by this clustering (used
    /// mid-addition). Falls back to [`Clustering::representatives`] when
    /// sizes match.
    pub(crate) fn representatives_excluding_last(
        &self,
        matrix: &crate::matrix::PerformanceMatrix,
    ) -> Result<Vec<ModelId>> {
        if matrix.n_models() == self.n_models() {
            return self.representatives(matrix);
        }
        if matrix.n_models() != self.n_models() + 1 {
            return Err(SelectionError::DimensionMismatch {
                what: "clustering vs matrix models",
                expected: self.n_models() + 1,
                got: matrix.n_models(),
            });
        }
        let mut reps = Vec::with_capacity(self.n_clusters());
        for c in 0..self.n_clusters() {
            let rep = self
                .members(c)
                .into_iter()
                .max_by(|&a, &b| matrix.avg_accuracy(a).total_cmp(&matrix.avg_accuracy(b)))
                .expect("compact clustering has no empty clusters");
            reps.push(rep);
        }
        Ok(reps)
    }
}

impl crate::trend::TrendBook {
    /// Append one model's trends (the model must be the repository's newest).
    pub fn push(&mut self, trends: crate::trend::ConvergenceTrends) {
        self.push_inner(trends);
    }

    /// Drop model `m`'s trends; later rows shift down.
    pub fn remove(&mut self, m: ModelId) {
        self.remove_inner(m.index());
    }

    /// Replace model `m`'s trends in place.
    pub fn replace(&mut self, m: ModelId, trends: crate::trend::ConvergenceTrends) {
        self.replace_inner(m.index(), trends);
    }
}

/// One live-zoo repository change, with the measurements the offline
/// artifacts need to absorb it. Model ops carry only the affected model's
/// curves; `AddDataset` carries every model's curve on the new dataset
/// (the zoo layer regenerates curves deterministically from its transfer
/// law, so callers never persist them).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Update {
    /// Register a new model (appended at the end of the id space).
    AddModel {
        /// Repository name of the new model.
        name: String,
        /// `curves[d]` = its learning curve on benchmark dataset `d`.
        benchmark_curves: Vec<LearningCurve>,
    },
    /// Remove a model; later model ids shift down by one.
    RetireModel {
        /// Name of the model to retire.
        name: String,
    },
    /// Replace a model's measurements (a retrain keeps id and name).
    RefreshModel {
        /// Name of the retrained model.
        name: String,
        /// Its fresh benchmark curves, in dataset order.
        benchmark_curves: Vec<LearningCurve>,
    },
    /// Append a benchmark dataset; every model's trends are re-mined.
    AddDataset {
        /// Name of the new benchmark dataset.
        name: String,
        /// `model_curves[m]` = model `m`'s curve on the new dataset.
        model_curves: Vec<LearningCurve>,
    },
    /// Remove a benchmark dataset; every model's trends are re-mined.
    DropDataset {
        /// Name of the dataset to drop.
        name: String,
    },
}

impl Update {
    /// The operation name as it appears in reports and traces.
    pub fn op(&self) -> &'static str {
        match self {
            Update::AddModel { .. } => "add-model",
            Update::RetireModel { .. } => "retire-model",
            Update::RefreshModel { .. } => "refresh-model",
            Update::AddDataset { .. } => "add-dataset",
            Update::DropDataset { .. } => "drop-dataset",
        }
    }

    /// The name the update targets (model or dataset).
    pub fn target(&self) -> &str {
        match self {
            Update::AddModel { name, .. }
            | Update::RetireModel { name }
            | Update::RefreshModel { name, .. }
            | Update::AddDataset { name, .. }
            | Update::DropDataset { name } => name,
        }
    }
}

/// Accounting for one applied [`Update`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateReport {
    /// Operation name (`add-model`, `retire-model`, …).
    pub op: String,
    /// Model or dataset name the update targeted.
    pub target: String,
    /// Models in the repository after the update.
    pub models: usize,
    /// Benchmark datasets after the update.
    pub datasets: usize,
    /// Clusters after the update.
    pub clusters: usize,
    /// Trend rows re-mined by this update (0 or 1 for model ops; dataset
    /// ops re-mine every row and report it here).
    pub remined_rows: usize,
    /// kNN neighbour lists recomputed or patched (indexed mode; 0 in
    /// exact mode, which has no lists).
    pub touched_lists: usize,
}

/// The incremental delta engine: owns [`OfflineArtifacts`] plus the side
/// state (per-model curves, current kNN lists) needed to absorb
/// [`Update`]s with localized work while staying byte-identical to a
/// from-scratch build on the post-update zoo.
///
/// Indexed mode (`--ann indexed` + `HierarchicalThreshold`, the same
/// combination [`crate::stream::StreamingOfflineBuilder`] supports) keeps
/// neighbour lists incrementally in the exhaustive search regime and
/// falls back to an id-order index rebuild outside it. Exact mode
/// re-derives the dense similarity and clustering with the exact build's
/// own code path (trivially byte-identical) while still localizing the
/// trend re-mine.
#[derive(Debug, Clone)]
pub struct DeltaEngine {
    artifacts: OfflineArtifacts,
    config: OfflineConfig,
    threads: usize,
    /// `curves[m][d]` = model `m`'s learning curve on dataset `d` —
    /// required so dataset ops can re-mine every row.
    curves: Vec<Vec<LearningCurve>>,
    /// Indexed mode: the current kNN neighbour lists (empty in exact mode).
    lists: Vec<Vec<(u32, f64)>>,
    /// Indexed mode: the `HierarchicalThreshold` clustering threshold.
    threshold: f64,
}

impl DeltaEngine {
    /// Wrap existing artifacts for incremental maintenance. `curves[m][d]`
    /// must be the learning curves the artifacts were built from (their
    /// final test accuracies are checked against the matrix).
    pub fn new(
        artifacts: OfflineArtifacts,
        curves: Vec<Vec<LearningCurve>>,
        config: OfflineConfig,
    ) -> Result<Self> {
        let n = artifacts.matrix.n_models();
        let d = artifacts.matrix.n_datasets();
        if curves.len() != n {
            return Err(SelectionError::DimensionMismatch {
                what: "curve rows",
                expected: n,
                got: curves.len(),
            });
        }
        for (m, row) in curves.iter().enumerate() {
            if row.len() != d {
                return Err(SelectionError::DimensionMismatch {
                    what: "curves per model",
                    expected: d,
                    got: row.len(),
                });
            }
            for (di, curve) in row.iter().enumerate() {
                let cell = artifacts
                    .matrix
                    .accuracy(DatasetId::from(di), ModelId::from(m));
                if curve.test() != cell {
                    return Err(SelectionError::InvalidConfig(format!(
                        "curve final accuracy for model {m} on dataset {di} \
                         ({}) disagrees with the performance matrix ({cell})",
                        curve.test()
                    )));
                }
            }
        }
        let threshold = match (config.ann.mode, config.cluster) {
            (AnnMode::Indexed, ClusterMethod::HierarchicalThreshold(t)) => {
                config.ann.validate()?;
                t
            }
            (AnnMode::Indexed, other) => {
                return Err(SelectionError::InvalidConfig(format!(
                    "indexed incremental updates support only \
                     HierarchicalThreshold clustering, got {other:?}"
                )))
            }
            (AnnMode::Exact, _) => 0.0,
        };
        let threads = config.parallel.resolve();
        let mut engine = DeltaEngine {
            artifacts,
            config,
            threads,
            curves,
            lists: Vec::new(),
            threshold,
        };
        if engine.config.ann.mode == AnnMode::Indexed {
            engine.lists = engine.rebuild_lists()?;
        }
        Ok(engine)
    }

    /// Convenience wrapper over [`new`](Self::new) for callers holding a
    /// [`CurveSet`](crate::curve::CurveSet).
    pub fn from_curve_set(
        artifacts: OfflineArtifacts,
        curves: &crate::curve::CurveSet,
        config: OfflineConfig,
    ) -> Result<Self> {
        let table = (0..curves.n_models())
            .map(|m| curves.model_curves(ModelId::from(m)).to_vec())
            .collect();
        Self::new(artifacts, table, config)
    }

    /// The maintained artifacts.
    pub fn artifacts(&self) -> &OfflineArtifacts {
        &self.artifacts
    }

    /// The maintained curve table (`[model][dataset]` order).
    pub fn curves(&self) -> &[Vec<LearningCurve>] {
        &self.curves
    }

    /// Consume the engine, yielding the artifacts.
    pub fn into_artifacts(self) -> OfflineArtifacts {
        self.artifacts
    }

    /// Apply one repository update. See
    /// [`apply_update_traced`](Self::apply_update_traced).
    pub fn apply_update(&mut self, update: &Update) -> Result<UpdateReport> {
        self.apply_update_traced(update, &Telemetry::disabled())
    }

    /// Apply one repository update, re-deriving the artifacts
    /// byte-identically to a from-scratch build on the post-update zoo.
    ///
    /// Emits an `incremental.update` span with counters:
    /// `incremental.updates`, `incremental.remined_rows` (model ops),
    /// `incremental.dataset_remined_rows` (dataset ops re-mine all M
    /// rows), and in indexed mode `incremental.touched_lists`,
    /// `incremental.knn_k` and `incremental.log2_m` — the operands of the
    /// `incremental-touched-sublinear` budget rule.
    pub fn apply_update_traced(
        &mut self,
        update: &Update,
        tel: &Telemetry,
    ) -> Result<UpdateReport> {
        let _span = tel.span("incremental.update");
        let indexed = self.config.ann.mode == AnnMode::Indexed;
        let (remined, dataset_remined, touched) = match update {
            Update::AddModel {
                name,
                benchmark_curves,
            } => {
                self.validate_new_model(name, benchmark_curves)?;
                let trends = mine_trends(
                    benchmark_curves,
                    self.config.trend_stages,
                    &self.config.trend,
                )?;
                let accuracies: Vec<f64> =
                    benchmark_curves.iter().map(LearningCurve::test).collect();
                self.artifacts.matrix = self.artifacts.matrix.with_model(name, &accuracies)?;
                self.curves.push(benchmark_curves.clone());
                self.artifacts.trends.push(trends);
                let touched = if indexed { self.lists_after_add()? } else { 0 };
                (1, 0, touched)
            }
            Update::RetireModel { name } => {
                let r = self.model_id(name)?;
                self.artifacts.matrix = self.artifacts.matrix.without_model(r)?;
                self.curves.remove(r.index());
                self.artifacts.trends.remove(r);
                let touched = if indexed {
                    self.lists_after_retire(r.index())?
                } else {
                    0
                };
                (0, 0, touched)
            }
            Update::RefreshModel {
                name,
                benchmark_curves,
            } => {
                let r = self.model_id(name)?;
                if benchmark_curves.len() != self.artifacts.matrix.n_datasets() {
                    return Err(SelectionError::DimensionMismatch {
                        what: "benchmark curves",
                        expected: self.artifacts.matrix.n_datasets(),
                        got: benchmark_curves.len(),
                    });
                }
                let trends = mine_trends(
                    benchmark_curves,
                    self.config.trend_stages,
                    &self.config.trend,
                )?;
                let accuracies: Vec<f64> =
                    benchmark_curves.iter().map(LearningCurve::test).collect();
                self.artifacts.matrix =
                    self.artifacts.matrix.with_model_replaced(r, &accuracies)?;
                self.curves[r.index()] = benchmark_curves.clone();
                self.artifacts.trends.replace(r, trends);
                let touched = if indexed {
                    self.lists_after_refresh(r.index())?
                } else {
                    0
                };
                (1, 0, touched)
            }
            Update::AddDataset { name, model_curves } => {
                let n = self.artifacts.matrix.n_models();
                if model_curves.len() != n {
                    return Err(SelectionError::DimensionMismatch {
                        what: "model curves",
                        expected: n,
                        got: model_curves.len(),
                    });
                }
                if self.artifacts.matrix.dataset_by_name(name).is_some() {
                    return Err(SelectionError::InvalidConfig(format!(
                        "dataset `{name}` already in the repository"
                    )));
                }
                let row: Vec<f64> = model_curves.iter().map(LearningCurve::test).collect();
                self.artifacts.matrix = self.artifacts.matrix.with_dataset(name, &row)?;
                for (m, curve) in model_curves.iter().enumerate() {
                    self.curves[m].push(curve.clone());
                }
                self.remine_all_rows()?;
                let touched = if indexed {
                    self.lists = self.rebuild_lists()?;
                    n
                } else {
                    0
                };
                (0, n, touched)
            }
            Update::DropDataset { name } => {
                let d = self.artifacts.matrix.dataset_by_name(name).ok_or_else(|| {
                    SelectionError::InvalidConfig(format!("dataset `{name}` not in the repository"))
                })?;
                let n = self.artifacts.matrix.n_models();
                self.artifacts.matrix = self.artifacts.matrix.without_dataset(d)?;
                for row in &mut self.curves {
                    row.remove(d.index());
                }
                self.remine_all_rows()?;
                let touched = if indexed {
                    self.lists = self.rebuild_lists()?;
                    n
                } else {
                    0
                };
                (0, n, touched)
            }
        };
        self.derive()?;
        tel.add("incremental.updates", 1.0);
        if remined > 0 {
            tel.add("incremental.remined_rows", remined as f64);
        }
        if dataset_remined > 0 {
            tel.add("incremental.dataset_remined_rows", dataset_remined as f64);
        }
        if indexed {
            tel.add("incremental.touched_lists", touched as f64);
            tel.add("incremental.knn_k", self.config.ann.k as f64);
            tel.add(
                "incremental.log2_m",
                (self.artifacts.matrix.n_models().max(2) as f64)
                    .log2()
                    .ceil(),
            );
        }
        Ok(UpdateReport {
            op: update.op().to_string(),
            target: update.target().to_string(),
            models: self.artifacts.matrix.n_models(),
            datasets: self.artifacts.matrix.n_datasets(),
            clusters: self.artifacts.clustering.n_clusters(),
            remined_rows: remined + dataset_remined,
            touched_lists: touched,
        })
    }

    fn model_id(&self, name: &str) -> Result<ModelId> {
        self.artifacts.matrix.model_by_name(name).ok_or_else(|| {
            SelectionError::InvalidConfig(format!("model `{name}` not in the repository"))
        })
    }

    fn validate_new_model(&self, name: &str, curves: &[LearningCurve]) -> Result<()> {
        if curves.len() != self.artifacts.matrix.n_datasets() {
            return Err(SelectionError::DimensionMismatch {
                what: "benchmark curves",
                expected: self.artifacts.matrix.n_datasets(),
                got: curves.len(),
            });
        }
        if self.artifacts.matrix.model_by_name(name).is_some() {
            return Err(SelectionError::InvalidConfig(format!(
                "model `{name}` already in the repository"
            )));
        }
        Ok(())
    }

    /// Re-mine every model's trends (dataset schema changed).
    fn remine_all_rows(&mut self) -> Result<()> {
        let rows: Vec<crate::trend::ConvergenceTrends> = self
            .curves
            .iter()
            .map(|row| mine_trends(row, self.config.trend_stages, &self.config.trend))
            .collect::<Result<_>>()?;
        self.artifacts.trends = crate::trend::TrendBook::from_parts(rows)?;
        Ok(())
    }

    /// Whether kNN queries over `n` nodes run in the exhaustive regime —
    /// the mirror of [`AnnIndex::knn`]'s `ef >= len()` degradation, where
    /// each list is a pure function of the vector set and can be patched
    /// locally.
    fn exhaustive_regime(&self, n: usize) -> bool {
        self.config.ann.ef_search.max(self.config.ann.k + 1) >= n
    }

    /// From-scratch neighbour lists via an id-order index rebuild —
    /// byte-identical to what [`OfflineArtifacts::build`] derives.
    fn rebuild_lists(&self) -> Result<Vec<Vec<(u32, f64)>>> {
        let index = AnnIndex::build(
            self.artifacts.matrix.model_vectors(),
            self.config.similarity_top_k,
            &self.config.ann,
        )?;
        Ok(index.knn_lists(self.config.ann.k, self.config.ann.ef_search, self.threads))
    }

    /// Model `i`'s exhaustive-regime kNN list over `vectors`: the same
    /// take-`k+1`, drop-self, truncate-`k` sequence as [`AnnIndex::knn`].
    fn exhaustive_list(
        &self,
        vectors: &[Vec<f64>],
        i: usize,
        diffs: &mut Vec<f64>,
    ) -> Vec<(u32, f64)> {
        let top_k = self.config.similarity_top_k;
        let k = self.config.ann.k;
        let q = &vectors[i];
        let mut all: Vec<(u32, f64)> = (0..vectors.len() as u32)
            .map(|id| (id, eq1_distance_buf(q, &vectors[id as usize], top_k, diffs)))
            .collect();
        all.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        all.truncate(k + 1);
        all.retain(|&(id, _)| id as usize != i);
        all.truncate(k);
        all
    }

    /// Insert `(id, dist)` into a `(dist, id)`-sorted top-`k` list;
    /// returns whether the list changed.
    fn insert_candidate(list: &mut Vec<(u32, f64)>, id: u32, dist: f64, k: usize) -> bool {
        let pos = list.partition_point(|&(eid, ed)| match ed.total_cmp(&dist) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Equal => eid < id,
            std::cmp::Ordering::Greater => false,
        });
        if pos >= k {
            return false;
        }
        list.insert(pos, (id, dist));
        list.truncate(k);
        true
    }

    /// Patch the neighbour lists after a model append. Returns the number
    /// of lists touched.
    fn lists_after_add(&mut self) -> Result<usize> {
        let n = self.artifacts.matrix.n_models();
        if !self.exhaustive_regime(n) {
            self.lists = self.rebuild_lists()?;
            return Ok(n);
        }
        let vectors = self.artifacts.matrix.model_vectors();
        let new = n - 1;
        let top_k = self.config.similarity_top_k;
        let k = self.config.ann.k;
        let mut diffs = Vec::new();
        let mut touched = 1; // the new model's own list
        let mut new_list: Vec<(u32, f64)> = Vec::with_capacity(new);
        for x in 0..new {
            let d = eq1_distance_buf(&vectors[x], &vectors[new], top_k, &mut diffs);
            new_list.push((x as u32, d));
            if Self::insert_candidate(&mut self.lists[x], new as u32, d, k) {
                touched += 1;
            }
        }
        new_list.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        new_list.truncate(k);
        self.lists.push(new_list);
        Ok(touched)
    }

    /// Patch the neighbour lists after retiring (pre-removal) model `r`.
    fn lists_after_retire(&mut self, r: usize) -> Result<usize> {
        let n = self.artifacts.matrix.n_models();
        if !self.exhaustive_regime(n) {
            self.lists = self.rebuild_lists()?;
            return Ok(n);
        }
        self.lists.remove(r);
        let vectors = self.artifacts.matrix.model_vectors();
        let mut diffs = Vec::new();
        let mut requeue: Vec<usize> = Vec::new();
        for (x, list) in self.lists.iter_mut().enumerate() {
            if list.iter().any(|&(id, _)| id as usize == r) {
                requeue.push(x);
            } else {
                for entry in list.iter_mut() {
                    if entry.0 as usize > r {
                        entry.0 -= 1;
                    }
                }
            }
        }
        for &x in &requeue {
            self.lists[x] = self.exhaustive_list(&vectors, x, &mut diffs);
        }
        Ok(requeue.len())
    }

    /// Patch the neighbour lists after refreshing model `r`'s vector.
    fn lists_after_refresh(&mut self, r: usize) -> Result<usize> {
        let n = self.artifacts.matrix.n_models();
        if !self.exhaustive_regime(n) {
            self.lists = self.rebuild_lists()?;
            return Ok(n);
        }
        let vectors = self.artifacts.matrix.model_vectors();
        let top_k = self.config.similarity_top_k;
        let k = self.config.ann.k;
        let mut diffs = Vec::new();
        let mut touched = 1; // r's own list
        self.lists[r] = self.exhaustive_list(&vectors, r, &mut diffs);
        for x in 0..n {
            if x == r {
                continue;
            }
            let had = self.lists[x].iter().any(|&(id, _)| id as usize == r);
            if had {
                // r's old entry may have displaced the true k-th; requery.
                self.lists[x] = self.exhaustive_list(&vectors, x, &mut diffs);
                touched += 1;
            } else {
                // r was outside x's top-k; it enters only if the new
                // vector beats the current worst.
                let d = eq1_distance_buf(&vectors[x], &vectors[r], top_k, &mut diffs);
                if Self::insert_candidate(&mut self.lists[x], r as u32, d, k) {
                    touched += 1;
                }
            }
        }
        Ok(touched)
    }

    /// Re-derive similarity, clustering and the representative index from
    /// the updated matrix (+ lists), exactly as a from-scratch build does.
    fn derive(&mut self) -> Result<()> {
        match self.config.ann.mode {
            AnnMode::Indexed => {
                let matrix = &self.artifacts.matrix;
                self.artifacts.similarity = SimilarityMatrix::lazy_from_vectors(
                    Arc::new(matrix.model_vectors()),
                    self.config.similarity_top_k,
                )?;
                self.artifacts.clustering =
                    knn_threshold_components(matrix.n_models(), &self.lists, self.threshold)?;
                let reps = self.artifacts.clustering.representatives(matrix)?;
                let scored = scored_cluster_set(&self.artifacts.clustering);
                self.artifacts.ann = Some(AnnRepIndex::build(
                    matrix,
                    &reps,
                    &scored,
                    self.config.similarity_top_k,
                    &self.config.ann,
                )?);
            }
            AnnMode::Exact => {
                self.artifacts.similarity = SimilarityMatrix::from_performance_par(
                    &self.artifacts.matrix,
                    self.config.similarity_top_k,
                    self.threads,
                )?;
                self.artifacts.clustering = cluster_models(
                    &self.artifacts.matrix,
                    &self.artifacts.similarity,
                    self.config.cluster,
                )?;
                self.artifacts.ann = None;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::CurveSet;
    use crate::matrix::PerformanceMatrix;
    use crate::pipeline::OfflineConfig;
    use crate::trend::TrendConfig;

    /// Artifacts over 4 models / 3 datasets: models 0,1 a tight family,
    /// 2,3 distinct singletons.
    fn artifacts() -> (OfflineArtifacts, OfflineConfig) {
        let matrix = PerformanceMatrix::new(
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
            vec!["d0".into(), "d1".into(), "d2".into()],
            vec![
                vec![0.90, 0.89, 0.50, 0.20],
                vec![0.80, 0.81, 0.20, 0.60],
                vec![0.70, 0.69, 0.40, 0.40],
            ],
        )
        .unwrap();
        let curves = CurveSet::from_fn(4, 3, |m, d| {
            let f = matrix.accuracy(d, m);
            LearningCurve::new(vec![f * 0.7, f * 0.9, f], f).unwrap()
        })
        .unwrap();
        let config = OfflineConfig {
            similarity_top_k: 2,
            cluster: ClusterMethod::HierarchicalThreshold(0.05),
            trend: TrendConfig {
                n_trends: 2,
                max_iter: 32,
            },
            trend_stages: 3,
            parallel: Default::default(),
            ann: Default::default(),
        };
        (
            OfflineArtifacts::build(matrix, &curves, &config).unwrap(),
            config,
        )
    }

    fn addition(name: &str, finals: [f64; 3]) -> ModelAddition {
        ModelAddition {
            name: name.into(),
            benchmark_curves: finals
                .iter()
                .map(|&f| LearningCurve::new(vec![f * 0.7, f * 0.9, f], f).unwrap())
                .collect(),
        }
    }

    #[test]
    fn sibling_joins_the_family_cluster() {
        let (mut arts, config) = artifacts();
        let family_cluster = arts.clustering.cluster_of(ModelId(0));
        let report = arts
            .add_model(&addition("a-sibling", [0.895, 0.805, 0.695]), &config)
            .unwrap();
        assert_eq!(report.model, ModelId(4));
        match report.placement {
            Placement::Joined {
                cluster,
                similarity,
            } => {
                assert_eq!(cluster, family_cluster);
                assert!(similarity > 0.95);
            }
            other => panic!("expected join, got {other:?}"),
        }
        assert_eq!(arts.matrix.n_models(), 5);
        assert_eq!(arts.similarity.len(), 5);
        assert_eq!(arts.clustering.n_models(), 5);
        assert_eq!(arts.trends.n_models(), 5);
        assert_eq!(arts.clustering.cluster_of(ModelId(4)), family_cluster);
    }

    #[test]
    fn outlier_becomes_a_new_singleton() {
        let (mut arts, config) = artifacts();
        let before = arts.clustering.n_clusters();
        let report = arts
            .add_model(&addition("weird", [0.15, 0.95, 0.10]), &config)
            .unwrap();
        match report.placement {
            Placement::NewSingleton { cluster } => assert_eq!(cluster, before),
            other => panic!("expected singleton, got {other:?}"),
        }
        assert_eq!(arts.clustering.n_clusters(), before + 1);
        assert_eq!(arts.clustering.cluster_size(before), 1);
    }

    #[test]
    fn added_model_participates_in_recall() {
        use crate::recall::{coarse_recall, RecallConfig};
        let (mut arts, config) = artifacts();
        arts.add_model(&addition("a-sibling", [0.91, 0.82, 0.71]), &config)
            .unwrap();
        let out = coarse_recall(
            &arts.matrix,
            &arts.clustering,
            &arts.similarity,
            &RecallConfig {
                top_k: 3,
                ..Default::default()
            },
            |_| Ok(-0.4),
        )
        .unwrap();
        // The newcomer has the highest average accuracy in the family
        // cluster, so it should lead the recall ranking.
        assert!(
            out.recalled.contains(&ModelId(4)),
            "recalled {:?}",
            out.recalled
        );
    }

    #[test]
    fn validates_input() {
        let (mut arts, config) = artifacts();
        // Wrong curve count.
        let bad = ModelAddition {
            name: "x".into(),
            benchmark_curves: vec![LearningCurve::new(vec![0.5], 0.5).unwrap()],
        };
        assert!(arts.add_model(&bad, &config).is_err());
        // Duplicate name.
        assert!(arts
            .add_model(&addition("a", [0.5, 0.5, 0.5]), &config)
            .is_err());
        // Artifacts untouched after failed additions.
        assert_eq!(arts.matrix.n_models(), 4);
    }

    #[test]
    fn incremental_matches_rebuild_for_clear_cases() {
        // Adding an exact family sibling: the incremental placement must
        // agree with a from-scratch rebuild's co-clustering.
        let (mut arts, config) = artifacts();
        arts.add_model(&addition("a-sibling", [0.90, 0.80, 0.70]), &config)
            .unwrap();

        // Rebuild from the extended matrix.
        let curves = CurveSet::from_fn(5, 3, |m, d| {
            let f = arts.matrix.accuracy(d, m);
            LearningCurve::new(vec![f * 0.7, f * 0.9, f], f).unwrap()
        })
        .unwrap();
        let rebuilt = OfflineArtifacts::build(arts.matrix.clone(), &curves, &config).unwrap();
        let same_incr =
            arts.clustering.cluster_of(ModelId(4)) == arts.clustering.cluster_of(ModelId(0));
        let same_rebuild =
            rebuilt.clustering.cluster_of(ModelId(4)) == rebuilt.clustering.cluster_of(ModelId(0));
        assert_eq!(same_incr, same_rebuild);
        assert!(same_incr, "sibling should co-cluster with model a");
    }

    #[test]
    fn matrix_with_model_validates() {
        let (arts, _) = artifacts();
        assert!(arts.matrix.with_model("x", &[0.5]).is_err());
        let grown = arts.matrix.with_model("x", &[0.5, 0.5, 0.5]).unwrap();
        assert_eq!(grown.n_models(), 5);
        assert_eq!(grown.model_name(ModelId(4)), "x");
        assert_eq!(grown.accuracy(crate::ids::DatasetId(1), ModelId(4)), 0.5);
    }

    #[test]
    fn clustering_with_model_validates() {
        let c = Clustering::new(vec![0, 0, 1]).unwrap();
        assert!(c.with_model(Some(5)).is_err());
        let joined = c.with_model(Some(1)).unwrap();
        assert_eq!(joined.cluster_size(1), 2);
        let single = c.with_model(None).unwrap();
        assert_eq!(single.n_clusters(), 3);
    }

    // ---- delta engine ----------------------------------------------------

    use crate::ann::AnnMode;

    fn curve_for(f: f64) -> LearningCurve {
        LearningCurve::new(vec![f * 0.7, f * 0.9, f], f).unwrap()
    }

    /// A 6-model / 3-dataset world with a family (m0,m1) and spread-out
    /// singletons, plus its curve set.
    fn world(indexed: bool) -> (PerformanceMatrix, CurveSet, OfflineConfig) {
        let matrix = PerformanceMatrix::new(
            (0..6).map(|m| format!("m{m}")).collect(),
            vec!["d0".into(), "d1".into(), "d2".into()],
            vec![
                vec![0.90, 0.89, 0.50, 0.20, 0.75, 0.35],
                vec![0.80, 0.81, 0.20, 0.60, 0.45, 0.95],
                vec![0.70, 0.69, 0.40, 0.40, 0.65, 0.15],
            ],
        )
        .unwrap();
        let curves = CurveSet::from_fn(6, 3, |m, d| curve_for(matrix.accuracy(d, m))).unwrap();
        let mut config = OfflineConfig {
            similarity_top_k: 2,
            cluster: ClusterMethod::HierarchicalThreshold(0.05),
            trend: TrendConfig {
                n_trends: 2,
                max_iter: 32,
            },
            trend_stages: 3,
            parallel: Default::default(),
            ann: Default::default(),
        };
        if indexed {
            config.ann.mode = AnnMode::Indexed;
        }
        (matrix, curves, config)
    }

    fn engine(indexed: bool) -> DeltaEngine {
        let (matrix, curves, config) = world(indexed);
        let arts = OfflineArtifacts::build(matrix, &curves, &config).unwrap();
        DeltaEngine::from_curve_set(arts, &curves, config).unwrap()
    }

    /// From-scratch artifacts on the engine's current curve table.
    fn rebuild(engine: &DeltaEngine, config: &OfflineConfig) -> OfflineArtifacts {
        let table = engine.curves();
        let flat: Vec<LearningCurve> = table.iter().flat_map(|row| row.iter().cloned()).collect();
        let curves = CurveSet::new(table.len(), table[0].len(), flat).unwrap();
        OfflineArtifacts::build(engine.artifacts().matrix.clone(), &curves, config).unwrap()
    }

    fn assert_byte_identical(engine: &DeltaEngine, config: &OfflineConfig, ctx: &str) {
        let incremental = serde_json::to_string(engine.artifacts()).unwrap();
        let scratch = serde_json::to_string(&rebuild(engine, config)).unwrap();
        assert_eq!(incremental, scratch, "artifacts diverge after {ctx}");
    }

    fn update_script() -> Vec<Update> {
        vec![
            Update::AddModel {
                name: "m0-sibling".into(),
                benchmark_curves: vec![curve_for(0.895), curve_for(0.805), curve_for(0.695)],
            },
            Update::RefreshModel {
                name: "m2".into(),
                benchmark_curves: vec![curve_for(0.91), curve_for(0.79), curve_for(0.71)],
            },
            Update::AddDataset {
                name: "d3".into(),
                model_curves: (0..7).map(|m| curve_for(0.3 + 0.07 * m as f64)).collect(),
            },
            Update::RetireModel { name: "m3".into() },
            Update::DropDataset { name: "d1".into() },
        ]
    }

    #[test]
    fn add_model_keeps_indexed_recall_live() {
        let (matrix, curves, config) = world(true);
        let mut arts = OfflineArtifacts::build(matrix, &curves, &config).unwrap();
        arts.add_model(
            &ModelAddition {
                name: "late".into(),
                benchmark_curves: vec![curve_for(0.88), curve_for(0.79), curve_for(0.68)],
            },
            &config,
        )
        .unwrap();
        let ann = arts
            .ann
            .as_ref()
            .expect("add_model on indexed artifacts must rebuild the rep index, not drop it");
        let scored = scored_cluster_set(&arts.clustering);
        assert!(
            ann.matches(&scored),
            "rebuilt rep index must cover the post-addition cluster set"
        );
    }

    #[test]
    fn delta_updates_match_rebuild_exact() {
        let (_, _, config) = world(false);
        let mut eng = engine(false);
        for update in update_script() {
            let report = eng.apply_update(&update).unwrap();
            assert_eq!(report.touched_lists, 0, "exact mode has no kNN lists");
            assert_byte_identical(&eng, &config, &format!("{} (exact)", update.op()));
        }
    }

    #[test]
    fn delta_updates_match_rebuild_indexed_exhaustive() {
        // Default ef_search (48) >= n: the localized list-patching path.
        let (_, _, config) = world(true);
        let mut eng = engine(true);
        for update in update_script() {
            eng.apply_update(&update).unwrap();
            assert_byte_identical(&eng, &config, &format!("{} (indexed)", update.op()));
        }
    }

    #[test]
    fn delta_updates_match_rebuild_indexed_beam() {
        // ef_search < n forces the beam regime: every op falls back to an
        // id-order index rebuild and must still be byte-identical.
        let (matrix, curves, mut config) = world(true);
        config.ann.ef_search = 3;
        config.ann.k = 2;
        let arts = OfflineArtifacts::build(matrix, &curves, &config).unwrap();
        let mut eng = DeltaEngine::from_curve_set(arts, &curves, config.clone()).unwrap();
        for update in update_script() {
            eng.apply_update(&update).unwrap();
            assert_byte_identical(&eng, &config, &format!("{} (beam)", update.op()));
        }
    }

    #[test]
    fn delta_reports_and_counters_account_for_the_work() {
        let (tel, sink) = Telemetry::recording();
        let mut eng = engine(true);
        let report = eng
            .apply_update_traced(
                &Update::AddModel {
                    name: "x".into(),
                    benchmark_curves: vec![curve_for(0.5), curve_for(0.5), curve_for(0.5)],
                },
                &tel,
            )
            .unwrap();
        assert_eq!(report.op, "add-model");
        assert_eq!(report.models, 7);
        assert_eq!(report.remined_rows, 1);
        assert!(report.touched_lists >= 1);
        let report = eng
            .apply_update_traced(&Update::RetireModel { name: "x".into() }, &tel)
            .unwrap();
        assert_eq!(report.remined_rows, 0);
        let counters = &sink.report().counters;
        assert_eq!(counters["incremental.updates"], 2.0);
        assert_eq!(counters["incremental.remined_rows"], 1.0);
        // The sublinear budget rule's operands are present.
        assert!(counters.contains_key("incremental.knn_k"));
        assert!(counters.contains_key("incremental.log2_m"));
    }

    #[test]
    fn delta_engine_validates_inputs() {
        let (matrix, curves, config) = world(false);
        let arts = OfflineArtifacts::build(matrix, &curves, &config).unwrap();
        // Curve/matrix disagreement is rejected.
        let mut bad: Vec<Vec<LearningCurve>> = (0..6)
            .map(|m| curves.model_curves(ModelId(m)).to_vec())
            .collect();
        bad[0][0] = curve_for(0.123);
        assert!(DeltaEngine::new(arts.clone(), bad, config.clone()).is_err());
        let mut eng = DeltaEngine::from_curve_set(arts, &curves, config).unwrap();
        assert!(eng
            .apply_update(&Update::RetireModel {
                name: "nope".into()
            })
            .is_err());
        assert!(eng
            .apply_update(&Update::AddModel {
                name: "m0".into(),
                benchmark_curves: vec![curve_for(0.5); 3],
            })
            .is_err());
        assert!(eng
            .apply_update(&Update::DropDataset {
                name: "nope".into()
            })
            .is_err());
        // Too few curves for a new dataset.
        assert!(eng
            .apply_update(&Update::AddDataset {
                name: "d9".into(),
                model_curves: vec![curve_for(0.5); 2],
            })
            .is_err());
    }
}
