//! Fine-selection (FS) — Algorithm 1, the paper's contribution.
//!
//! Successive halving guarantees only a factor-2 cut per stage. FS adds a
//! **fine-filter** step before the halving cap: each trained model's current
//! validation accuracy is matched to one of its mined convergence trends
//! (Eq. 5), yielding a predicted final test accuracy (Eq. 6). A model is
//! then removed as soon as some *other* surviving model both validates
//! better **and** is predicted to finish better by more than a configurable
//! threshold — which routinely collapses a 10-model pool to 1–2 models
//! after the very first validation (Table V: 14 epochs vs SH's 19).

use super::{
    advance_pool, finish, record_cuts, top_by_val, validate_pool, FilterEvent, FilterReason,
    SelectionOutcome,
};
use crate::budget::EpochLedger;
use crate::error::{Result, SelectionError};
use crate::fault::{Casualty, RetryPolicy};
use crate::ids::ModelId;
use crate::telemetry::Telemetry;
use crate::traits::TargetTrainer;
use crate::trend::TrendBook;
use serde::{Deserialize, Serialize};

/// Configuration for [`fine_selection`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FineSelectionConfig {
    /// Prediction-gap threshold (Table IV): model `j` is filtered only when
    /// a better-validating model `i` satisfies
    /// `pred_i − pred_j > threshold · pred_j`. `0.0` is the paper's default
    /// ("we uniformly use a 0% threshold"); larger values filter later but
    /// safer.
    pub threshold: f64,
    /// How transient substrate failures during stage training and the final
    /// test read are retried before the model is quarantined.
    #[serde(default)]
    pub retry: RetryPolicy,
}

impl Default for FineSelectionConfig {
    fn default() -> Self {
        Self {
            threshold: 0.0,
            retry: RetryPolicy::default(),
        }
    }
}

/// Run fine-selection (Algorithm 1) over `models` for `total_stages`
/// stages, consulting the offline [`TrendBook`] for final-performance
/// predictions.
pub fn fine_selection(
    trainer: &mut dyn TargetTrainer,
    models: &[ModelId],
    total_stages: usize,
    trends: &TrendBook,
    config: &FineSelectionConfig,
) -> Result<SelectionOutcome> {
    fine_selection_par(trainer, models, total_stages, trends, config, 1)
}

/// [`fine_selection`] with the per-stage training fan-out spread over
/// `threads` workers (via [`TargetTrainer::advance_many`]). Deterministic:
/// the outcome is identical to the serial run for any thread count.
pub fn fine_selection_par(
    trainer: &mut dyn TargetTrainer,
    models: &[ModelId],
    total_stages: usize,
    trends: &TrendBook,
    config: &FineSelectionConfig,
    threads: usize,
) -> Result<SelectionOutcome> {
    fine_selection_traced(
        trainer,
        models,
        total_stages,
        trends,
        config,
        threads,
        &Telemetry::disabled(),
    )
}

/// [`fine_selection_par`] with telemetry: a `select.fine` span wrapping one
/// `select.stage` span per stage, plus per-stage `fine.stage{t}.{pool,
/// dominated, halving_cut, survivors}` counters and a `fine.stages` total.
/// Counter values are identical for any thread count.
#[allow(clippy::too_many_arguments)]
pub fn fine_selection_traced(
    trainer: &mut dyn TargetTrainer,
    models: &[ModelId],
    total_stages: usize,
    trends: &TrendBook,
    config: &FineSelectionConfig,
    threads: usize,
    tel: &Telemetry,
) -> Result<SelectionOutcome> {
    validate_pool(models, total_stages)?;
    if !(0.0..=1.0).contains(&config.threshold) || !config.threshold.is_finite() {
        return Err(SelectionError::InvalidValue {
            what: "fine-selection threshold",
            value: config.threshold,
        });
    }
    if let Some(bad) = models.iter().find(|m| m.index() >= trends.n_models()) {
        return Err(SelectionError::UnknownId {
            what: "model (trend book)",
            id: bad.index(),
        });
    }

    let _span = tel.span("select.fine");
    let mut ledger = EpochLedger::new();
    let mut pool: Vec<ModelId> = models.to_vec();
    let mut pool_history = Vec::with_capacity(total_stages);
    let mut val_history = Vec::with_capacity(total_stages);
    let mut last_vals = Vec::new();
    let mut events = Vec::new();
    let mut casualties: Vec<Casualty> = Vec::new();

    for t in 0..total_stages {
        let _stage = tel.span("select.stage");
        tel.incr("fine.stages");
        pool_history.push(pool.clone());
        let adv = advance_pool(
            trainer,
            &pool,
            &mut ledger,
            threads,
            tel,
            config.retry,
            &format!("fine.stage{t}"),
        )?;
        last_vals = adv.vals;
        // Quarantined models leave the pool before any accounting: the
        // per-stage counters (and the filter-at-least-half invariant they
        // feed) describe the models that actually produced a validation.
        if !adv.casualties.is_empty() {
            tel.add_stage("fine", t, "quarantined", adv.casualties.len() as f64);
            for c in &adv.casualties {
                events.push(FilterEvent {
                    stage: t,
                    model: c.model,
                    reason: FilterReason::Quarantined,
                });
            }
            casualties.extend(adv.casualties);
            pool = last_vals.iter().map(|&(m, _)| m).collect();
        }
        tel.add_stage("fine", t, "pool", pool.len() as f64);
        tel.observe("fine.stage_pool_width", pool.len() as f64);
        val_history.push(last_vals.clone());
        if pool.len() > 1 {
            // Fine-filter: drop models dominated in (validation, prediction).
            let (survivors, dominated) =
                fine_filter_traced(&last_vals, t, trends, config.threshold);
            let n_dominated = dominated.len();
            tel.add_stage("fine", t, "dominated", n_dominated as f64);
            for (model, by) in dominated {
                events.push(FilterEvent {
                    stage: t,
                    model,
                    reason: FilterReason::DominatedBy(by),
                });
            }
            // Halving cap: never keep more than half of this stage's pool.
            let cap = (pool.len() / 2).max(1);
            let kept = if survivors.len() > cap {
                let surviving_vals: Vec<(ModelId, f64)> = last_vals
                    .iter()
                    .filter(|(m, _)| survivors.contains(m))
                    .copied()
                    .collect();
                top_by_val(&surviving_vals, cap)
            } else {
                survivors
            };
            tel.add_stage(
                "fine",
                t,
                "halving_cut",
                (pool.len() - kept.len()).saturating_sub(n_dominated) as f64,
            );
            record_cuts(&mut events, t, &pool, &kept);
            tel.add_stage("fine", t, "survivors", kept.len() as f64);
            pool = kept;
        } else {
            tel.add_stage("fine", t, "dominated", 0.0);
            tel.add_stage("fine", t, "halving_cut", 0.0);
            tel.add_stage("fine", t, "survivors", pool.len() as f64);
        }
    }
    let final_vals: Vec<(ModelId, f64)> = last_vals
        .iter()
        .filter(|(m, _)| pool.contains(m))
        .copied()
        .collect();
    finish(
        trainer,
        &final_vals,
        ledger,
        pool_history,
        val_history,
        events,
        casualties,
        config.retry,
        "fine",
        tel,
    )
}

/// The fine-filter of Algorithm 1: walking from the worst validation
/// performer upward, remove a model when some surviving model has strictly
/// better validation **and** a predicted final performance better by more
/// than `threshold · pred_removed`. Always keeps at least one model.
///
/// Returns the surviving models (deterministic order: by validation
/// descending).
pub fn fine_filter(
    vals: &[(ModelId, f64)],
    stage: usize,
    trends: &TrendBook,
    threshold: f64,
) -> Vec<ModelId> {
    fine_filter_traced(vals, stage, trends, threshold).0
}

/// [`fine_filter`] plus the audit trail: each removed model paired with the
/// surviving model that dominated it.
pub fn fine_filter_traced(
    vals: &[(ModelId, f64)],
    stage: usize,
    trends: &TrendBook,
    threshold: f64,
) -> (Vec<ModelId>, Vec<(ModelId, ModelId)>) {
    // Sort ascending by validation (worst first), ties toward higher id so
    // the final ordering prefers lower ids.
    let mut asc: Vec<(ModelId, f64, f64)> = vals
        .iter()
        .map(|&(m, v)| (m, v, trends.for_model(m).predict(stage, v)))
        .collect();
    asc.sort_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)));

    let mut removed = vec![false; asc.len()];
    let mut dominated_by = Vec::new();
    for j in 0..asc.len() {
        let (model_j, val_j, pred_j) = asc[j];
        // A model with better validation: anything later in `asc` with a
        // strictly larger val. Survivors only — a removed model cannot
        // justify removing another.
        let dominator = asc
            .iter()
            .enumerate()
            .skip(j + 1)
            .find(|(i, &(_, val_i, pred_i))| {
                !removed[*i] && val_i > val_j && pred_i - pred_j > threshold * pred_j
            })
            .map(|(_, &(m, _, _))| m);
        if let Some(by) = dominator {
            removed[j] = true;
            dominated_by.push((model_j, by));
        }
    }
    let mut survivors: Vec<ModelId> = asc
        .iter()
        .enumerate()
        .filter(|(i, _)| !removed[*i])
        .map(|(_, &(m, _, _))| m)
        .collect();
    survivors.reverse(); // best validation first
    if survivors.is_empty() {
        // Unreachable (the best-validating model is never dominated), but
        // keep the invariant explicit — and total on empty input rather
        // than panicking on runtime data.
        if let Some(&(best, _, _)) = asc.last() {
            survivors.push(best);
        }
    }
    (survivors, dominated_by)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::{CurveSet, LearningCurve};
    use crate::traits::test_support::ScriptedTrainer;
    use crate::trend::{TrendBook, TrendConfig};

    /// Offline curves that make trend prediction informative: each model has
    /// two trend groups — datasets where it reaches ~0.9 and datasets where
    /// it stalls at ~0.3. A validation near 0.9 therefore predicts ~0.9.
    fn trend_book(n_models: usize, stages: usize) -> TrendBook {
        let curves = CurveSet::from_fn(n_models, 6, |_, d| {
            if d.index() < 3 {
                LearningCurve::new(
                    (0..stages)
                        .map(|t| 0.7 + 0.2 * (t + 1) as f64 / stages as f64)
                        .collect(),
                    0.9,
                )
                .unwrap()
            } else {
                LearningCurve::new(
                    (0..stages)
                        .map(|t| 0.25 + 0.05 * (t + 1) as f64 / stages as f64)
                        .collect(),
                    0.3,
                )
                .unwrap()
            }
        })
        .unwrap();
        TrendBook::mine(
            &curves,
            stages,
            &TrendConfig {
                n_trends: 2,
                max_iter: 32,
            },
        )
        .unwrap()
    }

    #[test]
    fn filters_more_aggressively_than_halving() {
        // One clear winner (tracks the high trend), nine duds (low trend):
        // FS should collapse to 1 model after stage 1 -> 10 + 4 = 14 epochs
        // for 5 stages, the Table V figure.
        let mut curves = vec![vec![0.74, 0.78, 0.82, 0.86, 0.9]];
        for _ in 0..9 {
            curves.push(vec![0.26, 0.27, 0.28, 0.29, 0.3]);
        }
        let mut trainer = ScriptedTrainer::from_val_curves(curves);
        let models: Vec<ModelId> = (0..10).map(ModelId::from).collect();
        let book = trend_book(10, 5);
        let out = fine_selection(
            &mut trainer,
            &models,
            5,
            &book,
            &FineSelectionConfig::default(),
        )
        .unwrap();
        assert_eq!(out.winner, ModelId(0));
        assert_eq!(out.ledger.total(), 14.0);
        assert_eq!(out.pool_history[1], vec![ModelId(0)]);
    }

    #[test]
    fn never_filters_below_one() {
        let mut trainer = ScriptedTrainer::from_val_curves(vec![vec![0.3, 0.3], vec![0.31, 0.31]]);
        let book = trend_book(2, 2);
        let out = fine_selection(
            &mut trainer,
            &[ModelId(0), ModelId(1)],
            2,
            &book,
            &FineSelectionConfig::default(),
        )
        .unwrap();
        assert!(out.pool_history.iter().all(|p| !p.is_empty()));
    }

    #[test]
    fn equal_predictions_fall_back_to_halving() {
        // All models in the same trend -> no prediction gap -> the halving
        // cap alone applies, so epochs equal SH's.
        let curves: Vec<Vec<f64>> = (0..8)
            .map(|i| {
                let base = 0.70 + i as f64 * 0.01;
                vec![base, base + 0.02, base + 0.04, base + 0.06]
            })
            .collect();
        let mut trainer = ScriptedTrainer::from_val_curves(curves);
        let models: Vec<ModelId> = (0..8).map(ModelId::from).collect();
        let book = trend_book(8, 4);
        let out = fine_selection(
            &mut trainer,
            &models,
            4,
            &book,
            &FineSelectionConfig::default(),
        )
        .unwrap();
        // SH schedule for 8 models / 4 stages: 8 + 4 + 2 + 1 = 15.
        assert_eq!(out.ledger.total(), 15.0);
        assert_eq!(out.winner, ModelId(7));
    }

    #[test]
    fn threshold_delays_filtering() {
        // Trends predicting 0.80 vs 0.90: a relative gap of 12.5%, filtered
        // at 0% threshold but kept at a 20% threshold.
        let mk = |val: f64, test: f64| LearningCurve::new(vec![val], test).unwrap();
        let curves = CurveSet::new(
            2,
            4,
            vec![
                mk(0.70, 0.90),
                mk(0.72, 0.90),
                mk(0.40, 0.80),
                mk(0.42, 0.80),
                // Second model: identical trend structure.
                mk(0.70, 0.90),
                mk(0.72, 0.90),
                mk(0.40, 0.80),
                mk(0.42, 0.80),
            ],
        )
        .unwrap();
        let book = TrendBook::mine(
            &curves,
            1,
            &TrendConfig {
                n_trends: 2,
                max_iter: 32,
            },
        )
        .unwrap();
        // Model 0 tracks the high trend (pred 0.90), model 1 the low
        // (pred 0.80); model 0 also validates better.
        let vals = vec![(ModelId(0), 0.71), (ModelId(1), 0.41)];
        let strict = fine_filter(&vals, 0, &book, 0.0);
        assert_eq!(strict, vec![ModelId(0)]);
        let lenient = fine_filter(&vals, 0, &book, 0.2);
        assert_eq!(lenient.len(), 2);
    }

    #[test]
    fn fine_filter_keeps_undominated_models() {
        // Model 1 validates worse but predicts better -> not dominated.
        let book = trend_book(2, 5);
        // val 0.88 matches the high trend (~0.9 pred); val 0.86 also high
        // trend -> equal predictions, no strict dominance.
        let vals = vec![(ModelId(0), 0.88), (ModelId(1), 0.86)];
        let survivors = fine_filter(&vals, 0, &book, 0.0);
        assert_eq!(survivors.len(), 2);
        assert_eq!(survivors[0], ModelId(0));
    }

    #[test]
    fn removed_model_cannot_dominate_others() {
        // Three models: best dominates middle; middle would dominate worst,
        // but once the middle is removed only the best's prediction counts.
        // Either way the worst is dominated by the best here; the assertion
        // is that the walk is over survivors and keeps exactly the best.
        // (0.45 sits strictly closer to the low trend's mean validation —
        // an exact midpoint would tie and match the high trend.)
        let vals = vec![(ModelId(0), 0.9), (ModelId(1), 0.45), (ModelId(2), 0.28)];
        let book = trend_book(3, 5);
        let survivors = fine_filter(&vals, 0, &book, 0.0);
        assert_eq!(survivors, vec![ModelId(0)]);
    }

    #[test]
    fn validates_configuration() {
        let mut trainer = ScriptedTrainer::from_val_curves(vec![vec![0.5]]);
        let book = trend_book(1, 1);
        assert!(fine_selection(
            &mut trainer,
            &[ModelId(0)],
            1,
            &book,
            &FineSelectionConfig {
                threshold: -0.1,
                ..Default::default()
            },
        )
        .is_err());
        assert!(fine_selection(
            &mut trainer,
            &[ModelId(5)],
            1,
            &book,
            &FineSelectionConfig::default(),
        )
        .is_err());
    }

    #[test]
    fn events_explain_every_removal() {
        let mut curves = vec![vec![0.74, 0.78, 0.82, 0.86, 0.9]];
        for _ in 0..9 {
            curves.push(vec![0.26, 0.27, 0.28, 0.29, 0.3]);
        }
        let mut trainer = ScriptedTrainer::from_val_curves(curves);
        let models: Vec<ModelId> = (0..10).map(ModelId::from).collect();
        let book = trend_book(10, 5);
        let out = fine_selection(
            &mut trainer,
            &models,
            5,
            &book,
            &FineSelectionConfig::default(),
        )
        .unwrap();
        // Nine removals, all at stage 0, all dominated by the winner.
        assert_eq!(out.events.len(), 9);
        for e in &out.events {
            assert_eq!(e.stage, 0);
            assert_eq!(
                e.reason,
                crate::select::FilterReason::DominatedBy(ModelId(0)),
                "event {e:?}"
            );
        }
        // Every model that disappeared from the pool has an event.
        for &m in &models {
            let in_final = out.pool_history.last().unwrap().contains(&m);
            let has_event = out.events.iter().any(|e| e.model == m);
            assert!(in_final ^ has_event, "model {m}");
        }
    }

    #[test]
    fn winner_fully_trained_after_early_collapse() {
        let mut curves = vec![vec![0.8, 0.84, 0.88]];
        curves.push(vec![0.27, 0.28, 0.29]);
        let mut trainer = ScriptedTrainer::from_val_curves(curves);
        let book = trend_book(2, 3);
        let out = fine_selection(
            &mut trainer,
            &[ModelId(0), ModelId(1)],
            3,
            &book,
            &FineSelectionConfig::default(),
        )
        .unwrap();
        assert_eq!(out.winner, ModelId(0));
        assert_eq!(trainer.trained[0], 3);
        assert_eq!(trainer.trained[1], 1);
    }
}
