//! Successive halving (SH) — the state-of-the-art baseline (paper §IV-B,
//! citing Jamieson & Talwalkar 2016 and its Palette/SHiFT adoptions).
//!
//! Each stage trains every surviving model for one validation interval,
//! then discards the bottom half (`keep = ⌊n/2⌋`, never below 1). The run
//! lasts exactly `total_stages` stages, so the eventual winner ends fully
//! trained. With `|M|` initial models this costs
//! `Σ_t ⌊|M| / 2^t⌋` epochs — e.g. 10 models × 5 stages →
//! `10 + 5 + 2 + 1 + 1 = 19` epochs, matching Table V.

use super::{
    advance_pool, finish, record_cuts, top_by_val, validate_pool, FilterEvent, FilterReason,
    SelectionOutcome,
};

use crate::budget::EpochLedger;
use crate::error::Result;
use crate::fault::{Casualty, RetryPolicy};
use crate::ids::ModelId;
use crate::telemetry::Telemetry;
use crate::traits::TargetTrainer;

/// Run successive halving over `models` for `total_stages` stages.
pub fn successive_halving(
    trainer: &mut dyn TargetTrainer,
    models: &[ModelId],
    total_stages: usize,
) -> Result<SelectionOutcome> {
    successive_halving_par(trainer, models, total_stages, 1)
}

/// [`successive_halving`] with the per-stage training fan-out spread over
/// `threads` workers (via [`TargetTrainer::advance_many`]). Deterministic:
/// the outcome is identical to the serial run for any thread count.
pub fn successive_halving_par(
    trainer: &mut dyn TargetTrainer,
    models: &[ModelId],
    total_stages: usize,
    threads: usize,
) -> Result<SelectionOutcome> {
    successive_halving_traced(
        trainer,
        models,
        total_stages,
        threads,
        &Telemetry::disabled(),
    )
}

/// [`successive_halving_par`] with telemetry: a `select.halving` span
/// wrapping one `select.stage` span per stage, plus per-stage
/// `sh.stage{t}.{pool, survivors}` counters and an `sh.stages` total.
/// Counter values are identical for any thread count.
pub fn successive_halving_traced(
    trainer: &mut dyn TargetTrainer,
    models: &[ModelId],
    total_stages: usize,
    threads: usize,
    tel: &Telemetry,
) -> Result<SelectionOutcome> {
    validate_pool(models, total_stages)?;
    let _span = tel.span("select.halving");
    let retry = RetryPolicy::default();
    let mut ledger = EpochLedger::new();
    let mut pool: Vec<ModelId> = models.to_vec();
    let mut pool_history = Vec::with_capacity(total_stages);
    let mut val_history = Vec::with_capacity(total_stages);
    let mut last_vals = Vec::new();
    let mut events = Vec::new();
    let mut casualties: Vec<Casualty> = Vec::new();

    for t in 0..total_stages {
        let _stage = tel.span("select.stage");
        tel.incr("sh.stages");
        pool_history.push(pool.clone());
        let adv = advance_pool(
            trainer,
            &pool,
            &mut ledger,
            threads,
            tel,
            retry,
            &format!("sh.stage{t}"),
        )?;
        last_vals = adv.vals;
        if !adv.casualties.is_empty() {
            tel.add_stage("sh", t, "quarantined", adv.casualties.len() as f64);
            for c in &adv.casualties {
                events.push(FilterEvent {
                    stage: t,
                    model: c.model,
                    reason: FilterReason::Quarantined,
                });
            }
            casualties.extend(adv.casualties);
            pool = last_vals.iter().map(|&(m, _)| m).collect();
        }
        tel.add_stage("sh", t, "pool", pool.len() as f64);
        tel.observe("sh.stage_pool_width", pool.len() as f64);
        val_history.push(last_vals.clone());
        if pool.len() > 1 {
            let kept = top_by_val(&last_vals, pool.len() / 2);
            record_cuts(&mut events, t, &pool, &kept);
            pool = kept;
        }
        tel.add_stage("sh", t, "survivors", pool.len() as f64);
    }
    // The winner is judged among the models trained in the final stage.
    let final_vals: Vec<(ModelId, f64)> = last_vals
        .iter()
        .filter(|(m, _)| pool.contains(m))
        .copied()
        .collect();
    finish(
        trainer,
        &final_vals,
        ledger,
        pool_history,
        val_history,
        events,
        casualties,
        retry,
        "sh",
        tel,
    )
}

/// Generalised successive halving with reduction factor `eta`: each stage
/// keeps `⌈n / eta⌉` models (`eta = 2.0` recovers classic halving up to
/// rounding; the paper's variant uses `⌊n / 2⌋`, kept separately above for
/// exact Table V parity). Larger `eta` is cheaper but riskier — the
/// standard knob in Hyperband-style methods.
pub fn successive_halving_eta(
    trainer: &mut dyn TargetTrainer,
    models: &[ModelId],
    total_stages: usize,
    eta: f64,
) -> Result<SelectionOutcome> {
    validate_pool(models, total_stages)?;
    if eta <= 1.0 || eta.is_nan() || !eta.is_finite() {
        return Err(crate::error::SelectionError::InvalidConfig(format!(
            "eta must be a finite value > 1 (got {eta})"
        )));
    }
    let mut ledger = EpochLedger::new();
    let mut pool: Vec<ModelId> = models.to_vec();
    let mut pool_history = Vec::with_capacity(total_stages);
    let mut val_history = Vec::with_capacity(total_stages);
    let mut last_vals = Vec::new();
    let mut events = Vec::new();

    let retry = RetryPolicy::default();
    let tel = Telemetry::disabled();
    let mut casualties: Vec<Casualty> = Vec::new();
    for t in 0..total_stages {
        pool_history.push(pool.clone());
        let adv = advance_pool(
            trainer,
            &pool,
            &mut ledger,
            1,
            &tel,
            retry,
            &format!("sh-eta.stage{t}"),
        )?;
        last_vals = adv.vals;
        val_history.push(last_vals.clone());
        if !adv.casualties.is_empty() {
            for c in &adv.casualties {
                events.push(FilterEvent {
                    stage: t,
                    model: c.model,
                    reason: FilterReason::Quarantined,
                });
            }
            casualties.extend(adv.casualties);
            pool = last_vals.iter().map(|&(m, _)| m).collect();
        }
        if pool.len() > 1 {
            let keep = ((pool.len() as f64 / eta).ceil() as usize).clamp(1, pool.len() - 1);
            let kept = top_by_val(&last_vals, keep);
            record_cuts(&mut events, t, &pool, &kept);
            pool = kept;
        }
    }
    let final_vals: Vec<(ModelId, f64)> = last_vals
        .iter()
        .filter(|(m, _)| pool.contains(m))
        .copied()
        .collect();
    finish(
        trainer,
        &final_vals,
        ledger,
        pool_history,
        val_history,
        events,
        casualties,
        retry,
        "sh-eta",
        &tel,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::test_support::ScriptedTrainer;

    /// Monotone curves where model i plateaus at (i+1)/n.
    fn staircase(n: usize, stages: usize) -> ScriptedTrainer {
        let curves = (0..n)
            .map(|i| {
                let ceiling = (i + 1) as f64 / n as f64;
                (0..stages)
                    .map(|t| ceiling * (t + 1) as f64 / stages as f64)
                    .collect()
            })
            .collect();
        ScriptedTrainer::from_val_curves(curves)
    }

    #[test]
    fn reproduces_paper_epoch_counts() {
        // Table V: SH with 10 models / 5 stages = 19 epochs; 40/5 = 77;
        // 10/4 = 18; 30/4 = 55.
        for (n, stages, expected) in [(10, 5, 19.0), (40, 5, 77.0), (10, 4, 18.0), (30, 4, 55.0)] {
            let mut trainer = staircase(n, stages);
            let models: Vec<ModelId> = (0..n).map(ModelId::from).collect();
            let out = successive_halving(&mut trainer, &models, stages).unwrap();
            assert_eq!(out.ledger.total(), expected, "n={n} stages={stages}");
        }
    }

    #[test]
    fn selects_the_dominant_model() {
        let mut trainer = staircase(8, 4);
        let models: Vec<ModelId> = (0..8).map(ModelId::from).collect();
        let out = successive_halving(&mut trainer, &models, 4).unwrap();
        assert_eq!(out.winner, ModelId(7));
    }

    #[test]
    fn winner_is_fully_trained() {
        let mut trainer = staircase(6, 5);
        let models: Vec<ModelId> = (0..6).map(ModelId::from).collect();
        let out = successive_halving(&mut trainer, &models, 5).unwrap();
        assert_eq!(trainer.trained[out.winner.index()], 5);
    }

    #[test]
    fn pool_shrinks_by_half_each_stage() {
        let mut trainer = staircase(16, 5);
        let models: Vec<ModelId> = (0..16).map(ModelId::from).collect();
        let out = successive_halving(&mut trainer, &models, 5).unwrap();
        let sizes: Vec<usize> = out.pool_history.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![16, 8, 4, 2, 1]);
    }

    #[test]
    fn can_drop_a_late_bloomer() {
        // Model 1 starts weak but would end strongest — SH's known failure
        // mode, which Fig. 7 contrasts with FS.
        let mut trainer =
            ScriptedTrainer::from_val_curves(vec![vec![0.6, 0.62, 0.63], vec![0.2, 0.7, 0.95]]);
        let out = successive_halving(&mut trainer, &[ModelId(0), ModelId(1)], 3).unwrap();
        assert_eq!(out.winner, ModelId(0));
        assert!(out.winner_test < 0.95);
    }

    #[test]
    fn single_model_trains_to_completion() {
        let mut trainer = ScriptedTrainer::from_val_curves(vec![vec![0.4, 0.5, 0.6]]);
        let out = successive_halving(&mut trainer, &[ModelId(0)], 3).unwrap();
        assert_eq!(out.winner, ModelId(0));
        assert_eq!(out.ledger.total(), 3.0);
        assert_eq!(out.winner_val, 0.6);
    }

    #[test]
    fn validates_input() {
        let mut trainer = ScriptedTrainer::from_val_curves(vec![vec![0.5]]);
        assert!(successive_halving(&mut trainer, &[], 3).is_err());
        assert!(successive_halving(&mut trainer, &[ModelId(0)], 0).is_err());
    }

    #[test]
    fn halving_events_are_all_cuts() {
        let mut trainer = staircase(8, 3);
        let models: Vec<ModelId> = (0..8).map(ModelId::from).collect();
        let out = successive_halving(&mut trainer, &models, 3).unwrap();
        // 8 -> 4 -> 2: removals 4 + 2 = 6 (the last stage does not halve a
        // 2-model pool down further within 3 stages... it does: 2 -> 1).
        assert_eq!(out.events.len(), 7);
        assert!(out
            .events
            .iter()
            .all(|e| e.reason == crate::select::FilterReason::HalvingCut));
        // Stage 0 removed exactly the worst four.
        let stage0: Vec<usize> = out
            .events
            .iter()
            .filter(|e| e.stage == 0)
            .map(|e| e.model.index())
            .collect();
        assert_eq!(stage0.len(), 4);
        assert!(stage0.iter().all(|&m| m < 4));
    }

    #[test]
    fn eta_variant_shrinks_faster_with_larger_eta() {
        let models: Vec<ModelId> = (0..27).map(ModelId::from).collect();
        let mut t2 = staircase(27, 4);
        let e2 = successive_halving_eta(&mut t2, &models, 4, 2.0).unwrap();
        let mut t3 = staircase(27, 4);
        let e3 = successive_halving_eta(&mut t3, &models, 4, 3.0).unwrap();
        assert!(e3.ledger.total() < e2.ledger.total());
        // eta = 3 on 27 models: 27 + 9 + 3 + 1 = 40.
        assert_eq!(e3.ledger.total(), 40.0);
        assert_eq!(e3.winner, ModelId(26));
    }

    #[test]
    fn eta_validates() {
        let mut trainer = staircase(4, 2);
        let models: Vec<ModelId> = (0..4).map(ModelId::from).collect();
        assert!(successive_halving_eta(&mut trainer, &models, 2, 1.0).is_err());
        assert!(successive_halving_eta(&mut trainer, &models, 2, f64::NAN).is_err());
        assert!(successive_halving_eta(&mut trainer, &models, 2, f64::INFINITY).is_err());
    }
}
