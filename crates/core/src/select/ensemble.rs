//! Ensemble fine-selection (paper §VI: "we can also combine multi-model
//! selection methods in the fine-selection phase to achieve high ensemble
//! performance").
//!
//! Identical to Algorithm 1 except the pool never shrinks below `E` models:
//! all `E` survivors train to the full stage budget and are returned ranked
//! by final validation, ready to be ensembled downstream.

use super::fine::{fine_filter, FineSelectionConfig};
use super::{advance_pool, top_by_val, validate_pool};
use crate::budget::EpochLedger;
use crate::error::{Result, SelectionError};
use crate::ids::ModelId;
use crate::traits::TargetTrainer;
use crate::trend::TrendBook;
use serde::{Deserialize, Serialize};

/// One fully-trained ensemble member.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnsembleMember {
    /// The model.
    pub model: ModelId,
    /// Final validation accuracy.
    pub val: f64,
    /// Final test accuracy.
    pub test: f64,
}

/// Outcome of an ensemble fine-selection run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleOutcome {
    /// The surviving models, best validation first, all trained to the full
    /// stage budget.
    pub members: Vec<EnsembleMember>,
    /// Epoch-equivalents spent.
    pub ledger: EpochLedger,
    /// Candidate pool at the start of each stage.
    pub pool_history: Vec<Vec<ModelId>>,
}

/// Run fine-selection that keeps (at least) the top `ensemble_size` models
/// alive to full training.
pub fn fine_selection_ensemble(
    trainer: &mut dyn TargetTrainer,
    models: &[ModelId],
    total_stages: usize,
    trends: &TrendBook,
    config: &FineSelectionConfig,
    ensemble_size: usize,
) -> Result<EnsembleOutcome> {
    validate_pool(models, total_stages)?;
    if ensemble_size == 0 || ensemble_size > models.len() {
        return Err(SelectionError::InvalidConfig(format!(
            "ensemble_size must be in 1..={} (got {ensemble_size})",
            models.len()
        )));
    }

    let mut ledger = EpochLedger::new();
    let mut pool: Vec<ModelId> = models.to_vec();
    let mut pool_history = Vec::with_capacity(total_stages);
    let mut last_vals = Vec::new();
    let tel = crate::telemetry::Telemetry::disabled();

    for t in 0..total_stages {
        pool_history.push(pool.clone());
        let adv = advance_pool(
            trainer,
            &pool,
            &mut ledger,
            1,
            &tel,
            config.retry,
            &format!("ensemble.stage{t}"),
        )?;
        last_vals = adv.vals;
        if !adv.casualties.is_empty() {
            pool = last_vals.iter().map(|&(m, _)| m).collect();
        }
        if pool.len() > ensemble_size {
            let survivors = fine_filter(&last_vals, t, trends, config.threshold);
            // Halving cap, floored at the ensemble size.
            let cap = (pool.len() / 2).max(ensemble_size);
            pool = if survivors.len() > cap {
                let surviving_vals: Vec<(ModelId, f64)> = last_vals
                    .iter()
                    .filter(|(m, _)| survivors.contains(m))
                    .copied()
                    .collect();
                top_by_val(&surviving_vals, cap)
            } else if survivors.len() < ensemble_size {
                // The filter over-pruned below the requested size: refill
                // with the next-best validation performers.
                top_by_val(&last_vals, ensemble_size)
            } else {
                survivors
            };
        }
    }

    let mut members: Vec<EnsembleMember> = Vec::with_capacity(pool.len());
    for &(m, val) in last_vals.iter().filter(|(m, _)| pool.contains(m)) {
        members.push(EnsembleMember {
            model: m,
            val,
            test: trainer.test(m)?,
        });
    }
    members.sort_by(|a, b| b.val.total_cmp(&a.val).then(a.model.cmp(&b.model)));
    Ok(EnsembleOutcome {
        members,
        ledger,
        pool_history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::{CurveSet, LearningCurve};
    use crate::traits::test_support::ScriptedTrainer;
    use crate::trend::{TrendBook, TrendConfig};

    fn trend_book(n_models: usize) -> TrendBook {
        let curves = CurveSet::from_fn(n_models, 4, |_, d| {
            let f = if d.index() < 2 { 0.9 } else { 0.3 };
            LearningCurve::new(vec![f * 0.8, f * 0.9, f], f).unwrap()
        })
        .unwrap();
        TrendBook::mine(
            &curves,
            3,
            &TrendConfig {
                n_trends: 2,
                max_iter: 32,
            },
        )
        .unwrap()
    }

    fn staircase(n: usize, stages: usize) -> ScriptedTrainer {
        ScriptedTrainer::from_val_curves(
            (0..n)
                .map(|i| {
                    let ceiling = 0.3 + 0.6 * (i + 1) as f64 / n as f64;
                    (0..stages)
                        .map(|t| ceiling * (t + 1) as f64 / stages as f64)
                        .collect()
                })
                .collect(),
        )
    }

    #[test]
    fn returns_requested_ensemble_fully_trained() {
        let mut trainer = staircase(8, 4);
        let models: Vec<ModelId> = (0..8).map(ModelId::from).collect();
        let book = trend_book(8);
        let out = fine_selection_ensemble(
            &mut trainer,
            &models,
            4,
            &book,
            &FineSelectionConfig::default(),
            3,
        )
        .unwrap();
        assert_eq!(out.members.len(), 3);
        // Best three models by ceiling are 7, 6, 5.
        let ids: Vec<usize> = out.members.iter().map(|m| m.model.index()).collect();
        assert_eq!(ids, vec![7, 6, 5]);
        for m in &out.members {
            assert_eq!(trainer.trained[m.model.index()], 4);
            assert!(m.val > 0.0 && m.test > 0.0);
        }
        // Members sorted by validation descending.
        assert!(out.members.windows(2).all(|w| w[0].val >= w[1].val));
    }

    #[test]
    fn ensemble_of_one_matches_single_selection() {
        let mut trainer = staircase(6, 3);
        let models: Vec<ModelId> = (0..6).map(ModelId::from).collect();
        let book = trend_book(6);
        let out = fine_selection_ensemble(
            &mut trainer,
            &models,
            3,
            &book,
            &FineSelectionConfig::default(),
            1,
        )
        .unwrap();
        assert_eq!(out.members.len(), 1);
        assert_eq!(out.members[0].model, ModelId(5));
    }

    #[test]
    fn costs_at_most_halving_with_floor() {
        let mut trainer = staircase(10, 5);
        let models: Vec<ModelId> = (0..10).map(ModelId::from).collect();
        let book = trend_book(10);
        let out = fine_selection_ensemble(
            &mut trainer,
            &models,
            5,
            &book,
            &FineSelectionConfig::default(),
            3,
        )
        .unwrap();
        // Upper bound: halving with floor 3 -> 10 + 5 + 3 + 3 + 3 = 24.
        assert!(out.ledger.total() <= 24.0, "epochs {}", out.ledger.total());
        assert!(out.members.len() == 3);
    }

    #[test]
    fn validates_ensemble_size() {
        let mut trainer = staircase(4, 2);
        let models: Vec<ModelId> = (0..4).map(ModelId::from).collect();
        let book = trend_book(4);
        for bad in [0usize, 5] {
            assert!(fine_selection_ensemble(
                &mut trainer,
                &models,
                2,
                &book,
                &FineSelectionConfig::default(),
                bad,
            )
            .is_err());
        }
    }

    #[test]
    fn pool_never_below_ensemble_size() {
        let mut trainer = staircase(12, 5);
        let models: Vec<ModelId> = (0..12).map(ModelId::from).collect();
        let book = trend_book(12);
        let out = fine_selection_ensemble(
            &mut trainer,
            &models,
            5,
            &book,
            &FineSelectionConfig::default(),
            4,
        )
        .unwrap();
        assert!(out.pool_history.iter().all(|p| p.len() >= 4));
    }
}
