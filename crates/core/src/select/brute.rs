//! Brute-force search (BF): fine-tune every candidate for the full stage
//! budget and keep the best validation performer. The reference point for
//! every speedup the paper reports (`|M| · T` epochs).

use super::{advance_pool, finish, validate_pool, SelectionOutcome};
use crate::budget::EpochLedger;
use crate::error::Result;
use crate::fault::{Casualty, RetryPolicy};
use crate::ids::ModelId;
use crate::telemetry::Telemetry;
use crate::traits::TargetTrainer;

/// Run brute-force selection over `models` for `total_stages` stages.
pub fn brute_force(
    trainer: &mut dyn TargetTrainer,
    models: &[ModelId],
    total_stages: usize,
) -> Result<SelectionOutcome> {
    brute_force_par(trainer, models, total_stages, 1)
}

/// [`brute_force`] with the per-stage training fan-out spread over
/// `threads` workers (via [`TargetTrainer::advance_many`]). Deterministic:
/// the outcome is identical to the serial run for any thread count.
pub fn brute_force_par(
    trainer: &mut dyn TargetTrainer,
    models: &[ModelId],
    total_stages: usize,
    threads: usize,
) -> Result<SelectionOutcome> {
    brute_force_traced(
        trainer,
        models,
        total_stages,
        threads,
        &Telemetry::disabled(),
    )
}

/// [`brute_force_par`] with telemetry: a `select.brute` span wrapping one
/// `select.stage` span per stage, plus per-stage `bf.stage{t}.pool` counters
/// and a `bf.stages` total. Counter values are identical for any thread
/// count.
pub fn brute_force_traced(
    trainer: &mut dyn TargetTrainer,
    models: &[ModelId],
    total_stages: usize,
    threads: usize,
    tel: &Telemetry,
) -> Result<SelectionOutcome> {
    validate_pool(models, total_stages)?;
    let _span = tel.span("select.brute");
    let retry = RetryPolicy::default();
    let mut ledger = EpochLedger::new();
    let mut pool: Vec<ModelId> = models.to_vec();
    let mut pool_history = Vec::with_capacity(total_stages);
    let mut val_history = Vec::with_capacity(total_stages);
    let mut last_vals = Vec::new();
    let mut casualties: Vec<Casualty> = Vec::new();
    for t in 0..total_stages {
        let _stage = tel.span("select.stage");
        tel.incr("bf.stages");
        pool_history.push(pool.clone());
        let adv = advance_pool(
            trainer,
            &pool,
            &mut ledger,
            threads,
            tel,
            retry,
            &format!("bf.stage{t}"),
        )?;
        last_vals = adv.vals;
        if !adv.casualties.is_empty() {
            tel.add_stage("bf", t, "quarantined", adv.casualties.len() as f64);
            casualties.extend(adv.casualties);
            pool = last_vals.iter().map(|&(m, _)| m).collect();
        }
        tel.add_stage("bf", t, "pool", pool.len() as f64);
        tel.observe("bf.stage_pool_width", pool.len() as f64);
        val_history.push(last_vals.clone());
    }
    finish(
        trainer,
        &last_vals,
        ledger,
        pool_history,
        val_history,
        Vec::new(),
        casualties,
        retry,
        "bf",
        tel,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::test_support::ScriptedTrainer;

    #[test]
    fn trains_everything_fully() {
        let mut trainer = ScriptedTrainer::from_val_curves(vec![
            vec![0.2, 0.4, 0.6],
            vec![0.5, 0.7, 0.9],
            vec![0.3, 0.3, 0.3],
        ]);
        let models: Vec<ModelId> = (0..3).map(ModelId::from).collect();
        let out = brute_force(&mut trainer, &models, 3).unwrap();
        assert_eq!(out.winner, ModelId(1));
        assert_eq!(out.winner_val, 0.9);
        assert_eq!(out.winner_test, 0.9);
        assert_eq!(out.ledger.total(), 9.0);
        assert!(trainer.trained.iter().all(|&t| t == 3));
        assert_eq!(out.pool_history.len(), 3);
        assert_eq!(out.val_history[0].len(), 3);
    }

    #[test]
    fn epoch_count_is_m_times_t() {
        let curves: Vec<Vec<f64>> = (0..10).map(|i| vec![0.1 * i as f64 / 2.0; 5]).collect();
        let mut trainer = ScriptedTrainer::from_val_curves(curves);
        let models: Vec<ModelId> = (0..10).map(ModelId::from).collect();
        let out = brute_force(&mut trainer, &models, 5).unwrap();
        assert_eq!(out.ledger.total(), 50.0); // Table V: BF NLP top-10 = 50
    }

    #[test]
    fn single_model_pool() {
        let mut trainer = ScriptedTrainer::from_val_curves(vec![vec![0.5, 0.6]]);
        let out = brute_force(&mut trainer, &[ModelId(0)], 2).unwrap();
        assert_eq!(out.winner, ModelId(0));
        assert_eq!(out.ledger.total(), 2.0);
    }

    #[test]
    fn rejects_invalid_input() {
        let mut trainer = ScriptedTrainer::from_val_curves(vec![vec![0.5]]);
        assert!(brute_force(&mut trainer, &[], 1).is_err());
        assert!(brute_force(&mut trainer, &[ModelId(0)], 0).is_err());
    }
}
