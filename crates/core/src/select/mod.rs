//! The fine-selection phase and its baselines (paper §IV, §V-C).
//!
//! Three selectors share one interface: they drive a
//! [`crate::traits::TargetTrainer`] over a pool of candidate
//! models for a fixed number of stages and return the surviving model plus
//! an epoch ledger:
//!
//! * [`brute::brute_force`] — fine-tune everything to completion (BF);
//! * [`halving::successive_halving`] — keep the top half after every stage
//!   (SH, the state-of-the-art baseline);
//! * [`fine::fine_selection`] — SH plus convergence-trend prediction to
//!   filter *more* than half per stage (FS, Algorithm 1 — the paper's
//!   contribution);
//! * [`ensemble::fine_selection_ensemble`] — FS that keeps the top-E
//!   models alive for downstream ensembling (the §VI extension hook).

pub mod brute;
pub mod ensemble;
pub mod fine;
pub mod halving;

use crate::budget::EpochLedger;
use crate::error::{Result, SelectionError};
use crate::ids::ModelId;
use crate::telemetry::Telemetry;
use crate::traits::TargetTrainer;
use serde::{Deserialize, Serialize};

/// Why a model was removed from the candidate pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterReason {
    /// The fine filter removed it: another surviving model had strictly
    /// better validation *and* a better trend-predicted final performance.
    DominatedBy(ModelId),
    /// The halving cap removed it: lowest validation among survivors.
    HalvingCut,
}

/// One removal decision, for selection explainability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterEvent {
    /// Stage (0-based) after whose validation the model was removed.
    pub stage: usize,
    /// The removed model.
    pub model: ModelId,
    /// Why.
    pub reason: FilterReason,
}

/// Outcome of one selection run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionOutcome {
    /// The selected model.
    pub winner: ModelId,
    /// Its validation accuracy at the end of the run.
    pub winner_val: f64,
    /// Its test accuracy at the end of the run — what Fig. 7 / Table VI
    /// report.
    pub winner_test: f64,
    /// Epoch-equivalents spent.
    pub ledger: EpochLedger,
    /// Candidate pool at the **start** of each stage.
    pub pool_history: Vec<Vec<ModelId>>,
    /// `(model, validation accuracy)` pairs recorded at each stage, for
    /// every model trained in that stage.
    pub val_history: Vec<Vec<(ModelId, f64)>>,
    /// Every removal decision, in order — the audit trail of the run.
    pub events: Vec<FilterEvent>,
}

/// Shared input validation for the selectors.
pub(crate) fn validate_pool(models: &[ModelId], total_stages: usize) -> Result<()> {
    if models.is_empty() {
        return Err(SelectionError::Empty("candidate models"));
    }
    if total_stages == 0 {
        return Err(SelectionError::InvalidConfig(
            "total_stages must be >= 1".into(),
        ));
    }
    let mut sorted: Vec<usize> = models.iter().map(|m| m.index()).collect();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != models.len() {
        return Err(SelectionError::InvalidConfig(
            "candidate models must be distinct".into(),
        ));
    }
    Ok(())
}

/// Train every model in `pool` for one stage, recording validations and
/// charging the ledger. With `threads > 1` the per-model stage fan-out is
/// delegated to [`TargetTrainer::advance_many`], which substrates override
/// with a deterministic parallel implementation; the ledger is charged
/// identically either way.
///
/// Telemetry: opens a `select.stage.train` span around the fan-out, adds
/// the epochs charged this stage to the `select.train_epochs` counter, and
/// observes the fan-out's wall-clock into the `select.stage_train_us`
/// histogram (summary-only — never compared across runs).
pub(crate) fn advance_pool(
    trainer: &mut dyn TargetTrainer,
    pool: &[ModelId],
    ledger: &mut EpochLedger,
    threads: usize,
    tel: &Telemetry,
) -> Result<Vec<(ModelId, f64)>> {
    let _span = tel.span("select.stage.train");
    // Only read the clock when a sink is attached — a disabled handle
    // must stay free of clock syscalls on the hot path.
    let started = tel.enabled().then(std::time::Instant::now);
    let vals = trainer.advance_many(pool, threads)?;
    if let Some(t0) = started {
        tel.observe("select.stage_train_us", t0.elapsed().as_micros() as f64);
    }
    for _ in pool {
        ledger.charge_training(trainer.epochs_per_stage());
    }
    tel.add(
        "select.train_epochs",
        trainer.epochs_per_stage() * pool.len() as f64,
    );
    Ok(pool.iter().copied().zip(vals).collect())
}

/// Final bookkeeping shared by every selector: the winner is the pool's best
/// validation performer; its test accuracy is read at its current state.
pub(crate) fn finish(
    trainer: &mut dyn TargetTrainer,
    last_vals: &[(ModelId, f64)],
    ledger: EpochLedger,
    pool_history: Vec<Vec<ModelId>>,
    val_history: Vec<Vec<(ModelId, f64)>>,
    events: Vec<FilterEvent>,
) -> Result<SelectionOutcome> {
    let &(winner, winner_val) = last_vals
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
        .ok_or(SelectionError::Empty("final validation pool"))?;
    let winner_test = trainer.test(winner)?;
    Ok(SelectionOutcome {
        winner,
        winner_val,
        winner_test,
        ledger,
        pool_history,
        val_history,
        events,
    })
}

/// Record `HalvingCut` events for every model in `before` missing from
/// `after`, except those already removed for another reason this stage.
pub(crate) fn record_cuts(
    events: &mut Vec<FilterEvent>,
    stage: usize,
    before: &[ModelId],
    after: &[ModelId],
) {
    for &m in before {
        if !after.contains(&m) && !events.iter().any(|e| e.stage == stage && e.model == m) {
            events.push(FilterEvent {
                stage,
                model: m,
                reason: FilterReason::HalvingCut,
            });
        }
    }
}

/// Keep the `keep` best-validation models from `vals` (stable on ties by
/// preferring lower model ids), preserving no particular order guarantee
/// beyond determinism.
pub(crate) fn top_by_val(vals: &[(ModelId, f64)], keep: usize) -> Vec<ModelId> {
    let mut sorted = vals.to_vec();
    sorted.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    sorted.truncate(keep.max(1));
    sorted.into_iter().map(|(m, _)| m).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_pool_rules() {
        assert!(validate_pool(&[], 5).is_err());
        assert!(validate_pool(&[ModelId(0)], 0).is_err());
        assert!(validate_pool(&[ModelId(0), ModelId(0)], 5).is_err());
        assert!(validate_pool(&[ModelId(0), ModelId(1)], 5).is_ok());
    }

    #[test]
    fn top_by_val_orders_and_truncates() {
        let vals = vec![(ModelId(0), 0.5), (ModelId(1), 0.9), (ModelId(2), 0.7)];
        assert_eq!(top_by_val(&vals, 2), vec![ModelId(1), ModelId(2)]);
        // keep=0 still keeps one model.
        assert_eq!(top_by_val(&vals, 0), vec![ModelId(1)]);
    }

    #[test]
    fn top_by_val_tie_prefers_lower_id() {
        let vals = vec![(ModelId(5), 0.5), (ModelId(1), 0.5)];
        assert_eq!(top_by_val(&vals, 1), vec![ModelId(1)]);
    }
}
