//! The fine-selection phase and its baselines (paper §IV, §V-C).
//!
//! Three selectors share one interface: they drive a
//! [`crate::traits::TargetTrainer`] over a pool of candidate
//! models for a fixed number of stages and return the surviving model plus
//! an epoch ledger:
//!
//! * [`brute::brute_force`] — fine-tune everything to completion (BF);
//! * [`halving::successive_halving`] — keep the top half after every stage
//!   (SH, the state-of-the-art baseline);
//! * [`fine::fine_selection`] — SH plus convergence-trend prediction to
//!   filter *more* than half per stage (FS, Algorithm 1 — the paper's
//!   contribution);
//! * [`ensemble::fine_selection_ensemble`] — FS that keeps the top-E
//!   models alive for downstream ensembling (the §VI extension hook).

pub mod brute;
pub mod ensemble;
pub mod fine;
pub mod halving;

use crate::budget::EpochLedger;
use crate::error::{FaultClass, Result, SelectionError};
use crate::fault::{Casualty, RetryPolicy};
use crate::ids::ModelId;
use crate::telemetry::Telemetry;
use crate::traits::TargetTrainer;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Why a model was removed from the candidate pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterReason {
    /// The fine filter removed it: another surviving model had strictly
    /// better validation *and* a better trend-predicted final performance.
    DominatedBy(ModelId),
    /// The halving cap removed it: lowest validation among survivors.
    HalvingCut,
    /// The resilience layer removed it: its training stage failed
    /// permanently (or exhausted its retries), or it reported a
    /// NaN/out-of-range validation. Details live in the matching
    /// [`Casualty`] record.
    Quarantined,
}

/// One removal decision, for selection explainability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterEvent {
    /// Stage (0-based) after whose validation the model was removed.
    pub stage: usize,
    /// The removed model.
    pub model: ModelId,
    /// Why.
    pub reason: FilterReason,
}

/// Outcome of one selection run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionOutcome {
    /// The selected model.
    pub winner: ModelId,
    /// Its validation accuracy at the end of the run.
    pub winner_val: f64,
    /// Its test accuracy at the end of the run — what Fig. 7 / Table VI
    /// report.
    pub winner_test: f64,
    /// Epoch-equivalents spent.
    pub ledger: EpochLedger,
    /// Candidate pool at the **start** of each stage.
    pub pool_history: Vec<Vec<ModelId>>,
    /// `(model, validation accuracy)` pairs recorded at each stage, for
    /// every model trained in that stage.
    pub val_history: Vec<Vec<(ModelId, f64)>>,
    /// Every removal decision, in order — the audit trail of the run.
    pub events: Vec<FilterEvent>,
    /// Models lost to permanent substrate failures during this run, in the
    /// order they were quarantined. Empty on fault-free runs; pre-fault
    /// JSON deserialises to empty.
    #[serde(default)]
    pub casualties: Vec<Casualty>,
}

/// Shared input validation for the selectors.
pub(crate) fn validate_pool(models: &[ModelId], total_stages: usize) -> Result<()> {
    if models.is_empty() {
        return Err(SelectionError::Empty("candidate models"));
    }
    if total_stages == 0 {
        return Err(SelectionError::InvalidConfig(
            "total_stages must be >= 1".into(),
        ));
    }
    let mut sorted: Vec<usize> = models.iter().map(|m| m.index()).collect();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != models.len() {
        return Err(SelectionError::InvalidConfig(
            "candidate models must be distinct".into(),
        ));
    }
    Ok(())
}

/// One resilient stage fan-out: the models that made it through plus the
/// models quarantined on the way.
pub(crate) struct StageAdvance {
    /// `(model, validation accuracy)` for every model that trained and
    /// reported a sane value, in pool order.
    pub vals: Vec<(ModelId, f64)>,
    /// Models lost this stage, in the order they were quarantined.
    pub casualties: Vec<Casualty>,
}

/// A validation/test accuracy the pipeline is willing to rank on.
fn sane_accuracy(v: f64) -> bool {
    v.is_finite() && (0.0..=1.0).contains(&v)
}

/// Quarantine bookkeeping shared by the stage fan-out and the final test
/// read: record the casualty on the trace and count the permanent fault.
fn quarantine(
    model: ModelId,
    stage_label: &str,
    cause: &SelectionError,
    casualties: &mut Vec<Casualty>,
    tel: &Telemetry,
) {
    let c = Casualty::new(model, stage_label, cause);
    tel.casualty(&c);
    casualties.push(c);
}

/// Decide how a failed substrate call is absorbed: `Ok(true)` means retry
/// the call, `Ok(false)` means quarantine the model, `Err` means the error
/// is fatal (or implicates no model) and must propagate. Transient retries
/// charge deterministic backoff epochs to the ledger and are counted on the
/// `retry.*` / `fault.*` counters (only when faults actually fire, so
/// fault-free traces stay bit-identical to the pre-fault baseline).
fn absorb_failure(
    err: &SelectionError,
    attempts: &mut HashMap<ModelId, u32>,
    retry: RetryPolicy,
    ledger: &mut EpochLedger,
    tel: &Telemetry,
) -> Result<bool> {
    let model = match (err.classify(), err.fault_model()) {
        (FaultClass::Fatal, _) | (_, None) => return Err(err.clone()),
        (_, Some(m)) => ModelId::from(m),
    };
    match err.classify() {
        FaultClass::Transient => {
            tel.add("fault.transient", 1.0);
            let seen = attempts.entry(model).or_insert(0);
            *seen += 1;
            if *seen < retry.max_attempts {
                ledger.charge_retry(retry.backoff_epochs);
                tel.add("retry.attempts", 1.0);
                tel.add("retry.backoff_epochs", retry.backoff_epochs);
                Ok(true)
            } else {
                Ok(false) // retries exhausted
            }
        }
        FaultClass::Permanent => {
            tel.add("fault.permanent", 1.0);
            Ok(false)
        }
        FaultClass::Fatal => unreachable!("fatal handled above"),
    }
}

/// Train every model in `pool` for one stage, recording validations and
/// charging the ledger. With `threads > 1` the per-model stage fan-out is
/// delegated to [`TargetTrainer::advance_many`], which substrates override
/// with a deterministic parallel implementation; the ledger is charged
/// identically either way.
///
/// Resilience: a failed fan-out is classified via
/// [`SelectionError::classify`]. Transient failures are retried (bounded by
/// `retry`, with deterministic backoff charged to the ledger's retry
/// bucket); permanent or retry-exhausted failures quarantine the implicated
/// model and the stage proceeds with the rest. Models that train but report
/// a NaN/out-of-range validation are quarantined the same way — the ledger
/// *is* charged for them (the epochs were spent), keeping
/// `select.train_epochs` reconciled with the trainer's own stage count.
/// Losing the whole pool is an error.
///
/// Telemetry: opens a `select.stage.train` span around the fan-out, adds
/// the epochs charged this stage to the `select.train_epochs` counter, and
/// observes the fan-out's wall-clock into the `select.stage_train_us`
/// histogram (summary-only — never compared across runs).
pub(crate) fn advance_pool(
    trainer: &mut dyn TargetTrainer,
    pool: &[ModelId],
    ledger: &mut EpochLedger,
    threads: usize,
    tel: &Telemetry,
    retry: RetryPolicy,
    stage_label: &str,
) -> Result<StageAdvance> {
    let _span = tel.span("select.stage.train");
    // Only read the clock when a sink is attached — a disabled handle
    // must stay free of clock syscalls on the hot path.
    let started = tel.enabled().then(std::time::Instant::now);
    let mut remaining: Vec<ModelId> = pool.to_vec();
    let mut casualties = Vec::new();
    let mut attempts: HashMap<ModelId, u32> = HashMap::new();
    let vals = loop {
        if remaining.is_empty() {
            return Err(SelectionError::Empty("surviving candidate pool"));
        }
        match trainer.advance_many(&remaining, threads) {
            Ok(vals) => break vals,
            Err(e) => {
                if absorb_failure(&e, &mut attempts, retry, ledger, tel)? {
                    continue; // transient: same pool, one backoff charged
                }
                let dead = ModelId::from(e.fault_model().expect("absorb checked"));
                quarantine(dead, stage_label, &e, &mut casualties, tel);
                remaining.retain(|&m| m != dead);
            }
        }
    };
    if let Some(t0) = started {
        tel.observe("select.stage_train_us", t0.elapsed().as_micros() as f64);
    }
    // Every remaining model trained this stage (a failed advance_many batch
    // is all-or-nothing per the TargetTrainer contract), so all of them are
    // charged — including any about to be quarantined for a garbage value.
    for _ in &remaining {
        ledger.charge_training(trainer.epochs_per_stage());
    }
    tel.add(
        "select.train_epochs",
        trainer.epochs_per_stage() * remaining.len() as f64,
    );
    let mut out = Vec::with_capacity(remaining.len());
    for (m, v) in remaining.iter().copied().zip(vals) {
        if sane_accuracy(v) {
            out.push((m, v));
        } else {
            tel.add("fault.corrupt_value", 1.0);
            let cause = SelectionError::permanent_fault(
                "trainer.advance",
                m.index(),
                SelectionError::InvalidValue {
                    what: "stage validation accuracy",
                    value: v,
                },
            );
            quarantine(m, stage_label, &cause, &mut casualties, tel);
        }
    }
    if out.is_empty() {
        return Err(SelectionError::Empty("surviving candidate pool"));
    }
    Ok(StageAdvance {
        vals: out,
        casualties,
    })
}

/// Final bookkeeping shared by every selector: the winner is the pool's best
/// validation performer; its test accuracy is read at its current state.
///
/// Resilience: the test read follows the same retry/quarantine rules as the
/// stage fan-out. If the best candidate's test read dies permanently it is
/// quarantined (recorded as a `{phase}.final` casualty) and the next-best
/// finalist is tested instead; the run only fails once every finalist is
/// dead.
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish(
    trainer: &mut dyn TargetTrainer,
    last_vals: &[(ModelId, f64)],
    mut ledger: EpochLedger,
    pool_history: Vec<Vec<ModelId>>,
    val_history: Vec<Vec<(ModelId, f64)>>,
    events: Vec<FilterEvent>,
    mut casualties: Vec<Casualty>,
    retry: RetryPolicy,
    phase: &str,
    tel: &Telemetry,
) -> Result<SelectionOutcome> {
    if last_vals.is_empty() {
        return Err(SelectionError::Empty("final validation pool"));
    }
    let mut ranked = last_vals.to_vec();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let stage_label = format!("{phase}.final");
    let mut attempts: HashMap<ModelId, u32> = HashMap::new();
    for &(winner, winner_val) in &ranked {
        let winner_test = loop {
            match trainer.test(winner) {
                Ok(v) if sane_accuracy(v) => break Some(v),
                Ok(v) => {
                    tel.add("fault.corrupt_value", 1.0);
                    let cause = SelectionError::permanent_fault(
                        "trainer.test",
                        winner.index(),
                        SelectionError::InvalidValue {
                            what: "test accuracy",
                            value: v,
                        },
                    );
                    quarantine(winner, &stage_label, &cause, &mut casualties, tel);
                    break None;
                }
                Err(e) => {
                    if absorb_failure(&e, &mut attempts, retry, &mut ledger, tel)? {
                        continue;
                    }
                    quarantine(winner, &stage_label, &e, &mut casualties, tel);
                    break None;
                }
            }
        };
        if let Some(winner_test) = winner_test {
            return Ok(SelectionOutcome {
                winner,
                winner_val,
                winner_test,
                ledger,
                pool_history,
                val_history,
                events,
                casualties,
            });
        }
    }
    Err(SelectionError::Empty("testable finalists"))
}

/// Record `HalvingCut` events for every model in `before` missing from
/// `after`, except those already removed for another reason this stage.
pub(crate) fn record_cuts(
    events: &mut Vec<FilterEvent>,
    stage: usize,
    before: &[ModelId],
    after: &[ModelId],
) {
    for &m in before {
        if !after.contains(&m) && !events.iter().any(|e| e.stage == stage && e.model == m) {
            events.push(FilterEvent {
                stage,
                model: m,
                reason: FilterReason::HalvingCut,
            });
        }
    }
}

/// Keep the `keep` best-validation models from `vals` (stable on ties by
/// preferring lower model ids), preserving no particular order guarantee
/// beyond determinism.
pub(crate) fn top_by_val(vals: &[(ModelId, f64)], keep: usize) -> Vec<ModelId> {
    let mut sorted = vals.to_vec();
    sorted.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    sorted.truncate(keep.max(1));
    sorted.into_iter().map(|(m, _)| m).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_pool_rules() {
        assert!(validate_pool(&[], 5).is_err());
        assert!(validate_pool(&[ModelId(0)], 0).is_err());
        assert!(validate_pool(&[ModelId(0), ModelId(0)], 5).is_err());
        assert!(validate_pool(&[ModelId(0), ModelId(1)], 5).is_ok());
    }

    #[test]
    fn top_by_val_orders_and_truncates() {
        let vals = vec![(ModelId(0), 0.5), (ModelId(1), 0.9), (ModelId(2), 0.7)];
        assert_eq!(top_by_val(&vals, 2), vec![ModelId(1), ModelId(2)]);
        // keep=0 still keeps one model.
        assert_eq!(top_by_val(&vals, 0), vec![ModelId(1)]);
    }

    #[test]
    fn top_by_val_tie_prefers_lower_id() {
        let vals = vec![(ModelId(5), 0.5), (ModelId(1), 0.5)];
        assert_eq!(top_by_val(&vals, 1), vec![ModelId(1)]);
    }
}
