//! Substrate abstraction: what the selection framework needs from the
//! machinery that actually trains models.
//!
//! `tps-core` never trains anything itself — it drives a [`TargetTrainer`]
//! supplied by a substrate crate. `tps-zoo` implements these traits with a
//! parametric world model (fast, used by the experiment harness);
//! `tps-nn` implements them with a real micro-neural-network trainer.

use crate::error::Result;
use crate::ids::ModelId;
use crate::proxy::PredictionMatrix;

/// Incremental fine-tuning of repository models on **one** target task.
///
/// A *stage* is one validation interval (`s` training steps in the paper,
/// one epoch in both bundled substrates). Stages are cumulative: calling
/// [`advance`](Self::advance) twice trains the model for two stages total.
/// Implementations own all per-model training state.
pub trait TargetTrainer {
    /// Train `model` for one more stage on the target dataset and return the
    /// validation accuracy after that stage.
    fn advance(&mut self, model: ModelId) -> Result<f64>;

    /// Test-set accuracy of `model` at its **current** training state.
    fn test(&mut self, model: ModelId) -> Result<f64>;

    /// Number of stages `model` has been trained for so far.
    fn stages_trained(&self, model: ModelId) -> usize;

    /// Epoch-equivalents consumed by one stage (1.0 in both substrates).
    fn epochs_per_stage(&self) -> f64 {
        1.0
    }

    /// Train every model in `pool` for one more stage and return their
    /// validation accuracies, in pool order.
    ///
    /// The default implementation is the serial loop and ignores `threads`;
    /// substrates whose per-model training states are independent (both
    /// bundled ones) override it to fan the pool out across `threads`
    /// workers. Overrides must be **bit-identical** to the serial loop —
    /// per-model results may not depend on thread interleaving — and must
    /// report the error of the first (pool-order) failing model.
    fn advance_many(&mut self, pool: &[ModelId], threads: usize) -> Result<Vec<f64>> {
        let _ = threads;
        pool.iter().map(|&m| self.advance(m)).collect()
    }
}

/// Supplies a source model's feature embeddings of the target samples —
/// input to the feature-based proxies (LogME, kNN) and their ensembles.
pub trait FeatureOracle {
    /// Row-major `n × d` features plus the `(n, d)` shape, aligned with the
    /// target labels of the corresponding [`ProxyOracle`].
    fn features(&self, model: ModelId) -> Result<(Vec<f64>, usize, usize)>;
}

/// Produces the inputs to proxy scoring for a target task: a source model's
/// prediction matrix over its own label space, plus the target labels.
pub trait ProxyOracle {
    /// One inference pass of `model` over the target dataset.
    fn predictions(&self, model: ModelId) -> Result<PredictionMatrix>;

    /// Ground-truth labels of the target dataset samples, aligned with the
    /// rows of [`predictions`](Self::predictions).
    fn target_labels(&self) -> &[usize];

    /// Size of the target label space.
    fn n_target_labels(&self) -> usize;
}

#[cfg(test)]
pub(crate) mod test_support {
    //! A scripted in-memory trainer used by the selection-algorithm tests:
    //! each model follows a fixed validation trajectory with a fixed test
    //! accuracy at every stage.

    use super::*;
    use crate::error::SelectionError;

    pub struct ScriptedTrainer {
        /// `curves[m][t]` = validation accuracy of model `m` after stage
        /// `t + 1`; training past the end holds the last value.
        pub curves: Vec<Vec<f64>>,
        /// `tests[m][t]` = test accuracy of model `m` when trained `t + 1`
        /// stages (same clamping).
        pub tests: Vec<Vec<f64>>,
        pub trained: Vec<usize>,
        /// Log of every advance call, for asserting on training schedules.
        pub advance_log: Vec<ModelId>,
    }

    impl ScriptedTrainer {
        pub fn new(curves: Vec<Vec<f64>>, tests: Vec<Vec<f64>>) -> Self {
            let n = curves.len();
            assert_eq!(tests.len(), n);
            Self {
                curves,
                tests,
                trained: vec![0; n],
                advance_log: Vec::new(),
            }
        }

        /// Convenience: test accuracy equals final validation accuracy.
        pub fn from_val_curves(curves: Vec<Vec<f64>>) -> Self {
            let tests = curves
                .iter()
                .map(|c| vec![*c.last().expect("non-empty curve"); c.len()])
                .collect();
            Self::new(curves, tests)
        }
    }

    impl TargetTrainer for ScriptedTrainer {
        fn advance(&mut self, model: ModelId) -> Result<f64> {
            let m = model.index();
            if m >= self.curves.len() {
                return Err(SelectionError::UnknownId {
                    what: "model",
                    id: m,
                });
            }
            self.advance_log.push(model);
            let t = self.trained[m];
            self.trained[m] += 1;
            let curve = &self.curves[m];
            Ok(curve[t.min(curve.len() - 1)])
        }

        fn test(&mut self, model: ModelId) -> Result<f64> {
            let m = model.index();
            if m >= self.tests.len() {
                return Err(SelectionError::UnknownId {
                    what: "model",
                    id: m,
                });
            }
            let t = self.trained[m];
            if t == 0 {
                return Err(SelectionError::InvalidConfig(
                    "test() before any training stage".into(),
                ));
            }
            let tests = &self.tests[m];
            Ok(tests[(t - 1).min(tests.len() - 1)])
        }

        fn stages_trained(&self, model: ModelId) -> usize {
            self.trained[model.index()]
        }
    }
}
