//! Streamed offline builds for million-model zoos.
//!
//! [`OfflineArtifacts::build`] wants every model's curves in memory at
//! once (a [`crate::curve::CurveSet`]), which at 10⁵–10⁶ models is the
//! difference between fitting in RAM and not: curves dominate the input
//! footprint, and the dense exact path additionally materialises an
//! O(M²) similarity matrix. [`StreamingOfflineBuilder`] instead accepts
//! one model at a time, mining its convergence trends and inserting its
//! performance vector into the ANN index *immediately*, so each model's
//! curves can be dropped as soon as it is pushed. Peak memory is
//! O(M·D + index), never O(M²) or O(total curves).
//!
//! The builder requires [`crate::ann::AnnMode::Indexed`] (a streamed
//! dense build would defeat the point) and produces artifacts
//! **bit-identical** to the batch indexed build for the same model
//! order: the index inserts in push order exactly as
//! [`crate::ann::AnnIndex::build`] does, and trend mining is per-model.

use crate::ann::{AnnIndex, AnnMode, AnnRepIndex};
use crate::curve::LearningCurve;
use crate::error::{Result, SelectionError};
use crate::ids::ModelId;
use crate::matrix::PerformanceMatrix;
use crate::pipeline::{ClusterMethod, OfflineArtifacts, OfflineConfig};
use crate::recall::scored_cluster_set;
use crate::similarity::SimilarityMatrix;
use crate::telemetry::Telemetry;
use crate::trend::{mine_trends, ConvergenceTrends, TrendBook};
use std::sync::Arc;

/// Incremental offline build: push models one at a time, then
/// [`finish`](Self::finish) into [`OfflineArtifacts`].
///
/// ```
/// use tps_core::prelude::*;
/// use tps_core::stream::StreamingOfflineBuilder;
/// # use tps_core::curve::LearningCurve;
/// # fn curves_for(_m: usize) -> Vec<LearningCurve> {
/// #     (0..2).map(|d| LearningCurve::new(vec![0.4, 0.5], 0.5 + 0.01 * d as f64).unwrap()).collect()
/// # }
/// # fn main() -> tps_core::error::Result<()> {
/// let config = OfflineConfig {
///     ann: AnnConfig { mode: AnnMode::Indexed, ..Default::default() },
///     ..Default::default()
/// };
/// let mut builder = StreamingOfflineBuilder::new(
///     vec!["bench-0".into(), "bench-1".into()],
///     config,
/// )?;
/// for m in 0..16 {
///     builder.push_model(format!("model-{m}"), &curves_for(m))?;
/// }
/// let artifacts = builder.finish()?;
/// assert_eq!(artifacts.matrix.n_models(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StreamingOfflineBuilder {
    dataset_names: Vec<String>,
    config: OfflineConfig,
    threshold: f64,
    model_names: Vec<String>,
    trends: Vec<ConvergenceTrends>,
    index: AnnIndex,
}

impl StreamingOfflineBuilder {
    /// Start a streamed build over the given benchmark datasets.
    ///
    /// `config.ann.mode` must be [`AnnMode::Indexed`] and `config.cluster`
    /// must be [`ClusterMethod::HierarchicalThreshold`] — the only
    /// combination whose offline derivations are incremental.
    pub fn new(dataset_names: Vec<String>, config: OfflineConfig) -> Result<Self> {
        if dataset_names.is_empty() {
            return Err(SelectionError::Empty("benchmark datasets"));
        }
        if config.ann.mode != AnnMode::Indexed {
            return Err(SelectionError::InvalidConfig(
                "streamed offline build requires ann mode `indexed`".into(),
            ));
        }
        config.ann.validate()?;
        let threshold = match config.cluster {
            ClusterMethod::HierarchicalThreshold(t) => t,
            other => {
                return Err(SelectionError::InvalidConfig(format!(
                    "streamed offline build supports only HierarchicalThreshold \
                     clustering, got {other:?}"
                )))
            }
        };
        let index = AnnIndex::new(config.similarity_top_k, &config.ann)?;
        Ok(Self {
            dataset_names,
            config,
            threshold,
            model_names: Vec::new(),
            trends: Vec::new(),
            index,
        })
    }

    /// Add one model from its benchmark learning curves (one per dataset,
    /// in dataset order). The curves are fully consumed here — trends are
    /// mined and the final test accuracies indexed — so the caller can
    /// drop them immediately.
    pub fn push_model(
        &mut self,
        name: impl Into<String>,
        curves: &[LearningCurve],
    ) -> Result<ModelId> {
        if curves.len() != self.dataset_names.len() {
            return Err(SelectionError::DimensionMismatch {
                what: "benchmark curves",
                expected: self.dataset_names.len(),
                got: curves.len(),
            });
        }
        let trends = mine_trends(curves, self.config.trend_stages, &self.config.trend)?;
        let accuracies: Vec<f64> = curves.iter().map(LearningCurve::test).collect();
        let id = self.index.insert(accuracies)?;
        self.model_names.push(name.into());
        self.trends.push(trends);
        Ok(ModelId::from(id))
    }

    /// Number of models pushed so far.
    pub fn len(&self) -> usize {
        self.model_names.len()
    }

    /// Whether no models have been pushed.
    pub fn is_empty(&self) -> bool {
        self.model_names.is_empty()
    }

    /// Finalize into [`OfflineArtifacts`]. Bit-identical to
    /// [`OfflineArtifacts::build`] with the same config over the same
    /// models in push order.
    pub fn finish(self) -> Result<OfflineArtifacts> {
        self.finish_traced(&Telemetry::disabled())
    }

    /// [`Self::finish`] with the same `offline.*` spans and counters the
    /// batch indexed build records.
    pub fn finish_traced(self, tel: &Telemetry) -> Result<OfflineArtifacts> {
        if self.model_names.is_empty() {
            return Err(SelectionError::Empty("streamed models"));
        }
        let _span = tel.span("offline.build");
        let n_models = self.model_names.len();
        let n_datasets = self.dataset_names.len();
        tel.add("offline.models", n_models as f64);
        tel.add("offline.datasets", n_datasets as f64);
        let threads = self.config.parallel.resolve();

        // Dataset-major rows from the indexed model columns.
        let rows: Vec<Vec<f64>> = (0..n_datasets)
            .map(|d| (0..n_models).map(|m| self.index.vector(m)[d]).collect())
            .collect();
        let matrix = PerformanceMatrix::new(self.model_names, self.dataset_names, rows)?;

        let similarity = {
            let _s = tel.span("offline.similarity");
            SimilarityMatrix::lazy_from_vectors(
                Arc::new(matrix.model_vectors()),
                self.config.similarity_top_k,
            )?
        };
        let clustering = {
            let _s = tel.span("offline.cluster");
            tel.add("ann.index_nodes", self.index.len() as f64);
            tel.add("ann.knn_k", self.config.ann.k as f64);
            let lists = self
                .index
                .knn_lists(self.config.ann.k, self.config.ann.ef_search, threads);
            tel.add(
                "ann.knn_edges",
                lists.iter().map(Vec::len).sum::<usize>() as f64,
            );
            crate::cluster::knn::knn_threshold_components(n_models, &lists, self.threshold)?
        };
        tel.add("offline.clusters", clustering.n_clusters() as f64);
        let reps = clustering.representatives(&matrix)?;
        let scored = scored_cluster_set(&clustering);
        let rep_index = AnnRepIndex::build(
            &matrix,
            &reps,
            &scored,
            self.config.similarity_top_k,
            &self.config.ann,
        )?;
        let trends = {
            let _s = tel.span("offline.trends");
            TrendBook::from_parts(self.trends)?
        };
        Ok(OfflineArtifacts {
            matrix,
            similarity,
            clustering,
            trends,
            ann: Some(rep_index),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ann::AnnConfig;
    use crate::curve::CurveSet;
    use crate::trend::TrendConfig;

    fn indexed_config() -> OfflineConfig {
        OfflineConfig {
            cluster: ClusterMethod::HierarchicalThreshold(0.08),
            trend: TrendConfig {
                n_trends: 2,
                max_iter: 32,
            },
            ann: AnnConfig {
                mode: AnnMode::Indexed,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// Synthetic world: `fams` families of 4 look-alike models plus
    /// `singles` oddballs, over `d` datasets.
    fn world(fams: usize, singles: usize, d: usize) -> (Vec<String>, Vec<Vec<LearningCurve>>) {
        let n = fams * 4 + singles;
        let names: Vec<String> = (0..n).map(|m| format!("model-{m}")).collect();
        let curves: Vec<Vec<LearningCurve>> = (0..n)
            .map(|m| {
                (0..d)
                    .map(|j| {
                        let base = if m < fams * 4 {
                            let fam = m / 4;
                            0.3 + 0.4 * ((fam * 7 + j * 3) % 10) as f64 / 10.0
                                + 0.002 * (m % 4) as f64
                        } else {
                            ((m * 13 + j * 5) % 97) as f64 / 97.0
                        };
                        LearningCurve::new(vec![base * 0.7, base * 0.9, base], base).unwrap()
                    })
                    .collect()
            })
            .collect();
        (names, curves)
    }

    #[test]
    fn streamed_build_matches_batch_indexed_build() {
        let (names, curves) = world(6, 5, 4);
        let d = 4;
        let config = indexed_config();

        let rows: Vec<Vec<f64>> = (0..d)
            .map(|j| curves.iter().map(|cs| cs[j].test()).collect())
            .collect();
        let matrix = PerformanceMatrix::new(
            names.clone(),
            (0..d).map(|j| format!("bench-{j}")).collect(),
            rows,
        )
        .unwrap();
        let curve_set =
            CurveSet::from_fn(names.len(), d, |m, j| curves[m.index()][j.index()].clone()).unwrap();
        let batch = OfflineArtifacts::build(matrix, &curve_set, &config).unwrap();

        let mut builder =
            StreamingOfflineBuilder::new((0..d).map(|j| format!("bench-{j}")).collect(), config)
                .unwrap();
        for (m, name) in names.iter().enumerate() {
            let id = builder.push_model(name.clone(), &curves[m]).unwrap();
            assert_eq!(id.index(), m);
        }
        let streamed = builder.finish().unwrap();

        // Bit-identical artifacts, down to the serialized bytes.
        assert_eq!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&batch).unwrap()
        );
    }

    #[test]
    fn rejects_exact_mode_and_bad_cluster_methods() {
        let datasets = vec!["d0".to_string()];
        assert!(StreamingOfflineBuilder::new(datasets.clone(), OfflineConfig::default()).is_err());
        let mut config = indexed_config();
        config.cluster = ClusterMethod::KMeans { k: 2, seed: 1 };
        assert!(StreamingOfflineBuilder::new(datasets.clone(), config).is_err());
        assert!(StreamingOfflineBuilder::new(vec![], indexed_config()).is_err());
    }

    #[test]
    fn rejects_dimension_mismatch_and_empty_finish() {
        let mut builder = StreamingOfflineBuilder::new(
            vec!["d0".to_string(), "d1".to_string()],
            indexed_config(),
        )
        .unwrap();
        let one = vec![LearningCurve::new(vec![0.4, 0.5], 0.5).unwrap()];
        assert!(builder.push_model("m", &one).is_err());
        assert!(builder.is_empty());
        assert!(builder.finish().is_err());
    }
}
