//! LogME — Log of Maximum Evidence (You et al., ICML 2021).
//!
//! A feature-based transferability proxy: fit a Bayesian linear regression
//! from the source model's target-set *features* (penultimate-layer
//! embeddings) to each one-hot target label, maximising the marginal
//! evidence over the prior precision `α` and noise precision `β` with the
//! standard fixed-point iteration, and report the per-sample log evidence
//! averaged over classes. Higher is better; unlike LEEP the score is not
//! bounded above by 0.
//!
//! Included as part of the paper's future-work proxy ensemble (§VII).

use crate::error::{Result, SelectionError};

/// Maximum fixed-point iterations for `(α, β)`.
const MAX_ITER: usize = 100;
/// Convergence tolerance on the evidence.
const TOL: f64 = 1e-6;

/// Compute LogME from a row-major `n × d` feature matrix and target labels.
pub fn logme(
    features: &[f64],
    n: usize,
    d: usize,
    target_labels: &[usize],
    n_target_labels: usize,
) -> Result<f64> {
    if n == 0 || d == 0 {
        return Err(SelectionError::Empty("feature matrix"));
    }
    if features.len() != n * d {
        return Err(SelectionError::DimensionMismatch {
            what: "feature matrix",
            expected: n * d,
            got: features.len(),
        });
    }
    if target_labels.len() != n {
        return Err(SelectionError::DimensionMismatch {
            what: "target labels",
            expected: n,
            got: target_labels.len(),
        });
    }
    if n_target_labels == 0 {
        return Err(SelectionError::Empty("target label space"));
    }
    if let Some(&bad) = target_labels.iter().find(|&&y| y >= n_target_labels) {
        return Err(SelectionError::UnknownId {
            what: "target label",
            id: bad,
        });
    }

    // Gram matrix FᵀF (d × d, symmetric PSD) and its eigendecomposition,
    // shared across all classes.
    let mut gram = vec![0.0f64; d * d];
    for row in features.chunks(d) {
        for i in 0..d {
            let fi = row[i];
            for j in i..d {
                gram[i * d + j] += fi * row[j];
            }
        }
    }
    for i in 0..d {
        for j in 0..i {
            gram[i * d + j] = gram[j * d + i];
        }
    }
    let (eigvals, eigvecs) = symmetric_eigen(&gram, d);

    // Per class: p = Vᵀ Fᵀ y, evidence maximisation.
    let mut total = 0.0;
    for class in 0..n_target_labels {
        // Fᵀ y
        let mut fty = vec![0.0f64; d];
        let mut y_norm2 = 0.0f64;
        for (i, row) in features.chunks(d).enumerate() {
            let y = if target_labels[i] == class { 1.0 } else { 0.0 };
            if y != 0.0 {
                y_norm2 += 1.0;
                for (acc, &f) in fty.iter_mut().zip(row) {
                    *acc += f;
                }
            }
        }
        // p = Vᵀ (Fᵀ y)
        let mut p = vec![0.0f64; d];
        for (i, pi) in p.iter_mut().enumerate() {
            *pi = (0..d).map(|r| eigvecs[r * d + i] * fty[r]).sum();
        }
        total += evidence(&eigvals, &p, y_norm2, n, d);
    }
    Ok(total / n_target_labels as f64)
}

/// Evidence maximisation for one regression target. `s` = eigenvalues of
/// FᵀF, `p` = projections of Fᵀy onto the eigenbasis, `y2` = ‖y‖².
fn evidence(s: &[f64], p: &[f64], y2: f64, n: usize, d: usize) -> f64 {
    let (mut alpha, mut beta) = (1.0f64, 1.0f64);
    let mut last = f64::NEG_INFINITY;
    let mut log_evidence = f64::NEG_INFINITY;
    for _ in 0..MAX_ITER {
        let mut gamma = 0.0;
        let mut m2 = 0.0;
        let mut res2 = y2;
        let mut logdet = 0.0;
        for (&si, &pi) in s.iter().zip(p) {
            let denom = alpha + beta * si;
            gamma += beta * si / denom;
            let mi = beta * pi / denom;
            m2 += mi * mi;
            res2 += si * mi * mi - 2.0 * mi * pi;
            logdet += denom.ln();
        }
        res2 = res2.max(1e-12);
        let m2c = m2.max(1e-12);

        log_evidence = 0.5
            * (d as f64 * alpha.ln() + n as f64 * beta.ln()
                - beta * res2
                - alpha * m2
                - logdet
                - n as f64 * (2.0 * std::f64::consts::PI).ln());

        alpha = (gamma / m2c).clamp(1e-9, 1e12);
        beta = (((n as f64 - gamma).max(1e-9)) / res2).clamp(1e-9, 1e12);

        if (log_evidence - last).abs() < TOL {
            break;
        }
        last = log_evidence;
    }
    log_evidence / n as f64
}

/// Cyclic Jacobi eigensolver for a symmetric `d × d` matrix. Returns
/// `(eigenvalues, eigenvectors)` with eigenvectors as columns of the
/// returned row-major matrix. Adequate for the small feature dimensions
/// used by proxy scoring (d ≤ a few hundred).
pub fn symmetric_eigen(matrix: &[f64], d: usize) -> (Vec<f64>, Vec<f64>) {
    let mut a = matrix.to_vec();
    let mut v = vec![0.0f64; d * d];
    for i in 0..d {
        v[i * d + i] = 1.0;
    }
    for _sweep in 0..100 {
        // Off-diagonal Frobenius norm.
        let off: f64 = (0..d)
            .flat_map(|i| ((i + 1)..d).map(move |j| (i, j)))
            .map(|(i, j)| a[i * d + j] * a[i * d + j])
            .sum();
        if off.sqrt() < 1e-12 {
            break;
        }
        for p in 0..d {
            for q in (p + 1)..d {
                let apq = a[p * d + q];
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = a[p * d + p];
                let aqq = a[q * d + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q of a.
                for k in 0..d {
                    let akp = a[k * d + p];
                    let akq = a[k * d + q];
                    a[k * d + p] = c * akp - s * akq;
                    a[k * d + q] = s * akp + c * akq;
                }
                for k in 0..d {
                    let apk = a[p * d + k];
                    let aqk = a[q * d + k];
                    a[p * d + k] = c * apk - s * aqk;
                    a[q * d + k] = s * apk + c * aqk;
                }
                // Accumulate eigenvectors.
                for k in 0..d {
                    let vkp = v[k * d + p];
                    let vkq = v[k * d + q];
                    v[k * d + p] = c * vkp - s * vkq;
                    v[k * d + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let eigvals: Vec<f64> = (0..d).map(|i| a[i * d + i]).collect();
    (eigvals, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eigen_of_diagonal() {
        let m = vec![3.0, 0.0, 0.0, 1.0];
        let (vals, vecs) = symmetric_eigen(&m, 2);
        let mut sorted = vals.clone();
        sorted.sort_by(f64::total_cmp);
        assert!((sorted[0] - 1.0).abs() < 1e-9);
        assert!((sorted[1] - 3.0).abs() < 1e-9);
        // Eigenvectors are orthonormal.
        let dot = vecs[0] * vecs[1] + vecs[2] * vecs[3];
        assert!(dot.abs() < 1e-9);
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        let m = vec![2.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 1.5];
        let d = 3;
        let (vals, vecs) = symmetric_eigen(&m, d);
        // Reconstruct A = V diag(vals) Vᵀ.
        for i in 0..d {
            for j in 0..d {
                let mut acc = 0.0;
                for k in 0..d {
                    acc += vecs[i * d + k] * vals[k] * vecs[j * d + k];
                }
                assert!((acc - m[i * d + j]).abs() < 1e-8, "cell ({i},{j})");
            }
        }
    }

    /// Linearly separable features should out-score noise features.
    #[test]
    fn separable_beats_noise() {
        let n = 40;
        let d = 4;
        let mut sep = Vec::with_capacity(n * d);
        let mut noise = Vec::with_capacity(n * d);
        let mut labels = Vec::with_capacity(n);
        // Deterministic pseudo-noise; avoids RNG in a unit test.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for i in 0..n {
            let y = i % 2;
            labels.push(y);
            for k in 0..d {
                let signal = if k == 0 { y as f64 * 2.0 - 1.0 } else { 0.0 };
                sep.push(signal + 0.05 * next());
                noise.push(next());
            }
        }
        let s_sep = logme(&sep, n, d, &labels, 2).unwrap();
        let s_noise = logme(&noise, n, d, &labels, 2).unwrap();
        assert!(s_sep > s_noise, "separable {s_sep} vs noise {s_noise}");
    }

    #[test]
    fn validates_shapes() {
        assert!(logme(&[1.0], 1, 1, &[0], 1).is_ok());
        assert!(logme(&[], 0, 0, &[], 1).is_err());
        assert!(logme(&[1.0, 2.0], 1, 1, &[0], 1).is_err());
        assert!(logme(&[1.0], 1, 1, &[0, 1], 2).is_err());
        assert!(logme(&[1.0], 1, 1, &[3], 2).is_err());
        assert!(logme(&[1.0], 1, 1, &[0], 0).is_err());
    }

    #[test]
    fn finite_on_degenerate_features() {
        // All-zero features must not blow up.
        let f = vec![0.0; 8];
        let s = logme(&f, 4, 2, &[0, 1, 0, 1], 2).unwrap();
        assert!(s.is_finite());
    }
}
