//! LEEP — Log Expected Empirical Prediction (Nguyen et al., ICML 2020),
//! the proxy score used by the paper's coarse-recall phase.
//!
//! Given a source model's soft predictions `θ(x_i)` over its own label space
//! `Z` and the target labels `y_i ∈ Y`:
//!
//! 1. Empirical joint: `P̂(y, z) = (1/n) Σ_i θ(x_i)_z · 1[y_i = y]`
//! 2. Conditional:      `P̂(y | z) = P̂(y, z) / P̂(z)`
//! 3. LEEP:             `(1/n) Σ_i log( Σ_z P̂(y_i | z) · θ(x_i)_z )`
//!
//! The score is the average log-likelihood of the *expected empirical
//! predictor* — always `≤ 0`, and higher means better expected transfer.
//! It needs one inference pass and no training, and works across
//! heterogeneous label spaces, the two properties §II-A calls out.

use super::{validate_labels, PredictionMatrix};
use crate::error::Result;

/// Floor applied inside `log` to keep the score finite when a sample's
/// expected empirical probability underflows (can only happen when some
/// `θ` entries are exactly 0).
const LOG_FLOOR: f64 = 1e-12;

/// Compute the LEEP score. `target_labels[i] ∈ 0..n_target_labels` is the
/// ground-truth target label of sample `i`.
///
/// ```
/// use tps_core::proxy::{leep::leep, PredictionMatrix};
///
/// // Source predictions perfectly aligned with the target labels.
/// let aligned = PredictionMatrix::new(2, vec![
///     0.9, 0.1,   // sample 0, label 0
///     0.1, 0.9,   // sample 1, label 1
///     0.9, 0.1,   // sample 2, label 0
///     0.1, 0.9,   // sample 3, label 1
/// ])?;
/// let uniform = PredictionMatrix::new(2, vec![0.5; 8])?;
/// let labels = [0, 1, 0, 1];
/// assert!(leep(&aligned, &labels, 2)? > leep(&uniform, &labels, 2)?);
/// # Ok::<(), tps_core::error::SelectionError>(())
/// ```
pub fn leep(
    predictions: &PredictionMatrix,
    target_labels: &[usize],
    n_target_labels: usize,
) -> Result<f64> {
    validate_labels(predictions, target_labels, n_target_labels)?;
    let n = predictions.n_samples();
    let nz = predictions.n_source_labels();

    // Empirical joint P̂(y, z), row-major over y.
    let mut joint = vec![0.0f64; n_target_labels * nz];
    for (i, &y) in target_labels.iter().enumerate() {
        let theta = predictions.row(i);
        let row = &mut joint[y * nz..(y + 1) * nz];
        for (acc, &t) in row.iter_mut().zip(theta) {
            *acc += t;
        }
    }
    let inv_n = 1.0 / n as f64;
    joint.iter_mut().for_each(|v| *v *= inv_n);

    // Marginal P̂(z) and conditional P̂(y|z) (stored back into `joint`).
    let mut marginal = vec![0.0f64; nz];
    for y in 0..n_target_labels {
        for z in 0..nz {
            marginal[z] += joint[y * nz + z];
        }
    }
    for y in 0..n_target_labels {
        for z in 0..nz {
            if marginal[z] > 0.0 {
                joint[y * nz + z] /= marginal[z];
            }
        }
    }
    let conditional = joint; // now P̂(y|z)

    // Average log-likelihood of the expected empirical predictor.
    let mut total = 0.0;
    for (i, &y) in target_labels.iter().enumerate() {
        let theta = predictions.row(i);
        let p: f64 = conditional[y * nz..(y + 1) * nz]
            .iter()
            .zip(theta)
            .map(|(c, t)| c * t)
            .sum();
        total += p.max(LOG_FLOOR).ln();
    }
    Ok(total * inv_n)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Predictions perfectly aligned with target labels: source label z == y.
    fn aligned(n_per_class: usize) -> (PredictionMatrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for y in 0..2 {
            for _ in 0..n_per_class {
                rows.extend_from_slice(if y == 0 { &[1.0, 0.0] } else { &[0.0, 1.0] });
                labels.push(y);
            }
        }
        (PredictionMatrix::new(2, rows).unwrap(), labels)
    }

    #[test]
    fn perfect_alignment_gives_zero() {
        let (p, y) = aligned(4);
        let s = leep(&p, &y, 2).unwrap();
        assert!(s.abs() < 1e-9, "got {s}");
    }

    #[test]
    fn leep_is_nonpositive() {
        let p =
            PredictionMatrix::new(3, vec![0.2, 0.5, 0.3, 0.6, 0.2, 0.2, 0.1, 0.1, 0.8]).unwrap();
        let s = leep(&p, &[0, 1, 0], 2).unwrap();
        assert!(s <= 0.0);
        assert!(s.is_finite());
    }

    #[test]
    fn uninformative_predictions_score_entropy_of_labels() {
        // Uniform θ regardless of label: expected empirical predictor is the
        // label marginal; with balanced binary labels LEEP = ln(1/2).
        let rows = vec![0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5];
        let p = PredictionMatrix::new(2, rows).unwrap();
        let s = leep(&p, &[0, 1, 0, 1], 2).unwrap();
        assert!((s - 0.5f64.ln()).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn aligned_beats_misaligned() {
        let (p_good, y) = aligned(4);
        // Anti-aligned predictions.
        let mut rows = Vec::new();
        for &label in &y {
            rows.extend_from_slice(if label == 0 { &[0.1, 0.9] } else { &[0.9, 0.1] });
        }
        // Note: anti-alignment is still informative to the empirical
        // predictor; compare against *noisy* predictions instead.
        let mut noisy = Vec::new();
        for (i, _) in y.iter().enumerate() {
            noisy.extend_from_slice(if i % 2 == 0 { &[0.6, 0.4] } else { &[0.4, 0.6] });
        }
        let s_good = leep(&p_good, &y, 2).unwrap();
        let s_noisy = leep(&PredictionMatrix::new(2, noisy).unwrap(), &y, 2).unwrap();
        assert!(s_good > s_noisy, "good {s_good} vs noisy {s_noisy}");
    }

    #[test]
    fn heterogeneous_label_spaces() {
        // 3 source labels, 2 target labels — the LEEP selling point.
        let rows = vec![
            0.7, 0.2, 0.1, //
            0.6, 0.3, 0.1, //
            0.1, 0.2, 0.7, //
            0.2, 0.1, 0.7,
        ];
        let p = PredictionMatrix::new(3, rows).unwrap();
        let s = leep(&p, &[0, 0, 1, 1], 2).unwrap();
        assert!(s <= 0.0 && s > -0.7, "got {s}");
    }

    #[test]
    fn more_transferable_scores_higher() {
        // Same structure, decreasing alignment sharpness.
        let y = vec![0, 0, 1, 1];
        let sharp =
            PredictionMatrix::new(2, vec![0.95, 0.05, 0.9, 0.1, 0.1, 0.9, 0.05, 0.95]).unwrap();
        let soft =
            PredictionMatrix::new(2, vec![0.6, 0.4, 0.55, 0.45, 0.45, 0.55, 0.4, 0.6]).unwrap();
        assert!(leep(&sharp, &y, 2).unwrap() > leep(&soft, &y, 2).unwrap());
    }

    #[test]
    fn rejects_label_mismatch() {
        let (p, mut y) = aligned(2);
        y.pop();
        assert!(leep(&p, &y, 2).is_err());
    }
}
