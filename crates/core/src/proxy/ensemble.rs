//! Proxy-score ensembles (paper §VII future work: "combine different
//! light-weight tasks to return a high quality subset of models more
//! robustly").
//!
//! Different proxies live on different scales (LEEP/NCE are log scores ≤ 0,
//! LogME is an unbounded log evidence, kNN is an accuracy), so ensembles
//! combine **ranks**, not raw values: each proxy contributes the normalised
//! rank of each model, and the ensemble score is the (optionally weighted)
//! mean of those ranks.

use crate::error::{Result, SelectionError};

/// Normalised ranks of `scores`: best score → 1.0, worst → 0.0, ties share
/// the average rank. A single model gets rank 1.0.
pub fn normalized_ranks(scores: &[f64]) -> Vec<f64> {
    let n = scores.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![1.0];
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut ranks = vec![0.0f64; n];
    let mut i = 0;
    while i < n {
        // Tie group [i, j).
        let mut j = i + 1;
        while j < n && scores[order[j]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j - 1) as f64 / 2.0;
        for &idx in &order[i..j] {
            ranks[idx] = avg_rank / (n - 1) as f64;
        }
        i = j;
    }
    ranks
}

/// Rank-average ensemble of several proxy score lists (each over the same
/// models). `weights`, if given, must match the number of proxies and be
/// non-negative with a positive sum.
pub fn rank_ensemble(proxy_scores: &[Vec<f64>], weights: Option<&[f64]>) -> Result<Vec<f64>> {
    if proxy_scores.is_empty() {
        return Err(SelectionError::Empty("proxy score lists"));
    }
    let n = proxy_scores[0].len();
    if n == 0 {
        return Err(SelectionError::Empty("proxy scores"));
    }
    for s in proxy_scores {
        if s.len() != n {
            return Err(SelectionError::DimensionMismatch {
                what: "proxy score list",
                expected: n,
                got: s.len(),
            });
        }
    }
    let uniform = vec![1.0; proxy_scores.len()];
    let w = match weights {
        Some(w) => {
            if w.len() != proxy_scores.len() {
                return Err(SelectionError::DimensionMismatch {
                    what: "ensemble weights",
                    expected: proxy_scores.len(),
                    got: w.len(),
                });
            }
            if w.iter().any(|&x| x < 0.0 || !x.is_finite()) || w.iter().sum::<f64>() <= 0.0 {
                return Err(SelectionError::InvalidConfig(
                    "ensemble weights must be non-negative with positive sum".into(),
                ));
            }
            w
        }
        None => &uniform,
    };
    let wsum: f64 = w.iter().sum();
    let mut combined = vec![0.0f64; n];
    for (scores, &weight) in proxy_scores.iter().zip(w) {
        let ranks = normalized_ranks(scores);
        for (c, r) in combined.iter_mut().zip(&ranks) {
            *c += weight * r;
        }
    }
    combined.iter_mut().for_each(|c| *c /= wsum);
    Ok(combined)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_normalised() {
        let r = normalized_ranks(&[-3.0, -1.0, -2.0]);
        assert_eq!(r, vec![0.0, 1.0, 0.5]);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = normalized_ranks(&[1.0, 1.0, 2.0]);
        // Tied pair shares rank (0+1)/2 = 0.5 -> 0.25 normalised.
        assert_eq!(r, vec![0.25, 0.25, 1.0]);
    }

    #[test]
    fn ranks_edge_cases() {
        assert!(normalized_ranks(&[]).is_empty());
        assert_eq!(normalized_ranks(&[7.0]), vec![1.0]);
    }

    #[test]
    fn ensemble_agreement_preserved() {
        // Both proxies agree model 2 is best, model 0 worst.
        let a = vec![-3.0, -2.0, -1.0];
        let b = vec![0.1, 0.5, 0.9];
        let e = rank_ensemble(&[a, b], None).unwrap();
        assert!(e[2] > e[1] && e[1] > e[0]);
        assert_eq!(e[2], 1.0);
        assert_eq!(e[0], 0.0);
    }

    #[test]
    fn ensemble_disagreement_averages() {
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        let e = rank_ensemble(&[a, b], None).unwrap();
        assert_eq!(e, vec![0.5, 0.5]);
    }

    #[test]
    fn weighted_ensemble_tilts() {
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        let e = rank_ensemble(&[a, b], Some(&[3.0, 1.0])).unwrap();
        assert!(e[0] > e[1]);
    }

    #[test]
    fn ensemble_validates() {
        assert!(rank_ensemble(&[], None).is_err());
        assert!(rank_ensemble(&[vec![]], None).is_err());
        assert!(rank_ensemble(&[vec![1.0], vec![1.0, 2.0]], None).is_err());
        assert!(rank_ensemble(&[vec![1.0]], Some(&[1.0, 2.0])).is_err());
        assert!(rank_ensemble(&[vec![1.0]], Some(&[-1.0])).is_err());
        assert!(rank_ensemble(&[vec![1.0]], Some(&[0.0])).is_err());
    }
}
