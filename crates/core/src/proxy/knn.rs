//! k-NN proxy (Renggli et al., CVPR 2022): leave-one-out k-nearest-neighbour
//! classification accuracy in the source model's feature space.
//!
//! A good source model maps target samples of the same class close together,
//! so LOO-kNN accuracy on its embeddings approximates post-fine-tuning
//! accuracy. The paper cites this as the alternative to LEEP that needs
//! "extra training"; we keep it for the proxy-ensemble extension.

use crate::error::{Result, SelectionError};

/// Leave-one-out k-NN accuracy over a row-major `n × d` feature matrix.
///
/// Ties in the vote are broken toward the nearest neighbour's class.
pub fn knn_proxy(
    features: &[f64],
    n: usize,
    d: usize,
    target_labels: &[usize],
    k: usize,
) -> Result<f64> {
    if n == 0 || d == 0 {
        return Err(SelectionError::Empty("feature matrix"));
    }
    if features.len() != n * d {
        return Err(SelectionError::DimensionMismatch {
            what: "feature matrix",
            expected: n * d,
            got: features.len(),
        });
    }
    if target_labels.len() != n {
        return Err(SelectionError::DimensionMismatch {
            what: "target labels",
            expected: n,
            got: target_labels.len(),
        });
    }
    if k == 0 || k >= n {
        return Err(SelectionError::InvalidConfig(format!(
            "k must be in 1..n (k={k}, n={n})"
        )));
    }

    let n_classes = target_labels.iter().max().map_or(0, |&m| m + 1);
    let mut correct = 0usize;
    let mut dists: Vec<(f64, usize)> = Vec::with_capacity(n - 1);
    let mut votes = vec![0usize; n_classes];

    for i in 0..n {
        dists.clear();
        let fi = &features[i * d..(i + 1) * d];
        for j in 0..n {
            if j == i {
                continue;
            }
            let fj = &features[j * d..(j + 1) * d];
            let dist: f64 = fi.iter().zip(fj).map(|(a, b)| (a - b) * (a - b)).sum();
            dists.push((dist, target_labels[j]));
        }
        dists.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        votes.iter_mut().for_each(|v| *v = 0);
        for &(_, label) in &dists[..k] {
            votes[label] += 1;
        }
        let max_votes = votes.iter().copied().max().unwrap_or(0);
        // Tie-break toward the closest neighbour among the tied classes.
        let predicted = dists[..k]
            .iter()
            .find(|(_, label)| votes[*label] == max_votes)
            .map(|&(_, label)| label)
            .unwrap_or(dists[0].1);
        if predicted == target_labels[i] {
            correct += 1;
        }
    }
    Ok(correct as f64 / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight clusters, one per class.
    fn clustered() -> (Vec<f64>, Vec<usize>) {
        let mut f = Vec::new();
        let mut y = Vec::new();
        for i in 0..6 {
            f.extend_from_slice(&[0.0 + i as f64 * 0.01, 0.0]);
            y.push(0);
        }
        for i in 0..6 {
            f.extend_from_slice(&[5.0 + i as f64 * 0.01, 5.0]);
            y.push(1);
        }
        (f, y)
    }

    #[test]
    fn separable_features_score_one() {
        let (f, y) = clustered();
        let acc = knn_proxy(&f, 12, 2, &y, 3).unwrap();
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn shuffled_labels_score_low() {
        let (f, mut y) = clustered();
        // Alternate labels across both blobs: every point's neighbours are
        // half right, half wrong.
        for (i, label) in y.iter_mut().enumerate() {
            *label = i % 2;
        }
        let acc = knn_proxy(&f, 12, 2, &y, 3).unwrap();
        assert!(acc < 0.8, "got {acc}");
    }

    #[test]
    fn k1_uses_nearest() {
        let f = vec![0.0, 1.0, 1.1, 5.0];
        let y = vec![0, 0, 1, 1];
        // Point 1 (x=1.0): nearest is point 2 (x=1.1, class 1) -> wrong.
        let acc = knn_proxy(&f, 4, 1, &y, 1).unwrap();
        assert!(acc < 1.0);
    }

    #[test]
    fn validates_input() {
        assert!(knn_proxy(&[], 0, 0, &[], 1).is_err());
        assert!(knn_proxy(&[1.0, 2.0], 2, 1, &[0, 1], 0).is_err());
        assert!(knn_proxy(&[1.0, 2.0], 2, 1, &[0, 1], 2).is_err());
        assert!(knn_proxy(&[1.0, 2.0], 2, 1, &[0], 1).is_err());
        assert!(knn_proxy(&[1.0], 2, 1, &[0, 1], 1).is_err());
    }

    #[test]
    fn accuracy_bounded() {
        let (f, y) = clustered();
        for k in [1, 3, 5] {
            let acc = knn_proxy(&f, 12, 2, &y, k).unwrap();
            assert!((0.0..=1.0).contains(&acc));
        }
    }
}
