//! NCE — Negative Conditional Entropy (Tran et al., ICCV 2019).
//!
//! A harder-edged cousin of LEEP: discretise the source predictions to hard
//! labels `z_i = argmax θ(x_i)` and score the transferability as the
//! negative conditional entropy of the target label given the source label,
//! `−H(Y | Z) = Σ_z P̂(z) Σ_y P̂(y|z) log P̂(y|z)`.
//!
//! Like LEEP it is `≤ 0` with higher = more transferable; unlike LEEP it
//! ignores prediction confidence, which makes it cheaper but coarser —
//! exactly the trade-off the ensemble proxy (future-work §VII) exploits.

use super::{validate_labels, PredictionMatrix};
use crate::error::Result;

/// Compute the NCE score from hard-labelled predictions.
pub fn nce(
    predictions: &PredictionMatrix,
    target_labels: &[usize],
    n_target_labels: usize,
) -> Result<f64> {
    validate_labels(predictions, target_labels, n_target_labels)?;
    let n = predictions.n_samples();
    let nz = predictions.n_source_labels();

    // Joint counts over (y, z).
    let mut joint = vec![0.0f64; n_target_labels * nz];
    for (i, &y) in target_labels.iter().enumerate() {
        let z = predictions.hard_label(i);
        joint[y * nz + z] += 1.0;
    }
    let inv_n = 1.0 / n as f64;

    // −H(Y|Z) = Σ_{y,z} P(y,z) log( P(y,z) / P(z) )
    let mut marginal_z = vec![0.0f64; nz];
    for y in 0..n_target_labels {
        for z in 0..nz {
            marginal_z[z] += joint[y * nz + z] * inv_n;
        }
    }
    let mut score = 0.0;
    for y in 0..n_target_labels {
        for z in 0..nz {
            let pyz = joint[y * nz + z] * inv_n;
            if pyz > 0.0 {
                score += pyz * (pyz / marginal_z[z]).ln();
            }
        }
    }
    Ok(score)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_mapping_scores_zero() {
        // z fully determines y -> H(Y|Z) = 0.
        let rows = vec![1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 1.0];
        let p = PredictionMatrix::new(2, rows).unwrap();
        let s = nce(&p, &[0, 0, 1, 1], 2).unwrap();
        assert!(s.abs() < 1e-12);
    }

    #[test]
    fn uninformative_mapping_scores_label_entropy() {
        // All samples get source label 0; H(Y|Z) = H(Y) = ln 2 for balanced
        // binary labels.
        let rows = vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        let p = PredictionMatrix::new(2, rows).unwrap();
        let s = nce(&p, &[0, 1, 0, 1], 2).unwrap();
        assert!((s + 2f64.ln()).abs() < 1e-12, "got {s}");
    }

    #[test]
    fn nce_nonpositive_and_ordered() {
        let y = vec![0, 0, 1, 1, 0, 1];
        let informative = PredictionMatrix::new(
            2,
            vec![0.9, 0.1, 0.8, 0.2, 0.2, 0.8, 0.1, 0.9, 0.7, 0.3, 0.3, 0.7],
        )
        .unwrap();
        let confused = PredictionMatrix::new(
            2,
            vec![0.9, 0.1, 0.2, 0.8, 0.9, 0.1, 0.2, 0.8, 0.6, 0.4, 0.6, 0.4],
        )
        .unwrap();
        let si = nce(&informative, &y, 2).unwrap();
        let sc = nce(&confused, &y, 2).unwrap();
        assert!(si <= 0.0 && sc <= 0.0);
        assert!(si > sc, "informative {si} vs confused {sc}");
    }

    #[test]
    fn validates_input() {
        let p = PredictionMatrix::new(2, vec![0.5, 0.5]).unwrap();
        assert!(nce(&p, &[0, 1], 2).is_err());
        assert!(nce(&p, &[5], 2).is_err());
    }
}
