//! Light-weight transferability proxy scores (paper §II-A, §III-B).
//!
//! A proxy score predicts `p(d | m)` — the post-fine-tuning accuracy of
//! model `m` on dataset `d` — **without fine-tuning**. The paper uses
//! [`leep`] (average log-likelihood of the expected empirical predictor);
//! this module also ships [`nce`], [`logme`] and [`knn`] as the
//! "combine different light-weight tasks" extension from the future-work
//! section, plus rank-average [`ensemble`]s over them.
//!
//! All scores operate on data a pre-trained model can produce cheaply with
//! a single inference pass over the target dataset: a [`PredictionMatrix`]
//! (soft-max outputs over the *source* label space) and/or a feature matrix
//! (penultimate-layer embeddings).

pub mod ensemble;
pub mod knn;
pub mod leep;
pub mod logme;
pub mod nce;

use crate::error::{Result, SelectionError};
use serde::{Deserialize, Serialize};

/// Row-stochastic `n_samples × n_source_labels` matrix of a source model's
/// predicted label distributions on the target dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionMatrix {
    n_source_labels: usize,
    /// Row-major probabilities.
    rows: Vec<f64>,
}

impl PredictionMatrix {
    /// Probability mass a row may deviate from 1 before being rejected.
    const ROW_SUM_TOLERANCE: f64 = 1e-6;

    /// Build from row-major probabilities, validating each row is a
    /// distribution.
    pub fn new(n_source_labels: usize, rows: Vec<f64>) -> Result<Self> {
        if n_source_labels == 0 {
            return Err(SelectionError::Empty("source label space"));
        }
        if rows.is_empty() || !rows.len().is_multiple_of(n_source_labels) {
            return Err(SelectionError::DimensionMismatch {
                what: "prediction rows",
                expected: n_source_labels,
                got: rows.len(),
            });
        }
        for (r, chunk) in rows.chunks(n_source_labels).enumerate() {
            let mut sum = 0.0;
            for &p in chunk {
                if !p.is_finite() || p < 0.0 {
                    return Err(SelectionError::InvalidValue {
                        what: "prediction probability",
                        value: p,
                    });
                }
                sum += p;
            }
            if (sum - 1.0).abs() > Self::ROW_SUM_TOLERANCE {
                return Err(SelectionError::NotADistribution { row: r, sum });
            }
        }
        Ok(Self {
            n_source_labels,
            rows,
        })
    }

    /// Number of target samples covered.
    #[inline]
    pub fn n_samples(&self) -> usize {
        self.rows.len() / self.n_source_labels
    }

    /// Size of the source label space `|Z|`.
    #[inline]
    pub fn n_source_labels(&self) -> usize {
        self.n_source_labels
    }

    /// The predicted distribution `θ(x_i)` for sample `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i * self.n_source_labels..(i + 1) * self.n_source_labels]
    }

    /// Hard source label `argmax_z θ(x_i)_z` for sample `i`.
    pub fn hard_label(&self, i: usize) -> usize {
        self.row(i)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(z, _)| z)
            .unwrap_or(0)
    }
}

/// Validate a `(predictions, labels, n_target_labels)` triple shared by the
/// prediction-based proxies.
pub(crate) fn validate_labels(
    predictions: &PredictionMatrix,
    target_labels: &[usize],
    n_target_labels: usize,
) -> Result<()> {
    if target_labels.len() != predictions.n_samples() {
        return Err(SelectionError::DimensionMismatch {
            what: "target labels",
            expected: predictions.n_samples(),
            got: target_labels.len(),
        });
    }
    if n_target_labels == 0 {
        return Err(SelectionError::Empty("target label space"));
    }
    if let Some(&bad) = target_labels.iter().find(|&&y| y >= n_target_labels) {
        return Err(SelectionError::UnknownId {
            what: "target label",
            id: bad,
        });
    }
    Ok(())
}

/// Min-max normalise scores to `[0, 1]` (paper §III-B: "normalize score
/// between \[0,1\]"). Constant inputs map to all-0.5 so that downstream
/// products neither zero-out nor dominate.
pub fn normalize_scores(scores: &[f64]) -> Vec<f64> {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &s in scores {
        lo = lo.min(s);
        hi = hi.max(s);
    }
    if !lo.is_finite() || !hi.is_finite() || (hi - lo) < 1e-12 {
        return vec![0.5; scores.len()];
    }
    scores.iter().map(|&s| (s - lo) / (hi - lo)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_matrix_accessors() {
        let p = PredictionMatrix::new(2, vec![0.9, 0.1, 0.3, 0.7]).unwrap();
        assert_eq!(p.n_samples(), 2);
        assert_eq!(p.n_source_labels(), 2);
        assert_eq!(p.row(1), &[0.3, 0.7]);
        assert_eq!(p.hard_label(0), 0);
        assert_eq!(p.hard_label(1), 1);
    }

    #[test]
    fn rejects_non_distribution() {
        assert!(matches!(
            PredictionMatrix::new(2, vec![0.9, 0.3]),
            Err(SelectionError::NotADistribution { row: 0, .. })
        ));
        assert!(PredictionMatrix::new(2, vec![-0.1, 1.1]).is_err());
        assert!(PredictionMatrix::new(2, vec![f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn rejects_shape_errors() {
        assert!(PredictionMatrix::new(0, vec![]).is_err());
        assert!(PredictionMatrix::new(2, vec![1.0]).is_err());
        assert!(PredictionMatrix::new(2, vec![]).is_err());
    }

    #[test]
    fn label_validation() {
        let p = PredictionMatrix::new(2, vec![0.5, 0.5]).unwrap();
        assert!(validate_labels(&p, &[0], 1).is_ok());
        assert!(validate_labels(&p, &[1], 1).is_err());
        assert!(validate_labels(&p, &[0, 0], 1).is_err());
        assert!(validate_labels(&p, &[0], 0).is_err());
    }

    #[test]
    fn normalize_maps_to_unit_interval() {
        let n = normalize_scores(&[-3.0, -1.0, -2.0]);
        assert_eq!(n, vec![0.0, 1.0, 0.5]);
    }

    #[test]
    fn normalize_constant_input() {
        assert_eq!(normalize_scores(&[2.0, 2.0]), vec![0.5, 0.5]);
        assert!(normalize_scores(&[]).is_empty());
    }
}
