//! End-to-end two-phase selection (paper §II-B, Fig. 2).
//!
//! **Offline** (once per repository): build the performance matrix and curve
//! set by fine-tuning every model on the benchmark datasets, derive the
//! similarity matrix, the model clustering, and the per-model convergence
//! trend book — [`OfflineArtifacts`].
//!
//! **Online** (per target task): [`two_phase_select`] runs coarse-recall
//! (proxy scores for cluster representatives only) and hands the recalled
//! top-K to fine-selection, returning the chosen model with full epoch
//! accounting (`CR` proxy epochs + `FS` training epochs, the Table VI
//! "2PH" runtime).

use crate::cluster::dbscan::{dbscan, DbscanConfig};
use crate::cluster::hierarchical::{hierarchical_k, hierarchical_threshold, Linkage};
use crate::cluster::kmeans::{kmeans, KMeansConfig};
use crate::cluster::Clustering;
use crate::curve::CurveSet;
use crate::error::{Result, SelectionError};
use crate::matrix::PerformanceMatrix;
use crate::parallel::ParallelConfig;
use crate::proxy::leep::leep;
use crate::recall::{coarse_recall_par, RecallConfig, RecallOutcome};
use crate::select::fine::{fine_selection_par, FineSelectionConfig};
use crate::select::SelectionOutcome;
use crate::similarity::SimilarityMatrix;
use crate::traits::{ProxyOracle, TargetTrainer};
use crate::trend::{TrendBook, TrendConfig};
use crate::budget::EpochLedger;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How to cluster the model repository offline.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum ClusterMethod {
    /// Average-linkage agglomerative clustering cut at a distance threshold
    /// — the paper's configuration; naturally yields singleton clusters.
    HierarchicalThreshold(f64),
    /// Average-linkage agglomerative clustering cut to `k` clusters.
    HierarchicalK(usize),
    /// K-means with `k` clusters and a fixed seed (Table I / XI baseline).
    KMeans {
        /// Number of clusters.
        k: usize,
        /// RNG seed for k-means++ restarts.
        seed: u64,
    },
    /// DBSCAN at radius `eps` with `min_points` density — families become
    /// clusters, oddballs become singletons, no cluster count needed.
    Dbscan {
        /// Neighbourhood radius in Eq. 1 distance units.
        eps: f64,
        /// Core-point density (2 mirrors the paper's non-singleton notion).
        min_points: usize,
    },
}

/// Offline-phase configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OfflineConfig {
    /// `k` of the top-k similarity (Eq. 1); the paper picks 5 (Table X).
    pub similarity_top_k: usize,
    /// Clustering algorithm and granularity.
    pub cluster: ClusterMethod,
    /// Convergence-trend mining parameters.
    pub trend: TrendConfig,
    /// Stages to mine trends for (clamped to the recorded curves).
    pub trend_stages: usize,
    /// Worker threads for the pairwise-similarity and trend-mining loops
    /// (serial by default; results are identical for any thread count).
    pub parallel: ParallelConfig,
}

impl Default for OfflineConfig {
    fn default() -> Self {
        Self {
            similarity_top_k: 5,
            cluster: ClusterMethod::HierarchicalThreshold(0.05),
            trend: TrendConfig::default(),
            trend_stages: 8,
            parallel: ParallelConfig::serial(),
        }
    }
}

/// Everything the online phases need, computed once per repository.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OfflineArtifacts {
    /// The performance matrix `Matrix(D, M)`.
    pub matrix: PerformanceMatrix,
    /// Eq. 1 model-similarity matrix.
    pub similarity: SimilarityMatrix,
    /// Model clustering `MC`.
    pub clustering: Clustering,
    /// Per-model convergence trends `CT`.
    pub trends: TrendBook,
}

impl OfflineArtifacts {
    /// Build all offline artifacts from recorded fine-tuning results.
    pub fn build(
        matrix: PerformanceMatrix,
        curves: &CurveSet,
        config: &OfflineConfig,
    ) -> Result<Self> {
        if curves.n_models() != matrix.n_models() || curves.n_datasets() != matrix.n_datasets() {
            return Err(SelectionError::DimensionMismatch {
                what: "curve set vs matrix",
                expected: matrix.n_models() * matrix.n_datasets(),
                got: curves.n_models() * curves.n_datasets(),
            });
        }
        let threads = config.parallel.resolve();
        let similarity =
            SimilarityMatrix::from_performance_par(&matrix, config.similarity_top_k, threads)?;
        let clustering = cluster_models(&matrix, &similarity, config.cluster)?;
        let trends = TrendBook::mine_par(curves, config.trend_stages, &config.trend, threads)?;
        Ok(Self {
            matrix,
            similarity,
            clustering,
            trends,
        })
    }
}

/// Cluster the repository per the configured method.
pub fn cluster_models(
    matrix: &PerformanceMatrix,
    similarity: &SimilarityMatrix,
    method: ClusterMethod,
) -> Result<Clustering> {
    let n = matrix.n_models();
    match method {
        ClusterMethod::HierarchicalThreshold(t) => {
            hierarchical_threshold(&similarity.distance_matrix(), n, t, Linkage::Average)
        }
        ClusterMethod::HierarchicalK(k) => {
            hierarchical_k(&similarity.distance_matrix(), n, k, Linkage::Average)
        }
        ClusterMethod::KMeans { k, seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            kmeans(
                &matrix.model_vectors(),
                &KMeansConfig {
                    k,
                    ..Default::default()
                },
                &mut rng,
            )
        }
        ClusterMethod::Dbscan { eps, min_points } => dbscan(
            &similarity.distance_matrix(),
            n,
            &DbscanConfig { eps, min_points },
        ),
    }
}

/// Online-phase configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Coarse-recall settings (`K = 10` in the paper).
    pub recall: RecallConfig,
    /// Fine-selection settings (0% threshold in the paper).
    pub fine: FineSelectionConfig,
    /// Total fine-tuning stages `T` (5 for NLP, 4 for CV in the paper).
    pub total_stages: usize,
    /// Worker threads for proxy scoring and per-stage training fan-out
    /// (serial by default; results are identical for any thread count).
    pub parallel: ParallelConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            recall: RecallConfig::default(),
            fine: FineSelectionConfig::default(),
            total_stages: 5,
            parallel: ParallelConfig::serial(),
        }
    }
}

/// Outcome of one end-to-end two-phase selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineOutcome {
    /// Coarse-recall phase result.
    pub recall: RecallOutcome,
    /// Fine-selection phase result.
    pub selection: SelectionOutcome,
    /// Combined epoch-equivalents (proxy inference + fine-tuning) — the
    /// Table VI "2PH Runtime".
    pub ledger: EpochLedger,
}

/// Run the full online pipeline for one target task.
///
/// `oracle` supplies prediction matrices for LEEP; `trainer` fine-tunes on
/// the target dataset.
pub fn two_phase_select(
    artifacts: &OfflineArtifacts,
    oracle: &(dyn ProxyOracle + Sync),
    trainer: &mut dyn TargetTrainer,
    config: &PipelineConfig,
) -> Result<PipelineOutcome> {
    let threads = config.parallel.resolve();
    let recall = coarse_recall_par(
        &artifacts.matrix,
        &artifacts.clustering,
        &artifacts.similarity,
        &config.recall,
        threads,
        |rep| {
            let predictions = oracle.predictions(rep)?;
            leep(
                &predictions,
                oracle.target_labels(),
                oracle.n_target_labels(),
            )
        },
    )?;
    let selection = fine_selection_par(
        trainer,
        &recall.recalled,
        config.total_stages,
        &artifacts.trends,
        &config.fine,
        threads,
    )?;
    let mut ledger = EpochLedger::new();
    ledger.charge_proxy(recall.proxy_epochs);
    ledger.merge(&selection.ledger);
    Ok(PipelineOutcome {
        recall,
        selection,
        ledger,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::LearningCurve;
    use crate::ids::ModelId;
    use crate::proxy::PredictionMatrix;
    use crate::traits::test_support::ScriptedTrainer;

    /// 6 models: ids 0-2 a strong family, 3-4 a weak family, 5 a singleton.
    fn fixture() -> (OfflineArtifacts, usize) {
        let stages = 4;
        let strong = |seed: f64| {
            vec![
                0.80 + seed,
                0.82 + seed,
                0.20 + seed,
                0.22 + seed,
                0.81 + seed,
            ]
        };
        let weak = |seed: f64| {
            vec![
                0.40 + seed,
                0.42 + seed,
                0.35 + seed,
                0.36 + seed,
                0.41 + seed,
            ]
        };
        // Rows are datasets: build model columns then transpose.
        let cols = [strong(0.00),
            strong(0.01),
            strong(0.02),
            weak(0.00),
            weak(0.01),
            vec![0.60, 0.10, 0.55, 0.12, 0.58]];
        let n_datasets = 5;
        let rows: Vec<Vec<f64>> = (0..n_datasets)
            .map(|d| cols.iter().map(|c| c[d]).collect())
            .collect();
        let matrix = PerformanceMatrix::new(
            (0..6).map(|i| format!("model-{i}")).collect(),
            (0..n_datasets).map(|i| format!("bench-{i}")).collect(),
            rows,
        )
        .unwrap();
        let curves = CurveSet::from_fn(6, n_datasets, |m, d| {
            let final_acc = matrix.accuracy(d, m);
            let vals = (0..stages)
                .map(|t| final_acc * (0.6 + 0.4 * (t + 1) as f64 / stages as f64))
                .collect();
            LearningCurve::new(vals, final_acc).unwrap()
        })
        .unwrap();
        let artifacts = OfflineArtifacts::build(
            matrix,
            &curves,
            &OfflineConfig {
                cluster: ClusterMethod::HierarchicalThreshold(0.08),
                trend: TrendConfig {
                    n_trends: 2,
                    max_iter: 32,
                },
                ..Default::default()
            },
        )
        .unwrap();
        (artifacts, stages)
    }

    struct FixtureOracle {
        labels: Vec<usize>,
    }

    impl ProxyOracle for FixtureOracle {
        fn predictions(&self, model: ModelId) -> Result<PredictionMatrix> {
            // Strong family (0-2) aligns with target labels; others are
            // uninformative.
            let informative = model.index() <= 2;
            let mut rows = Vec::new();
            for &y in &self.labels {
                if informative {
                    rows.extend_from_slice(if y == 0 { &[0.9, 0.1] } else { &[0.1, 0.9] });
                } else {
                    rows.extend_from_slice(&[0.5, 0.5]);
                }
            }
            PredictionMatrix::new(2, rows)
        }

        fn target_labels(&self) -> &[usize] {
            &self.labels
        }

        fn n_target_labels(&self) -> usize {
            2
        }
    }

    #[test]
    fn offline_artifacts_cluster_families() {
        let (artifacts, _) = fixture();
        let c = &artifacts.clustering;
        assert_eq!(c.cluster_of(ModelId(0)), c.cluster_of(ModelId(1)));
        assert_eq!(c.cluster_of(ModelId(0)), c.cluster_of(ModelId(2)));
        assert_eq!(c.cluster_of(ModelId(3)), c.cluster_of(ModelId(4)));
        assert_ne!(c.cluster_of(ModelId(0)), c.cluster_of(ModelId(3)));
        assert_ne!(c.cluster_of(ModelId(5)), c.cluster_of(ModelId(0)));
        assert!(!c.in_non_singleton(ModelId(5)));
    }

    #[test]
    fn end_to_end_selects_a_strong_model() {
        let (artifacts, stages) = fixture();
        let oracle = FixtureOracle {
            labels: vec![0, 1, 0, 1, 0, 1],
        };
        // Target curves: strong family performs well on the target, others
        // do not.
        let curves: Vec<Vec<f64>> = (0..6)
            .map(|m| {
                let ceiling = if m <= 2 { 0.85 + 0.01 * m as f64 } else { 0.4 };
                (0..stages)
                    .map(|t| ceiling * (0.7 + 0.3 * (t + 1) as f64 / stages as f64))
                    .collect()
            })
            .collect();
        let mut trainer = ScriptedTrainer::from_val_curves(curves);
        let out = two_phase_select(
            &artifacts,
            &oracle,
            &mut trainer,
            &PipelineConfig {
                recall: RecallConfig {
                    top_k: 3,
                    ..Default::default()
                },
                total_stages: stages,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.selection.winner.index() <= 2, "winner {:?}", out.selection.winner);
        // Proxy epochs: 2 non-singleton clusters scored at 0.5 each.
        assert_eq!(out.ledger.proxy_epochs(), 1.0);
        assert!(out.ledger.total() < 6.0 * stages as f64, "cheaper than BF");
        // The recall phase must rank the strong family first.
        assert!(out.recall.recalled.iter().all(|m| m.index() <= 2));
    }

    #[test]
    fn artifacts_build_rejects_mismatched_curves() {
        let (artifacts, _) = fixture();
        let bad_curves = CurveSet::from_fn(2, 2, |_, _| {
            LearningCurve::new(vec![0.5], 0.5).unwrap()
        })
        .unwrap();
        assert!(OfflineArtifacts::build(
            artifacts.matrix.clone(),
            &bad_curves,
            &OfflineConfig::default()
        )
        .is_err());
    }

    #[test]
    fn cluster_method_variants_run() {
        let (artifacts, _) = fixture();
        for method in [
            ClusterMethod::HierarchicalThreshold(0.1),
            ClusterMethod::HierarchicalK(3),
            ClusterMethod::KMeans { k: 3, seed: 7 },
            ClusterMethod::Dbscan { eps: 0.08, min_points: 2 },
        ] {
            let c = cluster_models(&artifacts.matrix, &artifacts.similarity, method).unwrap();
            assert_eq!(c.n_models(), 6);
        }
    }
}
