//! End-to-end two-phase selection (paper §II-B, Fig. 2).
//!
//! **Offline** (once per repository): build the performance matrix and curve
//! set by fine-tuning every model on the benchmark datasets, derive the
//! similarity matrix, the model clustering, and the per-model convergence
//! trend book — [`OfflineArtifacts`].
//!
//! **Online** (per target task): [`two_phase_select`] runs coarse-recall
//! (proxy scores for cluster representatives only) and hands the recalled
//! top-K to fine-selection, returning the chosen model with full epoch
//! accounting (`CR` proxy epochs + `FS` training epochs, the Table VI
//! "2PH" runtime).

use crate::ann::{AnnConfig, AnnIndex, AnnMode, AnnRepIndex};
use crate::budget::EpochLedger;
use crate::cluster::dbscan::{dbscan, DbscanConfig};
use crate::cluster::hierarchical::{hierarchical_k, hierarchical_threshold, Linkage};
use crate::cluster::kmeans::{kmeans, KMeansConfig};
use crate::cluster::knn::knn_threshold_components;
use crate::cluster::Clustering;
use crate::curve::CurveSet;
use crate::error::{Result, SelectionError};
use crate::fault::Casualty;
use crate::matrix::PerformanceMatrix;
use crate::parallel::ParallelConfig;
use crate::proxy::leep::leep;
use crate::recall::{coarse_recall_ann_traced, scored_cluster_set, RecallConfig, RecallOutcome};
use crate::select::fine::{fine_selection_traced, FineSelectionConfig};
use crate::select::SelectionOutcome;
use crate::similarity::SimilarityMatrix;
use crate::telemetry::Telemetry;
use crate::traits::{ProxyOracle, TargetTrainer};
use crate::trend::{TrendBook, TrendConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How to cluster the model repository offline.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum ClusterMethod {
    /// Average-linkage agglomerative clustering cut at a distance threshold
    /// — the paper's configuration; naturally yields singleton clusters.
    HierarchicalThreshold(f64),
    /// Average-linkage agglomerative clustering cut to `k` clusters.
    HierarchicalK(usize),
    /// K-means with `k` clusters and a fixed seed (Table I / XI baseline).
    KMeans {
        /// Number of clusters.
        k: usize,
        /// RNG seed for k-means++ restarts.
        seed: u64,
    },
    /// DBSCAN at radius `eps` with `min_points` density — families become
    /// clusters, oddballs become singletons, no cluster count needed.
    Dbscan {
        /// Neighbourhood radius in Eq. 1 distance units.
        eps: f64,
        /// Core-point density (2 mirrors the paper's non-singleton notion).
        min_points: usize,
    },
}

/// Offline-phase configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OfflineConfig {
    /// `k` of the top-k similarity (Eq. 1); the paper picks 5 (Table X).
    pub similarity_top_k: usize,
    /// Clustering algorithm and granularity.
    pub cluster: ClusterMethod,
    /// Convergence-trend mining parameters.
    pub trend: TrendConfig,
    /// Stages to mine trends for (clamped to the recorded curves).
    pub trend_stages: usize,
    /// Worker threads for the pairwise-similarity and trend-mining loops
    /// (serial by default; results are identical for any thread count).
    pub parallel: ParallelConfig,
    /// ANN exactness knob. `Exact` (default) keeps the dense O(M²) build;
    /// `Indexed` builds an HNSW-style index instead, replacing the dense
    /// similarity matrix with lazy storage and dense agglomeration with
    /// thresholded-kNN components. Defaults for configs serialized before
    /// the field existed.
    #[serde(default)]
    pub ann: AnnConfig,
}

impl Default for OfflineConfig {
    fn default() -> Self {
        Self {
            similarity_top_k: 5,
            cluster: ClusterMethod::HierarchicalThreshold(0.05),
            trend: TrendConfig::default(),
            trend_stages: 8,
            parallel: ParallelConfig::serial(),
            ann: AnnConfig::default(),
        }
    }
}

/// Everything the online phases need, computed once per repository.
#[derive(Debug, Clone)]
pub struct OfflineArtifacts {
    /// The performance matrix `Matrix(D, M)`.
    pub matrix: PerformanceMatrix,
    /// Eq. 1 model-similarity matrix.
    pub similarity: SimilarityMatrix,
    /// Model clustering `MC`.
    pub clustering: Clustering,
    /// Per-model convergence trends `CT`.
    pub trends: TrendBook,
    /// Representative ANN index over the scored clusters, present only on
    /// indexed builds — online recall reuses it instead of rebuilding one
    /// per query.
    pub ann: Option<AnnRepIndex>,
}

// Manual serde keeps exact-mode artifact JSON byte-identical to pre-index
// builds: the `ann` key is written only when an index exists, and absent
// keys deserialize to `None` (older artifact files keep loading).
impl Serialize for OfflineArtifacts {
    fn serialize_value(&self) -> serde::value::Value {
        let mut m = serde::value::Map::new();
        m.insert("matrix".into(), self.matrix.serialize_value());
        m.insert("similarity".into(), self.similarity.serialize_value());
        m.insert("clustering".into(), self.clustering.serialize_value());
        m.insert("trends".into(), self.trends.serialize_value());
        if let Some(ann) = &self.ann {
            m.insert("ann".into(), ann.serialize_value());
        }
        serde::value::Value::Object(m)
    }
}

impl Deserialize for OfflineArtifacts {
    fn deserialize_value(v: &serde::value::Value) -> std::result::Result<Self, serde::Error> {
        let m = serde::__private::expect_object(v, "OfflineArtifacts")?;
        let ann = match m.get("ann") {
            None | Some(serde::value::Value::Null) => None,
            Some(v) => Some(AnnRepIndex::deserialize_value(v)?),
        };
        Ok(Self {
            matrix: serde::__private::field(m, "matrix")?,
            similarity: serde::__private::field(m, "similarity")?,
            clustering: serde::__private::field(m, "clustering")?,
            trends: serde::__private::field(m, "trends")?,
            ann,
        })
    }
}

impl OfflineArtifacts {
    /// Build all offline artifacts from recorded fine-tuning results.
    pub fn build(
        matrix: PerformanceMatrix,
        curves: &CurveSet,
        config: &OfflineConfig,
    ) -> Result<Self> {
        Self::build_traced(matrix, curves, config, &Telemetry::disabled())
    }

    /// [`Self::build`] with telemetry: an `offline.build` span with
    /// `offline.{similarity, cluster, trends}` children timing each
    /// derivation step, plus `offline.{models, datasets, clusters}`
    /// counters. The artifacts are identical to the untraced build.
    pub fn build_traced(
        matrix: PerformanceMatrix,
        curves: &CurveSet,
        config: &OfflineConfig,
        tel: &Telemetry,
    ) -> Result<Self> {
        if curves.n_models() != matrix.n_models() || curves.n_datasets() != matrix.n_datasets() {
            return Err(SelectionError::DimensionMismatch {
                what: "curve set vs matrix",
                expected: matrix.n_models() * matrix.n_datasets(),
                got: curves.n_models() * curves.n_datasets(),
            });
        }
        let _span = tel.span("offline.build");
        tel.add("offline.models", matrix.n_models() as f64);
        tel.add("offline.datasets", matrix.n_datasets() as f64);
        let threads = config.parallel.resolve();
        let (similarity, clustering, ann) = match config.ann.mode {
            AnnMode::Exact => {
                let similarity = {
                    let _s = tel.span("offline.similarity");
                    SimilarityMatrix::from_performance_par(
                        &matrix,
                        config.similarity_top_k,
                        threads,
                    )?
                };
                let clustering = {
                    let _s = tel.span("offline.cluster");
                    cluster_models(&matrix, &similarity, config.cluster)?
                };
                (similarity, clustering, None)
            }
            AnnMode::Indexed => {
                config.ann.validate()?;
                let threshold = match config.cluster {
                    ClusterMethod::HierarchicalThreshold(t) => t,
                    other => {
                        return Err(SelectionError::InvalidConfig(format!(
                            "indexed offline build supports only \
                             HierarchicalThreshold clustering, got {other:?}"
                        )))
                    }
                };
                let vectors = Arc::new(matrix.model_vectors());
                let similarity = {
                    let _s = tel.span("offline.similarity");
                    SimilarityMatrix::lazy_from_vectors(
                        Arc::clone(&vectors),
                        config.similarity_top_k,
                    )?
                };
                let clustering = {
                    let _s = tel.span("offline.cluster");
                    let index = AnnIndex::build(
                        vectors.as_ref().clone(),
                        config.similarity_top_k,
                        &config.ann,
                    )?;
                    tel.add("ann.index_nodes", index.len() as f64);
                    tel.add("ann.knn_k", config.ann.k as f64);
                    let lists = index.knn_lists(config.ann.k, config.ann.ef_search, threads);
                    tel.add(
                        "ann.knn_edges",
                        lists.iter().map(Vec::len).sum::<usize>() as f64,
                    );
                    knn_threshold_components(matrix.n_models(), &lists, threshold)?
                };
                let reps = clustering.representatives(&matrix)?;
                let scored = scored_cluster_set(&clustering);
                let rep_index = AnnRepIndex::build(
                    &matrix,
                    &reps,
                    &scored,
                    config.similarity_top_k,
                    &config.ann,
                )?;
                (similarity, clustering, Some(rep_index))
            }
        };
        tel.add("offline.clusters", clustering.n_clusters() as f64);
        let trends = {
            let _s = tel.span("offline.trends");
            TrendBook::mine_par(curves, config.trend_stages, &config.trend, threads)?
        };
        Ok(Self {
            matrix,
            similarity,
            clustering,
            trends,
            ann,
        })
    }
}

/// Cluster the repository per the configured method.
pub fn cluster_models(
    matrix: &PerformanceMatrix,
    similarity: &SimilarityMatrix,
    method: ClusterMethod,
) -> Result<Clustering> {
    let n = matrix.n_models();
    match method {
        ClusterMethod::HierarchicalThreshold(t) => {
            hierarchical_threshold(&similarity.distance_matrix(), n, t, Linkage::Average)
        }
        ClusterMethod::HierarchicalK(k) => {
            hierarchical_k(&similarity.distance_matrix(), n, k, Linkage::Average)
        }
        ClusterMethod::KMeans { k, seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            kmeans(
                &matrix.model_vectors(),
                &KMeansConfig {
                    k,
                    ..Default::default()
                },
                &mut rng,
            )
        }
        ClusterMethod::Dbscan { eps, min_points } => dbscan(
            &similarity.distance_matrix(),
            n,
            &DbscanConfig { eps, min_points },
        ),
    }
}

/// Online-phase configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Coarse-recall settings (`K = 10` in the paper).
    pub recall: RecallConfig,
    /// Fine-selection settings (0% threshold in the paper).
    pub fine: FineSelectionConfig,
    /// Total fine-tuning stages `T` (5 for NLP, 4 for CV in the paper).
    pub total_stages: usize,
    /// Worker threads for proxy scoring and per-stage training fan-out
    /// (serial by default; results are identical for any thread count).
    pub parallel: ParallelConfig,
    /// ANN exactness knob for coarse recall. `Exact` (default) proxy-scores
    /// every representative; `Indexed` restricts proxy scoring to seed
    /// clusters plus index neighbours (`O(k·log M)` fan-out). Defaults for
    /// configs serialized before the field existed.
    #[serde(default)]
    pub ann: AnnConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            recall: RecallConfig::default(),
            fine: FineSelectionConfig::default(),
            total_stages: 5,
            parallel: ParallelConfig::serial(),
            ann: AnnConfig::default(),
        }
    }
}

/// Deterministic accounting summary of one pipeline run, derived from the
/// phase outcomes. Unlike span timings (which are machine-dependent and
/// live only in the trace JSON), every field here is a pure function of the
/// selection trajectory — serial and parallel runs produce identical
/// values, so the struct participates in [`PipelineOutcome`]'s equality.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineCounters {
    /// Proxy evaluations run during coarse-recall (one per scored cluster
    /// representative).
    pub proxy_evals: usize,
    /// Models recalled into fine-selection.
    pub recalled: usize,
    /// Fine-selection stages run.
    pub stages: usize,
    /// Candidate-pool size at the start of each stage.
    pub pool_per_stage: Vec<usize>,
    /// Models removed (dominated + halving cut) at each stage.
    pub filtered_per_stage: Vec<usize>,
    /// Models surviving each stage (`pool - filtered`).
    pub survivors_per_stage: Vec<usize>,
    /// Epoch-equivalents spent on proxy inference.
    pub proxy_epochs: f64,
    /// Epochs spent fine-tuning.
    pub train_epochs: f64,
    /// Total epoch-equivalents — the Table VI "2PH Runtime".
    pub total_epochs: f64,
}

impl PipelineCounters {
    /// Derive the counters from the two phase outcomes and the combined
    /// ledger.
    pub fn from_phases(
        recall: &RecallOutcome,
        selection: &SelectionOutcome,
        ledger: &EpochLedger,
    ) -> Self {
        let pool_per_stage: Vec<usize> = selection.pool_history.iter().map(Vec::len).collect();
        let filtered_per_stage: Vec<usize> = (0..pool_per_stage.len())
            .map(|t| selection.events.iter().filter(|e| e.stage == t).count())
            .collect();
        let survivors_per_stage: Vec<usize> = pool_per_stage
            .iter()
            .zip(&filtered_per_stage)
            .map(|(&pool, &filtered)| pool - filtered)
            .collect();
        Self {
            proxy_evals: recall.cluster_proxy.iter().flatten().count(),
            recalled: recall.recalled.len(),
            stages: pool_per_stage.len(),
            pool_per_stage,
            filtered_per_stage,
            survivors_per_stage,
            proxy_epochs: ledger.proxy_epochs(),
            train_epochs: ledger.train_epochs(),
            total_epochs: ledger.total(),
        }
    }
}

/// Outcome of one end-to-end two-phase selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineOutcome {
    /// Coarse-recall phase result.
    pub recall: RecallOutcome,
    /// Fine-selection phase result.
    pub selection: SelectionOutcome,
    /// Combined epoch-equivalents (proxy inference + fine-tuning) — the
    /// Table VI "2PH Runtime".
    pub ledger: EpochLedger,
    /// Deterministic per-phase accounting (proxy evaluations, pool sizes,
    /// filter counts, epochs). Defaults for artifacts serialized before the
    /// field existed.
    #[serde(default)]
    pub counters: PipelineCounters,
    /// Models quarantined across both phases (recall first, then
    /// fine-selection in stage order). Empty on a fault-free run; defaults
    /// for artifacts serialized before the field existed.
    #[serde(default)]
    pub casualties: Vec<Casualty>,
}

/// Run the full online pipeline for one target task.
///
/// `oracle` supplies prediction matrices for LEEP; `trainer` fine-tunes on
/// the target dataset.
pub fn two_phase_select(
    artifacts: &OfflineArtifacts,
    oracle: &(dyn ProxyOracle + Sync),
    trainer: &mut dyn TargetTrainer,
    config: &PipelineConfig,
) -> Result<PipelineOutcome> {
    two_phase_select_traced(artifacts, oracle, trainer, config, &Telemetry::disabled())
}

/// [`two_phase_select`] with telemetry: a `pipeline.two_phase_select` span
/// wrapping the `recall.coarse` and `select.fine` phase spans, plus every
/// counter those phases record. The returned outcome (including its
/// [`PipelineCounters`]) is identical to the untraced run for any thread
/// count; only span durations vary.
pub fn two_phase_select_traced(
    artifacts: &OfflineArtifacts,
    oracle: &(dyn ProxyOracle + Sync),
    trainer: &mut dyn TargetTrainer,
    config: &PipelineConfig,
    tel: &Telemetry,
) -> Result<PipelineOutcome> {
    let _span = tel.span("pipeline.two_phase_select");
    let threads = config.parallel.resolve();
    let recall = coarse_recall_ann_traced(
        &artifacts.matrix,
        &artifacts.clustering,
        &artifacts.similarity,
        &config.recall,
        &config.ann,
        artifacts.ann.as_ref(),
        threads,
        |rep| {
            let predictions = oracle.predictions(rep)?;
            leep(
                &predictions,
                oracle.target_labels(),
                oracle.n_target_labels(),
            )
        },
        tel,
    )?;
    let selection = fine_selection_traced(
        trainer,
        &recall.recalled,
        config.total_stages,
        &artifacts.trends,
        &config.fine,
        threads,
        tel,
    )?;
    Ok(assemble_outcome(recall, selection))
}

/// Combine the two phase outcomes into a [`PipelineOutcome`]: charge the
/// proxy epochs, merge the fine-selection ledger, derive the deterministic
/// counters and chain the casualty lists (recall first, then fine-selection
/// in stage order). Shared by [`two_phase_select_traced`] and by serving
/// planes that run the phases themselves (e.g. sharded scatter/gather).
pub fn assemble_outcome(recall: RecallOutcome, selection: SelectionOutcome) -> PipelineOutcome {
    let mut ledger = EpochLedger::new();
    ledger.charge_proxy(recall.proxy_epochs);
    ledger.merge(&selection.ledger);
    let counters = PipelineCounters::from_phases(&recall, &selection, &ledger);
    let casualties: Vec<Casualty> = recall
        .casualties
        .iter()
        .chain(&selection.casualties)
        .cloned()
        .collect();
    PipelineOutcome {
        recall,
        selection,
        ledger,
        counters,
        casualties,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::LearningCurve;
    use crate::ids::ModelId;
    use crate::proxy::PredictionMatrix;
    use crate::traits::test_support::ScriptedTrainer;

    /// 6 models: ids 0-2 a strong family, 3-4 a weak family, 5 a singleton.
    fn fixture() -> (OfflineArtifacts, usize) {
        let stages = 4;
        let strong = |seed: f64| {
            vec![
                0.80 + seed,
                0.82 + seed,
                0.20 + seed,
                0.22 + seed,
                0.81 + seed,
            ]
        };
        let weak = |seed: f64| {
            vec![
                0.40 + seed,
                0.42 + seed,
                0.35 + seed,
                0.36 + seed,
                0.41 + seed,
            ]
        };
        // Rows are datasets: build model columns then transpose.
        let cols = [
            strong(0.00),
            strong(0.01),
            strong(0.02),
            weak(0.00),
            weak(0.01),
            vec![0.60, 0.10, 0.55, 0.12, 0.58],
        ];
        let n_datasets = 5;
        let rows: Vec<Vec<f64>> = (0..n_datasets)
            .map(|d| cols.iter().map(|c| c[d]).collect())
            .collect();
        let matrix = PerformanceMatrix::new(
            (0..6).map(|i| format!("model-{i}")).collect(),
            (0..n_datasets).map(|i| format!("bench-{i}")).collect(),
            rows,
        )
        .unwrap();
        let curves = CurveSet::from_fn(6, n_datasets, |m, d| {
            let final_acc = matrix.accuracy(d, m);
            let vals = (0..stages)
                .map(|t| final_acc * (0.6 + 0.4 * (t + 1) as f64 / stages as f64))
                .collect();
            LearningCurve::new(vals, final_acc).unwrap()
        })
        .unwrap();
        let artifacts = OfflineArtifacts::build(
            matrix,
            &curves,
            &OfflineConfig {
                cluster: ClusterMethod::HierarchicalThreshold(0.08),
                trend: TrendConfig {
                    n_trends: 2,
                    max_iter: 32,
                },
                ..Default::default()
            },
        )
        .unwrap();
        (artifacts, stages)
    }

    struct FixtureOracle {
        labels: Vec<usize>,
    }

    impl ProxyOracle for FixtureOracle {
        fn predictions(&self, model: ModelId) -> Result<PredictionMatrix> {
            // Strong family (0-2) aligns with target labels; others are
            // uninformative.
            let informative = model.index() <= 2;
            let mut rows = Vec::new();
            for &y in &self.labels {
                if informative {
                    rows.extend_from_slice(if y == 0 { &[0.9, 0.1] } else { &[0.1, 0.9] });
                } else {
                    rows.extend_from_slice(&[0.5, 0.5]);
                }
            }
            PredictionMatrix::new(2, rows)
        }

        fn target_labels(&self) -> &[usize] {
            &self.labels
        }

        fn n_target_labels(&self) -> usize {
            2
        }
    }

    #[test]
    fn offline_artifacts_cluster_families() {
        let (artifacts, _) = fixture();
        let c = &artifacts.clustering;
        assert_eq!(c.cluster_of(ModelId(0)), c.cluster_of(ModelId(1)));
        assert_eq!(c.cluster_of(ModelId(0)), c.cluster_of(ModelId(2)));
        assert_eq!(c.cluster_of(ModelId(3)), c.cluster_of(ModelId(4)));
        assert_ne!(c.cluster_of(ModelId(0)), c.cluster_of(ModelId(3)));
        assert_ne!(c.cluster_of(ModelId(5)), c.cluster_of(ModelId(0)));
        assert!(!c.in_non_singleton(ModelId(5)));
    }

    #[test]
    fn end_to_end_selects_a_strong_model() {
        let (artifacts, stages) = fixture();
        let oracle = FixtureOracle {
            labels: vec![0, 1, 0, 1, 0, 1],
        };
        // Target curves: strong family performs well on the target, others
        // do not.
        let curves: Vec<Vec<f64>> = (0..6)
            .map(|m| {
                let ceiling = if m <= 2 { 0.85 + 0.01 * m as f64 } else { 0.4 };
                (0..stages)
                    .map(|t| ceiling * (0.7 + 0.3 * (t + 1) as f64 / stages as f64))
                    .collect()
            })
            .collect();
        let mut trainer = ScriptedTrainer::from_val_curves(curves);
        let out = two_phase_select(
            &artifacts,
            &oracle,
            &mut trainer,
            &PipelineConfig {
                recall: RecallConfig {
                    top_k: 3,
                    ..Default::default()
                },
                total_stages: stages,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            out.selection.winner.index() <= 2,
            "winner {:?}",
            out.selection.winner
        );
        // Proxy epochs: 2 non-singleton clusters scored at 0.5 each.
        assert_eq!(out.ledger.proxy_epochs(), 1.0);
        assert!(out.ledger.total() < 6.0 * stages as f64, "cheaper than BF");
        // The recall phase must rank the strong family first.
        assert!(out.recall.recalled.iter().all(|m| m.index() <= 2));
    }

    #[test]
    fn traced_run_matches_untraced_and_its_own_counters() {
        let (artifacts, stages) = fixture();
        let oracle = FixtureOracle {
            labels: vec![0, 1, 0, 1, 0, 1],
        };
        let curves: Vec<Vec<f64>> = (0..6)
            .map(|m| {
                let ceiling = if m <= 2 { 0.85 + 0.01 * m as f64 } else { 0.4 };
                (0..stages)
                    .map(|t| ceiling * (0.7 + 0.3 * (t + 1) as f64 / stages as f64))
                    .collect()
            })
            .collect();
        let config = PipelineConfig {
            recall: RecallConfig {
                top_k: 3,
                ..Default::default()
            },
            total_stages: stages,
            ..Default::default()
        };
        let mut plain_trainer = ScriptedTrainer::from_val_curves(curves.clone());
        let plain = two_phase_select(&artifacts, &oracle, &mut plain_trainer, &config).unwrap();

        let (tel, sink) = crate::telemetry::Telemetry::recording();
        let mut trainer = ScriptedTrainer::from_val_curves(curves);
        let out =
            two_phase_select_traced(&artifacts, &oracle, &mut trainer, &config, &tel).unwrap();
        // Tracing never changes the outcome.
        assert_eq!(out, plain);

        // Recorded counters agree with the outcome's own accounting.
        let report = sink.report();
        let c = &out.counters;
        assert_eq!(
            report.counter("recall.proxy_evals"),
            Some(c.proxy_evals as f64)
        );
        assert_eq!(report.counter("recall.recalled"), Some(c.recalled as f64));
        assert_eq!(report.counter("recall.proxy_epochs"), Some(c.proxy_epochs));
        assert_eq!(report.counter("fine.stages"), Some(c.stages as f64));
        assert_eq!(report.counter("select.train_epochs"), Some(c.train_epochs));
        for t in 0..c.stages {
            assert_eq!(
                report.counter(&crate::telemetry::stage_counter("fine", t, "pool")),
                Some(c.pool_per_stage[t] as f64),
                "stage {t} pool"
            );
            assert_eq!(
                report.counter(&crate::telemetry::stage_counter("fine", t, "survivors")),
                Some(c.survivors_per_stage[t] as f64),
                "stage {t} survivors"
            );
        }
        assert_eq!(c.proxy_epochs + c.train_epochs, c.total_epochs);
        assert_eq!(c.total_epochs, out.ledger.total());

        // The span tree nests as documented: pipeline > recall + fine, with
        // one select.stage per stage.
        let root = report.find_span("pipeline.two_phase_select").unwrap();
        assert!(root.find("recall.coarse").is_some());
        assert!(root.find("select.fine").is_some());
        assert_eq!(report.spans_named("select.stage").len(), c.stages);
    }

    #[test]
    fn artifacts_build_rejects_mismatched_curves() {
        let (artifacts, _) = fixture();
        let bad_curves =
            CurveSet::from_fn(2, 2, |_, _| LearningCurve::new(vec![0.5], 0.5).unwrap()).unwrap();
        assert!(OfflineArtifacts::build(
            artifacts.matrix.clone(),
            &bad_curves,
            &OfflineConfig::default()
        )
        .is_err());
    }

    fn fixture_inputs() -> (PerformanceMatrix, CurveSet, usize) {
        let stages = 4;
        let (artifacts, _) = fixture();
        let matrix = artifacts.matrix;
        let curves = CurveSet::from_fn(6, matrix.n_datasets(), |m, d| {
            let final_acc = matrix.accuracy(d, m);
            let vals = (0..stages)
                .map(|t| final_acc * (0.6 + 0.4 * (t + 1) as f64 / stages as f64))
                .collect();
            LearningCurve::new(vals, final_acc).unwrap()
        })
        .unwrap();
        (matrix, curves, stages)
    }

    #[test]
    fn indexed_offline_build_recovers_families_and_stores_index() {
        let (matrix, curves, _) = fixture_inputs();
        let config = OfflineConfig {
            cluster: ClusterMethod::HierarchicalThreshold(0.08),
            trend: TrendConfig {
                n_trends: 2,
                max_iter: 32,
            },
            ann: AnnConfig {
                mode: AnnMode::Indexed,
                ..AnnConfig::default()
            },
            ..Default::default()
        };
        let artifacts = OfflineArtifacts::build(matrix, &curves, &config).unwrap();
        let c = &artifacts.clustering;
        // Same family structure the dense build finds on this fixture.
        assert_eq!(c.cluster_of(ModelId(0)), c.cluster_of(ModelId(1)));
        assert_eq!(c.cluster_of(ModelId(0)), c.cluster_of(ModelId(2)));
        assert_eq!(c.cluster_of(ModelId(3)), c.cluster_of(ModelId(4)));
        assert_ne!(c.cluster_of(ModelId(0)), c.cluster_of(ModelId(3)));
        assert!(!c.in_non_singleton(ModelId(5)));
        assert!(artifacts.similarity.is_lazy());
        let rep_index = artifacts.ann.as_ref().expect("indexed build stores index");
        assert_eq!(rep_index.len(), 2, "two non-singleton clusters scored");
    }

    #[test]
    fn indexed_build_rejects_non_threshold_clustering() {
        let (matrix, curves, _) = fixture_inputs();
        let config = OfflineConfig {
            cluster: ClusterMethod::KMeans { k: 3, seed: 7 },
            ann: AnnConfig {
                mode: AnnMode::Indexed,
                ..AnnConfig::default()
            },
            ..Default::default()
        };
        assert!(matches!(
            OfflineArtifacts::build(matrix, &curves, &config),
            Err(SelectionError::InvalidConfig(_))
        ));
    }

    #[test]
    fn indexed_end_to_end_selects_a_strong_model() {
        let (matrix, curves, stages) = fixture_inputs();
        let ann = AnnConfig {
            mode: AnnMode::Indexed,
            ..AnnConfig::default()
        };
        let artifacts = OfflineArtifacts::build(
            matrix,
            &curves,
            &OfflineConfig {
                cluster: ClusterMethod::HierarchicalThreshold(0.08),
                trend: TrendConfig {
                    n_trends: 2,
                    max_iter: 32,
                },
                ann,
                ..Default::default()
            },
        )
        .unwrap();
        let oracle = FixtureOracle {
            labels: vec![0, 1, 0, 1, 0, 1],
        };
        let target: Vec<Vec<f64>> = (0..6)
            .map(|m| {
                let ceiling = if m <= 2 { 0.85 + 0.01 * m as f64 } else { 0.4 };
                (0..stages)
                    .map(|t| ceiling * (0.7 + 0.3 * (t + 1) as f64 / stages as f64))
                    .collect()
            })
            .collect();
        let mut trainer = ScriptedTrainer::from_val_curves(target);
        let out = two_phase_select(
            &artifacts,
            &oracle,
            &mut trainer,
            &PipelineConfig {
                recall: RecallConfig {
                    top_k: 3,
                    ..Default::default()
                },
                total_stages: stages,
                ann,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.selection.winner.index() <= 2);
        assert!(out.recall.recalled.iter().all(|m| m.index() <= 2));
    }

    #[test]
    fn exact_artifacts_serialize_without_ann_key() {
        let (artifacts, _) = fixture();
        assert!(artifacts.ann.is_none());
        let json = serde_json::to_string(&artifacts).unwrap();
        assert!(
            !json.contains("\"ann\""),
            "exact artifacts must not gain keys"
        );
        let back: OfflineArtifacts = serde_json::from_str(&json).unwrap();
        assert_eq!(back.clustering, artifacts.clustering);
        assert!(back.ann.is_none());
    }

    #[test]
    fn indexed_artifacts_round_trip_with_index() {
        let (matrix, curves, _) = fixture_inputs();
        let config = OfflineConfig {
            cluster: ClusterMethod::HierarchicalThreshold(0.08),
            trend: TrendConfig {
                n_trends: 2,
                max_iter: 32,
            },
            ann: AnnConfig {
                mode: AnnMode::Indexed,
                ..AnnConfig::default()
            },
            ..Default::default()
        };
        let artifacts = OfflineArtifacts::build(matrix, &curves, &config).unwrap();
        let json = serde_json::to_string(&artifacts).unwrap();
        let back: OfflineArtifacts = serde_json::from_str(&json).unwrap();
        assert_eq!(back.similarity, artifacts.similarity);
        assert_eq!(back.clustering, artifacts.clustering);
        assert_eq!(back.ann, artifacts.ann);
    }

    #[test]
    fn cluster_method_variants_run() {
        let (artifacts, _) = fixture();
        for method in [
            ClusterMethod::HierarchicalThreshold(0.1),
            ClusterMethod::HierarchicalK(3),
            ClusterMethod::KMeans { k: 3, seed: 7 },
            ClusterMethod::Dbscan {
                eps: 0.08,
                min_points: 2,
            },
        ] {
            let c = cluster_models(&artifacts.matrix, &artifacts.similarity, method).unwrap();
            assert_eq!(c.n_models(), 6);
        }
    }
}
