//! Small statistics toolbox used across the evaluation: means, correlation
//! coefficients (Pearson, Spearman, Kendall), and rank utilities.
//!
//! The experiments compare proxy scores against ground-truth fine-tuning
//! accuracy; rank correlations are the canonical metric for
//! transferability proxies (LEEP/LogME papers report Pearson and Kendall).

use crate::proxy::ensemble::normalized_ranks;

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0 for fewer than 2 points.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Pearson correlation; 0 when either side has no variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation needs paired samples");
    let n = xs.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let (mx, my) = (mean(xs), mean(ys));
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// Spearman rank correlation: Pearson over (tie-averaged) ranks.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation needs paired samples");
    if xs.len() < 2 {
        return 0.0;
    }
    pearson(&normalized_ranks(xs), &normalized_ranks(ys))
}

/// Kendall's τ-a: `(concordant − discordant) / (n·(n−1)/2)`. `O(n²)` —
/// fine at repository scale.
pub fn kendall_tau(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation needs paired samples");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let s = (xs[i] - xs[j]).signum() * (ys[i] - ys[j]).signum();
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    (concordant - discordant) as f64 / (n * (n - 1) / 2) as f64
}

/// Top-k overlap: fraction of `truth`'s k largest entries present among
/// `scores`' k largest (recall@k, the Fig. 5 quantity in set form).
pub fn top_k_overlap(scores: &[f64], truth: &[f64], k: usize) -> f64 {
    assert_eq!(scores.len(), truth.len());
    let k = k.min(scores.len());
    if k == 0 {
        return 0.0;
    }
    let top = |v: &[f64]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&a, &b| v[b].total_cmp(&v[a]));
        idx.truncate(k);
        idx
    };
    let ts = top(scores);
    let tt = top(truth);
    let hits = tt.iter().filter(|i| ts.contains(i)).count();
    hits as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_extremes() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn spearman_ignores_monotone_warp() {
        // y = exp(x) is a nonlinear but monotone map: Spearman = 1.
        let xs: [f64; 5] = [0.1, 0.9, 0.4, 0.7, 0.2];
        let ys: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-9);
        let rev: Vec<f64> = xs.iter().map(|x| (-x).exp()).collect();
        assert!((spearman(&xs, &rev) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn kendall_known_values() {
        assert!((kendall_tau(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        // One swapped pair out of three: (2 - 1) / 3.
        let t = kendall_tau(&[1.0, 2.0, 3.0], &[2.0, 1.0, 3.0]);
        assert!((t - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(kendall_tau(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn top_k_overlap_counts_hits() {
        let truth = [0.9, 0.8, 0.1, 0.2];
        let perfect = [0.7, 0.6, 0.0, 0.1];
        assert_eq!(top_k_overlap(&perfect, &truth, 2), 1.0);
        let inverted = [0.1, 0.2, 0.9, 0.8];
        assert_eq!(top_k_overlap(&inverted, &truth, 2), 0.0);
        let half = [0.9, 0.1, 0.8, 0.2];
        assert_eq!(top_k_overlap(&half, &truth, 2), 0.5);
        assert_eq!(top_k_overlap(&truth, &truth, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "paired samples")]
    fn correlation_requires_pairs() {
        pearson(&[1.0], &[1.0, 2.0]);
    }
}
