//! Learning curves: per-stage validation accuracy plus the final test
//! accuracy of one fine-tuning run.
//!
//! The offline phase records one [`LearningCurve`] per `(model, benchmark
//! dataset)` pair; convergence-trend mining (paper §IV-C) clusters these
//! curves per model. The online fine-selection phase produces new curves
//! incrementally as it trains the recalled models on the target dataset.

use crate::error::{Result, SelectionError};
use crate::ids::{DatasetId, ModelId};
use serde::{Deserialize, Serialize};

/// Validation trace of a single fine-tuning run plus its final test score.
///
/// `val[t]` is the validation accuracy after stage `t + 1` (a *stage* is one
/// validation interval — `s` training steps in the paper; one epoch in our
/// substrates). `test` is the test accuracy after training all stages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LearningCurve {
    val: Vec<f64>,
    test: f64,
}

impl LearningCurve {
    /// Create a curve, validating that every accuracy is finite and in
    /// `[0, 1]` and that at least one stage was recorded.
    pub fn new(val: Vec<f64>, test: f64) -> Result<Self> {
        if val.is_empty() {
            return Err(SelectionError::Empty("validation trace"));
        }
        for &v in &val {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(SelectionError::InvalidValue {
                    what: "validation accuracy",
                    value: v,
                });
            }
        }
        if !test.is_finite() || !(0.0..=1.0).contains(&test) {
            return Err(SelectionError::InvalidValue {
                what: "test accuracy",
                value: test,
            });
        }
        Ok(Self { val, test })
    }

    /// Number of recorded stages.
    #[inline]
    pub fn n_stages(&self) -> usize {
        self.val.len()
    }

    /// Validation accuracy after stage `t` (0-based).
    #[inline]
    pub fn val_at(&self, t: usize) -> f64 {
        self.val[t]
    }

    /// Validation accuracy at stage `t`, or the last recorded stage if the
    /// curve is shorter. Trend matching uses this so that benchmark runs
    /// with fewer stages than the target run still contribute.
    pub fn val_at_clamped(&self, t: usize) -> f64 {
        self.val[t.min(self.val.len() - 1)]
    }

    /// The full validation trace.
    pub fn val(&self) -> &[f64] {
        &self.val
    }

    /// Final test accuracy.
    #[inline]
    pub fn test(&self) -> f64 {
        self.test
    }

    /// Best validation accuracy over all stages.
    pub fn best_val(&self) -> f64 {
        self.val.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Stage index achieving the best validation accuracy.
    pub fn best_stage(&self) -> usize {
        self.val
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// All offline learning curves: `curves[(m, d)]` for every model `m` × every
/// benchmark dataset `d`, stored densely.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurveSet {
    n_models: usize,
    n_datasets: usize,
    /// `curves[m * n_datasets + d]`
    curves: Vec<LearningCurve>,
}

impl CurveSet {
    /// Build the curve set from a dense row-major-by-model vector.
    pub fn new(n_models: usize, n_datasets: usize, curves: Vec<LearningCurve>) -> Result<Self> {
        if curves.len() != n_models * n_datasets {
            return Err(SelectionError::DimensionMismatch {
                what: "curve set",
                expected: n_models * n_datasets,
                got: curves.len(),
            });
        }
        if curves.is_empty() {
            return Err(SelectionError::Empty("curve set"));
        }
        Ok(Self {
            n_models,
            n_datasets,
            curves,
        })
    }

    /// Assemble a curve set by calling `f(model, dataset)` for every cell.
    pub fn from_fn(
        n_models: usize,
        n_datasets: usize,
        mut f: impl FnMut(ModelId, DatasetId) -> LearningCurve,
    ) -> Result<Self> {
        let mut curves = Vec::with_capacity(n_models * n_datasets);
        for m in 0..n_models {
            for d in 0..n_datasets {
                curves.push(f(ModelId::from(m), DatasetId::from(d)));
            }
        }
        Self::new(n_models, n_datasets, curves)
    }

    /// Number of models covered.
    #[inline]
    pub fn n_models(&self) -> usize {
        self.n_models
    }

    /// Number of benchmark datasets covered.
    #[inline]
    pub fn n_datasets(&self) -> usize {
        self.n_datasets
    }

    /// The curve of model `m` on dataset `d`.
    pub fn curve(&self, m: ModelId, d: DatasetId) -> &LearningCurve {
        &self.curves[m.index() * self.n_datasets + d.index()]
    }

    /// All curves of one model across the benchmark datasets, in dataset
    /// order — the input to convergence-trend mining.
    pub fn model_curves(&self, m: ModelId) -> &[LearningCurve] {
        &self.curves[m.index() * self.n_datasets..(m.index() + 1) * self.n_datasets]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_basics() {
        let c = LearningCurve::new(vec![0.3, 0.5, 0.45], 0.52).unwrap();
        assert_eq!(c.n_stages(), 3);
        assert_eq!(c.val_at(1), 0.5);
        assert_eq!(c.val_at_clamped(99), 0.45);
        assert_eq!(c.best_val(), 0.5);
        assert_eq!(c.best_stage(), 1);
        assert_eq!(c.test(), 0.52);
    }

    #[test]
    fn curve_rejects_bad_values() {
        assert!(LearningCurve::new(vec![], 0.5).is_err());
        assert!(LearningCurve::new(vec![1.2], 0.5).is_err());
        assert!(LearningCurve::new(vec![0.5], f64::NAN).is_err());
        assert!(LearningCurve::new(vec![f64::INFINITY], 0.5).is_err());
    }

    #[test]
    fn curveset_layout() {
        let cs = CurveSet::from_fn(2, 3, |m, d| {
            LearningCurve::new(
                vec![0.1 * (m.index() + 1) as f64],
                0.01 * (d.index() + 1) as f64,
            )
            .unwrap()
        })
        .unwrap();
        assert_eq!(cs.n_models(), 2);
        assert_eq!(cs.n_datasets(), 3);
        assert_eq!(cs.curve(ModelId(1), DatasetId(2)).val_at(0), 0.2);
        assert_eq!(cs.curve(ModelId(1), DatasetId(2)).test(), 0.03);
        assert_eq!(cs.model_curves(ModelId(0)).len(), 3);
    }

    #[test]
    fn curveset_rejects_wrong_len() {
        let c = LearningCurve::new(vec![0.5], 0.5).unwrap();
        assert!(CurveSet::new(2, 2, vec![c]).is_err());
    }
}
