//! Convergence-trend mining (paper §IV-C, Fig. 4, Eq. 5/6).
//!
//! A model's fine-tuning trajectories on different datasets fall into a few
//! recognisable groups ("convergence trends"): e.g. datasets it masters
//! quickly and well, versus datasets it never lifts far above chance. For
//! every model, we cluster the benchmark datasets by the model's validation
//! accuracy at each stage `t`, and store the per-cluster mean validation and
//! mean **final test** accuracy.
//!
//! Online, after `t` stages of fine-tuning on the target dataset, the
//! model's current validation accuracy is matched to the nearest trend
//! (Eq. 5), and the trend's mean final test accuracy becomes the prediction
//! of where this run will end up (Eq. 6) — letting fine-selection discard
//! models whose *predicted ceiling* is already beaten.

use crate::curve::LearningCurve;
use crate::error::{Result, SelectionError};
use crate::ids::DatasetId;
use serde::{Deserialize, Serialize};

/// Configuration for trend mining.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrendConfig {
    /// Number of trend clusters `c` per stage (Fig. 4 shows 4 groups).
    pub n_trends: usize,
    /// Lloyd iterations for the 1-D clustering.
    pub max_iter: usize,
}

impl Default for TrendConfig {
    fn default() -> Self {
        Self {
            n_trends: 4,
            max_iter: 64,
        }
    }
}

/// One convergence trend at one stage: the cluster of benchmark datasets on
/// which the model tracked similarly up to this point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trend {
    /// Mean validation accuracy of member datasets at this stage (`v̄al_x`).
    pub mean_val: f64,
    /// Mean final test accuracy of member datasets (`t̄est_x`) — the
    /// prediction emitted by Eq. 6.
    pub mean_test: f64,
    /// Member benchmark datasets.
    pub members: Vec<DatasetId>,
}

/// All convergence trends of one model: `stages[t]` holds the trends mined
/// from validation accuracies at stage `t`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceTrends {
    stages: Vec<Vec<Trend>>,
}

impl ConvergenceTrends {
    /// Number of mined stages.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Trends at stage `t` (clamped to the last mined stage, mirroring
    /// [`LearningCurve::val_at_clamped`]).
    pub fn at_stage(&self, t: usize) -> &[Trend] {
        &self.stages[t.min(self.stages.len() - 1)]
    }

    /// Eq. 5: the trend whose mean validation accuracy at stage `t` is
    /// closest to the observed `val`.
    pub fn match_trend(&self, t: usize, val: f64) -> &Trend {
        self.at_stage(t)
            .iter()
            .min_by(|a, b| {
                (a.mean_val - val)
                    .abs()
                    .total_cmp(&(b.mean_val - val).abs())
            })
            .expect("mined trends are never empty")
    }

    /// Eq. 6: predicted final test accuracy for a run showing validation
    /// accuracy `val` at stage `t`.
    pub fn predict(&self, t: usize, val: f64) -> f64 {
        self.match_trend(t, val).mean_test
    }
}

/// Mine the convergence trends of one model from its benchmark learning
/// curves (`curves[d]` = the model's curve on benchmark dataset `d`).
///
/// `n_stages` bounds how many stages to mine (clamped to the shortest
/// curve). The number of trends is clamped to the number of datasets.
///
/// ```
/// use tps_core::curve::LearningCurve;
/// use tps_core::trend::{mine_trends, TrendConfig};
///
/// // Two benchmark datasets the model masters, two it never lifts.
/// let curves = vec![
///     LearningCurve::new(vec![0.7, 0.9], 0.92)?,
///     LearningCurve::new(vec![0.72, 0.88], 0.90)?,
///     LearningCurve::new(vec![0.30, 0.33], 0.34)?,
///     LearningCurve::new(vec![0.28, 0.31], 0.32)?,
/// ];
/// let trends = mine_trends(&curves, 2, &TrendConfig { n_trends: 2, max_iter: 32 })?;
/// // A validation of 0.7 after stage 1 predicts the high ceiling (Eq. 5/6).
/// assert!(trends.predict(0, 0.7) > 0.85);
/// assert!(trends.predict(0, 0.3) < 0.4);
/// # Ok::<(), tps_core::error::SelectionError>(())
/// ```
pub fn mine_trends(
    curves: &[LearningCurve],
    n_stages: usize,
    config: &TrendConfig,
) -> Result<ConvergenceTrends> {
    if curves.is_empty() {
        return Err(SelectionError::Empty("benchmark curves"));
    }
    if config.n_trends == 0 {
        return Err(SelectionError::InvalidConfig(
            "n_trends must be >= 1".into(),
        ));
    }
    let min_stages = curves
        .iter()
        .map(LearningCurve::n_stages)
        .min()
        .unwrap_or(0);
    let stages_to_mine = n_stages.min(min_stages).max(1);
    let c = config.n_trends.min(curves.len());

    let mut stages = Vec::with_capacity(stages_to_mine);
    for t in 0..stages_to_mine {
        let vals: Vec<f64> = curves.iter().map(|cv| cv.val_at_clamped(t)).collect();
        let assign = cluster_values_1d(&vals, c, config.max_iter);
        let n_clusters = assign.iter().copied().max().unwrap_or(0) + 1;
        let mut trends = Vec::with_capacity(n_clusters);
        for cluster in 0..n_clusters {
            let members: Vec<DatasetId> = assign
                .iter()
                .enumerate()
                .filter(|(_, &a)| a == cluster)
                .map(|(d, _)| DatasetId::from(d))
                .collect();
            debug_assert!(!members.is_empty());
            let mean_val =
                members.iter().map(|&d| vals[d.index()]).sum::<f64>() / members.len() as f64;
            let mean_test = members
                .iter()
                .map(|&d| curves[d.index()].test())
                .sum::<f64>()
                / members.len() as f64;
            trends.push(Trend {
                mean_val,
                mean_test,
                members,
            });
        }
        // Sort trends by mean validation for stable, readable output.
        trends.sort_by(|a, b| b.mean_val.total_cmp(&a.mean_val));
        stages.push(trends);
    }
    Ok(ConvergenceTrends { stages })
}

/// Convergence trends for every model in the repository, indexed by
/// [`crate::ids::ModelId`]. Built offline from the full
/// [`crate::curve::CurveSet`] and
/// consulted online by fine-selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrendBook {
    per_model: Vec<ConvergenceTrends>,
}

impl TrendBook {
    /// Mine trends for every model from the offline curve set.
    pub fn mine(
        curves: &crate::curve::CurveSet,
        n_stages: usize,
        config: &TrendConfig,
    ) -> Result<Self> {
        let mut per_model = Vec::with_capacity(curves.n_models());
        for m in 0..curves.n_models() {
            per_model.push(mine_trends(
                curves.model_curves(crate::ids::ModelId::from(m)),
                n_stages,
                config,
            )?);
        }
        Ok(Self { per_model })
    }

    /// Parallel [`Self::mine`]: models are mined independently across
    /// `threads` workers. Mining is deterministic per model, so the result
    /// is bit-identical to the serial build.
    pub fn mine_par(
        curves: &crate::curve::CurveSet,
        n_stages: usize,
        config: &TrendConfig,
        threads: usize,
    ) -> Result<Self> {
        let indices: Vec<usize> = (0..curves.n_models()).collect();
        let per_model = crate::parallel::try_map_indexed(&indices, threads, |_, &m| {
            mine_trends(
                curves.model_curves(crate::ids::ModelId::from(m)),
                n_stages,
                config,
            )
        })?;
        Ok(Self { per_model })
    }

    /// Assemble from pre-mined per-model trends.
    pub fn from_parts(per_model: Vec<ConvergenceTrends>) -> Result<Self> {
        if per_model.is_empty() {
            return Err(SelectionError::Empty("trend book"));
        }
        Ok(Self { per_model })
    }

    /// Number of models covered.
    pub fn n_models(&self) -> usize {
        self.per_model.len()
    }

    /// Trends of one model.
    pub fn for_model(&self, m: crate::ids::ModelId) -> &ConvergenceTrends {
        &self.per_model[m.index()]
    }

    /// Append trends for a newly-added model (crate-internal; the public
    /// entry point is `OfflineArtifacts::add_model`).
    pub(crate) fn push_inner(&mut self, trends: ConvergenceTrends) {
        self.per_model.push(trends);
    }

    /// Drop the trends of model `m`, shifting later rows down (crate-
    /// internal; used by the incremental delta engine on `RetireModel`).
    pub(crate) fn remove_inner(&mut self, m: usize) {
        self.per_model.remove(m);
    }

    /// Replace the trends of model `m` in place (crate-internal; used by
    /// the incremental delta engine on `RefreshModel`).
    pub(crate) fn replace_inner(&mut self, m: usize, trends: ConvergenceTrends) {
        self.per_model[m] = trends;
    }
}

/// Deterministic 1-D k-means: centroids initialised at evenly-spaced
/// quantiles of the sorted values, Lloyd iterations to convergence, empty
/// clusters dropped with labels compacted. Returns one label per value.
///
/// Exposed publicly because the Fig. 6 experiment clusters first-validation
/// accuracies directly.
pub fn cluster_values_1d(values: &[f64], k: usize, max_iter: usize) -> Vec<usize> {
    assert!(!values.is_empty() && k >= 1);
    let k = k.min(values.len());
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mut centroids: Vec<f64> = (0..k)
        .map(|i| {
            // Evenly spaced quantiles (midpoints of k equal-mass strata).
            let pos = (i as f64 + 0.5) / k as f64 * (sorted.len() - 1) as f64;
            sorted[pos.round() as usize]
        })
        .collect();
    centroids.dedup();

    let mut assign = vec![0usize; values.len()];
    for _ in 0..max_iter {
        let mut changed = false;
        for (i, &v) in values.iter().enumerate() {
            let nearest = centroids
                .iter()
                .enumerate()
                .min_by(|a, b| (a.1 - v).abs().total_cmp(&(b.1 - v).abs()))
                .map(|(c, _)| c)
                .unwrap_or(0);
            if assign[i] != nearest {
                assign[i] = nearest;
                changed = true;
            }
        }
        let mut sums = vec![0.0f64; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (i, &v) in values.iter().enumerate() {
            sums[assign[i]] += v;
            counts[assign[i]] += 1;
        }
        for (c, centroid) in centroids.iter_mut().enumerate() {
            if counts[c] > 0 {
                *centroid = sums[c] / counts[c] as f64;
            }
        }
        if !changed {
            break;
        }
    }
    // Compact labels of inhabited clusters, ordered by centroid value so the
    // labelling is deterministic.
    let mut inhabited: Vec<usize> = assign
        .iter()
        .copied()
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    inhabited.sort_by(|&a, &b| centroids[a].total_cmp(&centroids[b]));
    let remap: std::collections::HashMap<usize, usize> = inhabited
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, new))
        .collect();
    assign.iter().map(|a| remap[a]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(vals: &[f64], test: f64) -> LearningCurve {
        LearningCurve::new(vals.to_vec(), test).unwrap()
    }

    /// Two obvious trend groups: high performers (~0.9) and duds (~0.3).
    fn two_group_curves() -> Vec<LearningCurve> {
        vec![
            curve(&[0.85, 0.9], 0.92),
            curve(&[0.88, 0.91], 0.93),
            curve(&[0.3, 0.32], 0.33),
            curve(&[0.28, 0.31], 0.30),
        ]
    }

    #[test]
    fn mines_two_groups() {
        let trends = mine_trends(
            &two_group_curves(),
            2,
            &TrendConfig {
                n_trends: 2,
                max_iter: 64,
            },
        )
        .unwrap();
        assert_eq!(trends.n_stages(), 2);
        let t0 = trends.at_stage(0);
        assert_eq!(t0.len(), 2);
        // Sorted by mean_val desc: first trend is the high group.
        assert!(t0[0].mean_val > 0.8);
        assert!(t0[1].mean_val < 0.4);
        assert!((t0[0].mean_test - 0.925).abs() < 1e-9);
        assert!((t0[1].mean_test - 0.315).abs() < 1e-9);
        assert_eq!(t0[0].members.len(), 2);
    }

    #[test]
    fn eq5_matches_nearest_trend() {
        let trends = mine_trends(
            &two_group_curves(),
            2,
            &TrendConfig {
                n_trends: 2,
                max_iter: 64,
            },
        )
        .unwrap();
        let high = trends.match_trend(0, 0.87);
        assert!(high.mean_val > 0.8);
        let low = trends.match_trend(0, 0.25);
        assert!(low.mean_val < 0.4);
    }

    #[test]
    fn eq6_predicts_matched_mean_test() {
        let trends = mine_trends(
            &two_group_curves(),
            2,
            &TrendConfig {
                n_trends: 2,
                max_iter: 64,
            },
        )
        .unwrap();
        assert!((trends.predict(0, 0.9) - 0.925).abs() < 1e-9);
        assert!((trends.predict(1, 0.3) - 0.315).abs() < 1e-9);
    }

    #[test]
    fn stage_clamping() {
        let trends = mine_trends(&two_group_curves(), 2, &TrendConfig::default()).unwrap();
        // Requesting stage far past the mined range clamps to the last.
        let last = trends.at_stage(99);
        assert_eq!(last, trends.at_stage(1));
    }

    #[test]
    fn trend_count_clamped_to_datasets() {
        let curves = vec![curve(&[0.5], 0.5), curve(&[0.6], 0.6)];
        let trends = mine_trends(
            &curves,
            1,
            &TrendConfig {
                n_trends: 10,
                max_iter: 64,
            },
        )
        .unwrap();
        assert!(trends.at_stage(0).len() <= 2);
    }

    #[test]
    fn every_dataset_in_exactly_one_trend() {
        let curves = two_group_curves();
        let trends = mine_trends(
            &curves,
            1,
            &TrendConfig {
                n_trends: 3,
                max_iter: 64,
            },
        )
        .unwrap();
        let mut seen: Vec<usize> = trends
            .at_stage(0)
            .iter()
            .flat_map(|t| t.members.iter().map(|d| d.index()))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(mine_trends(&[], 1, &TrendConfig::default()).is_err());
        let curves = vec![curve(&[0.5], 0.5)];
        assert!(mine_trends(
            &curves,
            1,
            &TrendConfig {
                n_trends: 0,
                max_iter: 1
            }
        )
        .is_err());
    }

    #[test]
    fn cluster_values_1d_separates() {
        let vals = [0.1, 0.12, 0.9, 0.88, 0.11];
        let assign = cluster_values_1d(&vals, 2, 32);
        assert_eq!(assign[0], assign[1]);
        assert_eq!(assign[0], assign[4]);
        assert_eq!(assign[2], assign[3]);
        assert_ne!(assign[0], assign[2]);
        // Labels ordered by centroid: low group = 0.
        assert_eq!(assign[0], 0);
    }

    #[test]
    fn cluster_values_1d_identical_values() {
        let vals = [0.5; 6];
        let assign = cluster_values_1d(&vals, 3, 16);
        // All identical -> a single inhabited cluster labelled 0.
        assert!(assign.iter().all(|&a| a == 0));
    }

    #[test]
    fn cluster_values_1d_k_ge_n() {
        let vals = [0.1, 0.9];
        let assign = cluster_values_1d(&vals, 5, 16);
        assert_ne!(assign[0], assign[1]);
    }
}
