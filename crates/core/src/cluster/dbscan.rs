//! DBSCAN over a precomputed distance matrix.
//!
//! The paper notes model clustering "could be conducted by any clustering
//! algorithm" (§III-A). DBSCAN fits the repository's actual structure
//! unusually well: dense *families* of models fine-tuned from the same
//! upstream data become clusters, and the isolated oddballs the paper calls
//! singleton clusters are exactly DBSCAN's *noise* points — no cluster
//! count or cut threshold has to be guessed, only a density radius.

use super::Clustering;
use crate::error::{Result, SelectionError};

/// Configuration for [`dbscan`].
#[derive(Debug, Clone, Copy)]
pub struct DbscanConfig {
    /// Neighbourhood radius `ε` in distance units (for Eq. 1 distances,
    /// commensurate with the hierarchical cut threshold).
    pub eps: f64,
    /// Minimum neighbourhood size (including the point itself) for a point
    /// to be a core point. `2` makes every mutually-close pair a cluster,
    /// matching the paper's `|C| > 1` notion of non-singleton.
    pub min_points: usize,
}

impl Default for DbscanConfig {
    fn default() -> Self {
        Self {
            eps: 0.05,
            min_points: 2,
        }
    }
}

/// Run DBSCAN on a row-major `n × n` distance matrix. Noise points each
/// become their own singleton cluster in the returned [`Clustering`] (the
/// framework treats singletons specially anyway — Eq. 4).
pub fn dbscan(distances: &[f64], n: usize, config: &DbscanConfig) -> Result<Clustering> {
    if n == 0 {
        return Err(SelectionError::Empty("points"));
    }
    if distances.len() != n * n {
        return Err(SelectionError::DimensionMismatch {
            what: "distance matrix",
            expected: n * n,
            got: distances.len(),
        });
    }
    if config.eps <= 0.0 || !config.eps.is_finite() {
        return Err(SelectionError::InvalidValue {
            what: "dbscan eps",
            value: config.eps,
        });
    }
    if config.min_points == 0 {
        return Err(SelectionError::InvalidConfig(
            "min_points must be >= 1".into(),
        ));
    }

    const UNVISITED: usize = usize::MAX;
    const NOISE: usize = usize::MAX - 1;
    let mut labels = vec![UNVISITED; n];
    let neighbours = |p: usize| -> Vec<usize> {
        (0..n)
            .filter(|&q| distances[p * n + q] <= config.eps)
            .collect()
    };

    let mut next_cluster = 0usize;
    for p in 0..n {
        if labels[p] != UNVISITED {
            continue;
        }
        let nbrs = neighbours(p);
        if nbrs.len() < config.min_points {
            labels[p] = NOISE;
            continue;
        }
        // Expand a new cluster from this core point.
        let cluster = next_cluster;
        next_cluster += 1;
        labels[p] = cluster;
        let mut frontier = nbrs;
        while let Some(q) = frontier.pop() {
            if labels[q] == NOISE {
                labels[q] = cluster; // border point
            }
            if labels[q] != UNVISITED {
                continue;
            }
            labels[q] = cluster;
            let qn = neighbours(q);
            if qn.len() >= config.min_points {
                frontier.extend(qn);
            }
        }
    }
    // Noise points become singleton clusters with fresh labels.
    for label in &mut labels {
        if *label == NOISE {
            *label = next_cluster;
            next_cluster += 1;
        }
    }
    Clustering::new(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ModelId;

    fn dist_from_points(xs: &[f64]) -> Vec<f64> {
        let n = xs.len();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                d[i * n + j] = (xs[i] - xs[j]).abs();
            }
        }
        d
    }

    #[test]
    fn finds_families_and_noise() {
        // Two dense families and one isolated point.
        let xs: [f64; 7] = [0.0, 0.01, 0.02, 1.0, 1.01, 1.02, 5.0];
        let d = dist_from_points(&xs);
        let c = dbscan(
            &d,
            7,
            &DbscanConfig {
                eps: 0.05,
                min_points: 2,
            },
        )
        .unwrap();
        assert_eq!(c.n_clusters(), 3);
        assert_eq!(c.cluster_of(ModelId(0)), c.cluster_of(ModelId(2)));
        assert_eq!(c.cluster_of(ModelId(3)), c.cluster_of(ModelId(5)));
        assert_ne!(c.cluster_of(ModelId(0)), c.cluster_of(ModelId(3)));
        // The oddball is a singleton.
        assert_eq!(c.cluster_size(c.cluster_of(ModelId(6))), 1);
        assert_eq!(c.non_singleton_clusters().len(), 2);
    }

    #[test]
    fn chains_grow_through_core_points() {
        // A chain of points each within eps of the next: one cluster.
        let xs: [f64; 5] = [0.0, 0.04, 0.08, 0.12, 0.16];
        let d = dist_from_points(&xs);
        let c = dbscan(
            &d,
            5,
            &DbscanConfig {
                eps: 0.05,
                min_points: 2,
            },
        )
        .unwrap();
        assert_eq!(c.n_clusters(), 1);
    }

    #[test]
    fn min_points_controls_density() {
        // A pair is a cluster at min_points 2 but noise at min_points 3.
        let xs: [f64; 3] = [0.0, 0.02, 9.0];
        let d = dist_from_points(&xs);
        let pair = dbscan(
            &d,
            3,
            &DbscanConfig {
                eps: 0.05,
                min_points: 2,
            },
        )
        .unwrap();
        assert_eq!(pair.non_singleton_clusters().len(), 1);
        let strict = dbscan(
            &d,
            3,
            &DbscanConfig {
                eps: 0.05,
                min_points: 3,
            },
        )
        .unwrap();
        assert_eq!(strict.non_singleton_clusters().len(), 0);
        assert_eq!(strict.n_clusters(), 3);
    }

    #[test]
    fn all_noise_when_eps_tiny() {
        let xs: [f64; 4] = [0.0, 1.0, 2.0, 3.0];
        let d = dist_from_points(&xs);
        let c = dbscan(
            &d,
            4,
            &DbscanConfig {
                eps: 1e-6,
                min_points: 2,
            },
        )
        .unwrap();
        assert_eq!(c.n_clusters(), 4);
    }

    #[test]
    fn single_cluster_when_eps_huge() {
        let xs: [f64; 4] = [0.0, 1.0, 2.0, 3.0];
        let d = dist_from_points(&xs);
        let c = dbscan(
            &d,
            4,
            &DbscanConfig {
                eps: 10.0,
                min_points: 2,
            },
        )
        .unwrap();
        assert_eq!(c.n_clusters(), 1);
    }

    #[test]
    fn validates_input() {
        assert!(dbscan(&[], 0, &DbscanConfig::default()).is_err());
        assert!(dbscan(&[0.0, 1.0], 2, &DbscanConfig::default()).is_err());
        assert!(dbscan(
            &[0.0],
            1,
            &DbscanConfig {
                eps: 0.0,
                min_points: 2
            }
        )
        .is_err());
        assert!(dbscan(
            &[0.0],
            1,
            &DbscanConfig {
                eps: f64::NAN,
                min_points: 2
            }
        )
        .is_err());
        assert!(dbscan(
            &[0.0],
            1,
            &DbscanConfig {
                eps: 0.1,
                min_points: 0
            }
        )
        .is_err());
    }

    #[test]
    fn recovers_family_structure_from_a_performance_matrix() {
        // Two families with tight performance vectors plus an oddball,
        // through the Eq. 1 similarity -> distance path.
        use crate::matrix::PerformanceMatrix;
        use crate::similarity::SimilarityMatrix;
        let matrix = PerformanceMatrix::new(
            (0..5).map(|i| format!("m{i}")).collect(),
            (0..3).map(|i| format!("d{i}")).collect(),
            vec![
                vec![0.90, 0.89, 0.40, 0.41, 0.65],
                vec![0.80, 0.81, 0.30, 0.31, 0.20],
                vec![0.70, 0.71, 0.50, 0.49, 0.95],
            ],
        )
        .unwrap();
        let sim = SimilarityMatrix::from_performance(&matrix, 2).unwrap();
        let c = dbscan(
            &sim.distance_matrix(),
            matrix.n_models(),
            &DbscanConfig {
                eps: 0.05,
                min_points: 2,
            },
        )
        .unwrap();
        assert_eq!(c.non_singleton_clusters().len(), 2);
        assert_eq!(c.cluster_of(ModelId(0)), c.cluster_of(ModelId(1)));
        assert_eq!(c.cluster_of(ModelId(2)), c.cluster_of(ModelId(3)));
        assert_eq!(c.cluster_size(c.cluster_of(ModelId(4))), 1);
    }
}
