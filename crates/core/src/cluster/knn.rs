//! Index-assisted clustering: connected components of a thresholded kNN
//! graph.
//!
//! The exact offline phase feeds a dense O(M²) distance matrix into
//! average-linkage agglomeration — infeasible at 10⁵–10⁶ models. The
//! indexed path (`--ann indexed`) replaces the dense rows with each
//! model's top-k neighbour list from the ANN index and merges every pair
//! closer than the clustering threshold with a union-find, i.e.
//! single-linkage restricted to index edges. At the tight thresholds the
//! pipeline uses (families sit far below the threshold, strangers far
//! above) this recovers the same family structure while doing
//! O(M·k) work; `DESIGN.md` §5.6 discusses the linkage approximation.
//!
//! Determinism: neighbour lists come from the (deterministic) index, the
//! edge sweep visits nodes in id order, and labels are compacted in
//! first-appearance order by [`Clustering::new`] — no thread count or
//! hash-order dependence anywhere.

use super::Clustering;
use crate::error::{Result, SelectionError};

/// Path-compressing, rank-free union-find (union by smaller root id keeps
/// the structure independent of merge order).
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        // Attach the larger root under the smaller: the final root of each
        // component is its minimum member id, a canonical choice.
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi] = lo;
    }
}

/// Cluster `n` models into the connected components of their thresholded
/// kNN graph: models `i` and `j` land in one cluster when some index-edge
/// path between them has every hop's distance `<= threshold`.
///
/// `neighbor_lists[i]` is model `i`'s neighbour list as `(id, distance)`
/// pairs (from [`crate::ann::AnnIndex::knn_lists`]); edges are undirected,
/// so one direction suffices.
pub fn knn_threshold_components(
    n: usize,
    neighbor_lists: &[Vec<(u32, f64)>],
    threshold: f64,
) -> Result<Clustering> {
    if n == 0 {
        return Err(SelectionError::Empty("cluster assignments"));
    }
    if neighbor_lists.len() != n {
        return Err(SelectionError::DimensionMismatch {
            what: "knn neighbor lists",
            expected: n,
            got: neighbor_lists.len(),
        });
    }
    if !threshold.is_finite() || threshold < 0.0 {
        return Err(SelectionError::InvalidValue {
            what: "knn clustering threshold",
            value: threshold,
        });
    }
    let mut uf = UnionFind::new(n);
    for (i, list) in neighbor_lists.iter().enumerate() {
        for &(j, dist) in list {
            if (j as usize) >= n {
                return Err(SelectionError::UnknownId {
                    what: "knn neighbor",
                    id: j as usize,
                });
            }
            if dist <= threshold {
                uf.union(i, j as usize);
            }
        }
    }
    let roots: Vec<usize> = (0..n).map(|i| uf.find(i)).collect();
    // `Clustering::new` compacts root ids in first-appearance order.
    Clustering::new(roots)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_follow_threshold() {
        // 0-1 close, 2-3 close, the groups far apart.
        let lists = vec![
            vec![(1u32, 0.02), (2, 0.8)],
            vec![(0, 0.02), (3, 0.9)],
            vec![(3, 0.03), (0, 0.8)],
            vec![(2, 0.03), (1, 0.9)],
        ];
        let c = knn_threshold_components(4, &lists, 0.05).unwrap();
        assert_eq!(c.n_clusters(), 2);
        assert_eq!(c.assignments(), &[0, 0, 1, 1]);
    }

    #[test]
    fn loose_threshold_merges_everything() {
        let lists = vec![vec![(1u32, 0.02)], vec![(2, 0.4)], vec![(0, 0.5)]];
        let c = knn_threshold_components(3, &lists, 0.6).unwrap();
        assert_eq!(c.n_clusters(), 1);
    }

    #[test]
    fn no_edges_yields_singletons() {
        let lists = vec![vec![(1u32, 0.5)], vec![(0, 0.5)], vec![]];
        let c = knn_threshold_components(3, &lists, 0.1).unwrap();
        assert_eq!(c.n_clusters(), 3);
        assert_eq!(c.assignments(), &[0, 1, 2]);
    }

    #[test]
    fn chaining_is_single_linkage() {
        // 0-1 and 1-2 are close but 0-2 is not listed: chaining still
        // merges all three (single linkage over the edge set).
        let lists = vec![vec![(1u32, 0.04)], vec![(2, 0.04)], vec![]];
        let c = knn_threshold_components(3, &lists, 0.05).unwrap();
        assert_eq!(c.n_clusters(), 1);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(knn_threshold_components(0, &[], 0.1).is_err());
        assert!(knn_threshold_components(2, &[vec![]], 0.1).is_err());
        assert!(knn_threshold_components(1, &[vec![(5, 0.0)]], 0.1).is_err());
        assert!(knn_threshold_components(1, &[vec![]], f64::NAN).is_err());
        assert!(knn_threshold_components(1, &[vec![]], -0.1).is_err());
    }

    #[test]
    fn union_order_does_not_change_labels() {
        let forward = vec![
            vec![(1u32, 0.01), (2, 0.01)],
            vec![],
            vec![],
            vec![(4u32, 0.01)],
            vec![],
        ];
        let reversed = vec![
            vec![],
            vec![(0u32, 0.01)],
            vec![(0, 0.01)],
            vec![],
            vec![(3u32, 0.01)],
        ];
        let a = knn_threshold_components(5, &forward, 0.05).unwrap();
        let b = knn_threshold_components(5, &reversed, 0.05).unwrap();
        assert_eq!(a, b);
    }
}
