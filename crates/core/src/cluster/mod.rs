//! Model clustering (paper §III-A).
//!
//! Models with similar performance vectors on the benchmark datasets are
//! grouped so that the coarse-recall phase computes a proxy score only once
//! per cluster (for its *representative* model) instead of once per model,
//! cutting online cost from `O(|M|)` to `O(|MC|)`.
//!
//! Two algorithms are provided, matching the paper's Table I comparison:
//! average-linkage [`hierarchical`] agglomerative clustering (the paper's
//! choice) and [`kmeans`]. Cluster quality is measured with the
//! [`silhouette`] coefficient.

pub mod dbscan;
pub mod hierarchical;
pub mod kmeans;
pub mod knn;
pub mod silhouette;

use crate::error::{Result, SelectionError};
use crate::ids::ModelId;
use crate::matrix::PerformanceMatrix;
use serde::{Deserialize, Serialize};

/// A partition of the model repository into clusters.
///
/// `assignments[m] = c` maps every model index to a cluster index in
/// `0..n_clusters`. Cluster indices are always compact (every index in the
/// range is inhabited).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clustering {
    assignments: Vec<usize>,
    n_clusters: usize,
}

impl Clustering {
    /// Build from raw assignments; re-labels clusters to a compact range.
    pub fn new(assignments: Vec<usize>) -> Result<Self> {
        if assignments.is_empty() {
            return Err(SelectionError::Empty("cluster assignments"));
        }
        let mut remap: Vec<Option<usize>> = Vec::new();
        let mut compact = Vec::with_capacity(assignments.len());
        // Running label counter keeps relabelling O(M) — the former
        // count-the-assigned scan per model was O(M·C), which dominated
        // at 10⁵-model worlds.
        let mut next = 0usize;
        for &a in &assignments {
            if a >= remap.len() {
                remap.resize(a + 1, None);
            }
            let label = *remap[a].get_or_insert_with(|| {
                let label = next;
                next += 1;
                label
            });
            compact.push(label);
        }
        Ok(Self {
            assignments: compact,
            n_clusters: next,
        })
    }

    /// Number of models in the partition.
    #[inline]
    pub fn n_models(&self) -> usize {
        self.assignments.len()
    }

    /// Number of clusters.
    #[inline]
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    /// Cluster index of a model — `c(m_j)` in the paper.
    #[inline]
    pub fn cluster_of(&self, m: ModelId) -> usize {
        self.assignments[m.index()]
    }

    /// Raw assignment slice.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Models belonging to cluster `c`.
    pub fn members(&self, c: usize) -> Vec<ModelId> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == c)
            .map(|(i, _)| ModelId::from(i))
            .collect()
    }

    /// Size of cluster `c` — `|C_c|`.
    pub fn cluster_size(&self, c: usize) -> usize {
        self.assignments.iter().filter(|&&a| a == c).count()
    }

    /// Size of every cluster in one O(M) pass, indexed by cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.n_clusters];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }

    /// Indices of non-singleton clusters (`|C_i| > 1`) — the only clusters
    /// whose representatives get an online proxy-score computation (Eq. 3).
    pub fn non_singleton_clusters(&self) -> Vec<usize> {
        let sizes = self.cluster_sizes();
        (0..self.n_clusters).filter(|&c| sizes[c] > 1).collect()
    }

    /// Indices of singleton clusters (`|C_i| = 1`), whose members receive a
    /// propagated proxy score (Eq. 4).
    pub fn singleton_clusters(&self) -> Vec<usize> {
        let sizes = self.cluster_sizes();
        (0..self.n_clusters).filter(|&c| sizes[c] == 1).collect()
    }

    /// Whether a model sits in a non-singleton cluster.
    pub fn in_non_singleton(&self, m: ModelId) -> bool {
        self.cluster_size(self.cluster_of(m)) > 1
    }

    /// The representative model `m(C_c)` of each cluster: the member with
    /// the **maximum average accuracy on the benchmark datasets** (§III-A).
    /// Returned indexed by cluster.
    pub fn representatives(&self, matrix: &PerformanceMatrix) -> Result<Vec<ModelId>> {
        if matrix.n_models() != self.n_models() {
            return Err(SelectionError::DimensionMismatch {
                what: "clustering vs matrix models",
                expected: matrix.n_models(),
                got: self.n_models(),
            });
        }
        // One O(M) pass instead of a members() scan per cluster. Ties keep
        // the *later* (higher-id) member, matching what the historical
        // `members(c).max_by(...)` produced (`max_by` returns the last of
        // equal maxima).
        let mut best: Vec<Option<(f64, ModelId)>> = vec![None; self.n_clusters];
        for (i, &c) in self.assignments.iter().enumerate() {
            let m = ModelId::from(i);
            let acc = matrix.avg_accuracy(m);
            match best[c] {
                Some((top, _)) if acc.total_cmp(&top).is_lt() => {}
                _ => best[c] = Some((acc, m)),
            }
        }
        Ok(best
            .into_iter()
            .map(|slot| slot.expect("compact clustering has no empty clusters").1)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compacts_labels() {
        let c = Clustering::new(vec![5, 5, 9, 2]).unwrap();
        assert_eq!(c.n_clusters(), 3);
        assert_eq!(c.assignments(), &[0, 0, 1, 2]);
    }

    #[test]
    fn membership_queries() {
        let c = Clustering::new(vec![0, 0, 1, 2, 1]).unwrap();
        assert_eq!(c.members(1), vec![ModelId(2), ModelId(4)]);
        assert_eq!(c.cluster_size(0), 2);
        assert_eq!(c.non_singleton_clusters(), vec![0, 1]);
        assert_eq!(c.singleton_clusters(), vec![2]);
        assert!(c.in_non_singleton(ModelId(0)));
        assert!(!c.in_non_singleton(ModelId(3)));
        assert_eq!(c.cluster_of(ModelId(4)), 1);
    }

    #[test]
    fn rejects_empty() {
        assert!(Clustering::new(vec![]).is_err());
    }

    #[test]
    fn representative_is_highest_avg_accuracy_member() {
        let m = PerformanceMatrix::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec!["d0".into(), "d1".into()],
            vec![vec![0.9, 0.5, 0.6], vec![0.8, 0.6, 0.7]],
        )
        .unwrap();
        let c = Clustering::new(vec![0, 0, 1]).unwrap();
        let reps = c.representatives(&m).unwrap();
        assert_eq!(reps, vec![ModelId(0), ModelId(2)]);
    }

    #[test]
    fn representative_dimension_check() {
        let m =
            PerformanceMatrix::new(vec!["a".into()], vec!["d0".into()], vec![vec![0.9]]).unwrap();
        let c = Clustering::new(vec![0, 1]).unwrap();
        assert!(c.representatives(&m).is_err());
    }
}
