//! Agglomerative hierarchical clustering — the paper's preferred algorithm
//! (Table I shows it beats k-means on performance-based similarity).
//!
//! The implementation is classic bottom-up agglomeration over a precomputed
//! distance matrix with a pluggable linkage. Clusters can be extracted
//! either by target count (`cut_k`) or by a distance threshold
//! (`cut_distance`); the latter is what naturally yields the paper's mixture
//! of non-singleton and singleton clusters.

use super::Clustering;
use crate::error::{Result, SelectionError};
use serde::{Deserialize, Serialize};

/// Linkage criterion: how the distance between two merged clusters is
/// defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Linkage {
    /// Unweighted average of pairwise distances (UPGMA) — the default and
    /// the variant used in the experiments.
    Average,
    /// Minimum pairwise distance.
    Single,
    /// Maximum pairwise distance.
    Complete,
}

/// One merge step of the dendrogram: clusters `a` and `b` (node indices)
/// merged at `distance` into node `n_leaves + step`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Merge {
    /// First merged node (leaf `< n_leaves`, internal otherwise).
    pub a: usize,
    /// Second merged node.
    pub b: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
}

/// The full merge tree produced by agglomeration over `n` leaves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dendrogram {
    n_leaves: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Number of original points.
    #[inline]
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// Merge steps in execution order (non-decreasing distance for average
    /// linkage on a metric input; not guaranteed for arbitrary inputs).
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cut the dendrogram into exactly `k` clusters by undoing the last
    /// `k − 1` merges.
    pub fn cut_k(&self, k: usize) -> Result<Clustering> {
        if k == 0 || k > self.n_leaves {
            return Err(SelectionError::TooManyClusters {
                points: self.n_leaves,
                clusters: k,
            });
        }
        self.cut_after(self.n_leaves - k)
    }

    /// Cut at a distance threshold: apply every merge whose distance is
    /// `<= threshold`.
    pub fn cut_distance(&self, threshold: f64) -> Result<Clustering> {
        let applied = self
            .merges
            .iter()
            .take_while(|m| m.distance <= threshold)
            .count();
        self.cut_after(applied)
    }

    fn cut_after(&self, n_merges: usize) -> Result<Clustering> {
        let mut parent: Vec<usize> = (0..self.n_leaves + n_merges).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (step, m) in self.merges.iter().take(n_merges).enumerate() {
            let node = self.n_leaves + step;
            let ra = find(&mut parent, m.a);
            let rb = find(&mut parent, m.b);
            parent[ra] = node;
            parent[rb] = node;
        }
        let mut assignments = Vec::with_capacity(self.n_leaves);
        for leaf in 0..self.n_leaves {
            assignments.push(find(&mut parent, leaf));
        }
        // Clustering::new compacts the arbitrary root labels.
        Clustering::new(assignments)
    }
}

/// Run agglomerative clustering over a row-major `n × n` distance matrix.
///
/// Complexity is `O(n³)` worst-case, which is immaterial at model-repository
/// scale (tens to low thousands of models; see the `clustering` bench).
pub fn agglomerate(distances: &[f64], n: usize, linkage: Linkage) -> Result<Dendrogram> {
    if n == 0 {
        return Err(SelectionError::Empty("points"));
    }
    if distances.len() != n * n {
        return Err(SelectionError::DimensionMismatch {
            what: "distance matrix",
            expected: n * n,
            got: distances.len(),
        });
    }
    for (i, &d) in distances.iter().enumerate() {
        if !d.is_finite() || d < 0.0 {
            return Err(SelectionError::InvalidValue {
                what: "distance",
                value: distances[i],
            });
        }
    }

    // active[i] = Some(node index, member count); cluster distances kept in a
    // working matrix updated with the Lance-Williams formula for each linkage.
    let mut work: Vec<f64> = distances.to_vec();
    let mut active: Vec<bool> = vec![true; n];
    let mut node_of: Vec<usize> = (0..n).collect();
    let mut sizes: Vec<usize> = vec![1; n];
    let mut merges = Vec::with_capacity(n.saturating_sub(1));

    for step in 0..n.saturating_sub(1) {
        // Find the closest active pair.
        let mut best = (usize::MAX, usize::MAX, f64::INFINITY);
        for i in 0..n {
            if !active[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !active[j] {
                    continue;
                }
                let d = work[i * n + j];
                if d < best.2 {
                    best = (i, j, d);
                }
            }
        }
        let (i, j, dist) = best;
        debug_assert!(i != usize::MAX, "there are always >= 2 active clusters");

        merges.push(Merge {
            a: node_of[i],
            b: node_of[j],
            distance: dist,
        });

        // Merge j into i; i now represents the new node.
        let (si, sj) = (sizes[i] as f64, sizes[j] as f64);
        for m in 0..n {
            if !active[m] || m == i || m == j {
                continue;
            }
            let dim = work[i * n + m];
            let djm = work[j * n + m];
            let new_d = match linkage {
                Linkage::Average => (si * dim + sj * djm) / (si + sj),
                Linkage::Single => dim.min(djm),
                Linkage::Complete => dim.max(djm),
            };
            work[i * n + m] = new_d;
            work[m * n + i] = new_d;
        }
        active[j] = false;
        sizes[i] += sizes[j];
        node_of[i] = n + step;
    }

    Ok(Dendrogram {
        n_leaves: n,
        merges,
    })
}

/// Convenience: agglomerate and cut to `k` clusters in one call.
///
/// ```
/// use tps_core::cluster::hierarchical::{hierarchical_k, Linkage};
/// use tps_core::ids::ModelId;
///
/// // Distances for two tight pairs far from each other.
/// let d = vec![
///     0.0, 0.1, 1.0, 1.1,
///     0.1, 0.0, 0.9, 1.0,
///     1.0, 0.9, 0.0, 0.1,
///     1.1, 1.0, 0.1, 0.0,
/// ];
/// let clustering = hierarchical_k(&d, 4, 2, Linkage::Average)?;
/// assert_eq!(clustering.cluster_of(ModelId(0)), clustering.cluster_of(ModelId(1)));
/// assert_ne!(clustering.cluster_of(ModelId(0)), clustering.cluster_of(ModelId(2)));
/// # Ok::<(), tps_core::error::SelectionError>(())
/// ```
pub fn hierarchical_k(
    distances: &[f64],
    n: usize,
    k: usize,
    linkage: Linkage,
) -> Result<Clustering> {
    agglomerate(distances, n, linkage)?.cut_k(k)
}

/// Convenience: agglomerate and cut at a distance threshold.
pub fn hierarchical_threshold(
    distances: &[f64],
    n: usize,
    threshold: f64,
    linkage: Linkage,
) -> Result<Clustering> {
    agglomerate(distances, n, linkage)?.cut_distance(threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distance matrix for points on a line at 0, 1, 10, 11.
    fn line_points() -> (Vec<f64>, usize) {
        let xs: [f64; 4] = [0.0, 1.0, 10.0, 11.0];
        let n = xs.len();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                d[i * n + j] = (xs[i] - xs[j]).abs();
            }
        }
        (d, n)
    }

    #[test]
    fn merges_nearest_first() {
        let (d, n) = line_points();
        let dend = agglomerate(&d, n, Linkage::Average).unwrap();
        assert_eq!(dend.merges().len(), 3);
        // First two merges are the two tight pairs at distance 1.
        assert_eq!(dend.merges()[0].distance, 1.0);
        assert_eq!(dend.merges()[1].distance, 1.0);
        assert!(dend.merges()[2].distance > 5.0);
    }

    #[test]
    fn cut_k_two_clusters() {
        let (d, n) = line_points();
        let c = hierarchical_k(&d, n, 2, Linkage::Average).unwrap();
        assert_eq!(c.n_clusters(), 2);
        assert_eq!(
            c.cluster_of(crate::ids::ModelId(0)),
            c.cluster_of(crate::ids::ModelId(1))
        );
        assert_eq!(
            c.cluster_of(crate::ids::ModelId(2)),
            c.cluster_of(crate::ids::ModelId(3))
        );
        assert_ne!(
            c.cluster_of(crate::ids::ModelId(0)),
            c.cluster_of(crate::ids::ModelId(2))
        );
    }

    #[test]
    fn cut_k_extremes() {
        let (d, n) = line_points();
        let dend = agglomerate(&d, n, Linkage::Average).unwrap();
        let all = dend.cut_k(1).unwrap();
        assert_eq!(all.n_clusters(), 1);
        let singletons = dend.cut_k(n).unwrap();
        assert_eq!(singletons.n_clusters(), n);
        assert!(dend.cut_k(0).is_err());
        assert!(dend.cut_k(n + 1).is_err());
    }

    #[test]
    fn cut_distance_threshold() {
        let (d, n) = line_points();
        let dend = agglomerate(&d, n, Linkage::Average).unwrap();
        let c = dend.cut_distance(2.0).unwrap();
        assert_eq!(c.n_clusters(), 2);
        let c = dend.cut_distance(0.5).unwrap();
        assert_eq!(c.n_clusters(), 4);
        let c = dend.cut_distance(100.0).unwrap();
        assert_eq!(c.n_clusters(), 1);
    }

    #[test]
    fn single_point() {
        let dend = agglomerate(&[0.0], 1, Linkage::Average).unwrap();
        assert_eq!(dend.merges().len(), 0);
        assert_eq!(dend.cut_k(1).unwrap().n_clusters(), 1);
    }

    #[test]
    fn linkage_variants_agree_on_well_separated_blobs() {
        let (d, n) = line_points();
        for linkage in [Linkage::Average, Linkage::Single, Linkage::Complete] {
            let c = hierarchical_k(&d, n, 2, linkage).unwrap();
            assert_eq!(c.n_clusters(), 2, "{linkage:?}");
        }
    }

    #[test]
    fn rejects_bad_matrix() {
        assert!(agglomerate(&[0.0, 1.0], 2, Linkage::Average).is_err());
        assert!(agglomerate(&[], 0, Linkage::Average).is_err());
        assert!(agglomerate(&[0.0, -1.0, -1.0, 0.0], 2, Linkage::Average).is_err());
        assert!(agglomerate(&[0.0, f64::NAN, f64::NAN, 0.0], 2, Linkage::Average).is_err());
    }

    #[test]
    fn average_linkage_uses_weighted_mean() {
        // Three points: 0, 1, 5. After merging {0,1}, distance to {5} under
        // UPGMA is (5 + 4) / 2 = 4.5.
        let xs: [f64; 3] = [0.0, 1.0, 5.0];
        let n = 3;
        let mut d = vec![0.0; 9];
        for i in 0..n {
            for j in 0..n {
                d[i * n + j] = (xs[i] - xs[j]).abs();
            }
        }
        let dend = agglomerate(&d, n, Linkage::Average).unwrap();
        assert!((dend.merges()[1].distance - 4.5).abs() < 1e-12);
    }
}
