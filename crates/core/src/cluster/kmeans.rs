//! K-means clustering (Lloyd's algorithm with k-means++ seeding).
//!
//! Operates on the model performance vectors (rows of the transposed
//! performance matrix) or on any other embedding (e.g. the text embeddings
//! used by Table I's text-based similarity).

use super::Clustering;
use crate::error::{Result, SelectionError};
use rand::Rng;

/// Configuration for [`kmeans`].
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters `k`.
    pub k: usize,
    /// Maximum Lloyd iterations before declaring convergence.
    pub max_iter: usize,
    /// Number of independent restarts; the run with the lowest inertia wins.
    pub n_restarts: usize,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 8,
            max_iter: 100,
            n_restarts: 8,
        }
    }
}

/// Run k-means over `points` (each an equal-length vector), returning the
/// best-of-restarts [`Clustering`].
pub fn kmeans<R: Rng + ?Sized>(
    points: &[Vec<f64>],
    config: &KMeansConfig,
    rng: &mut R,
) -> Result<Clustering> {
    validate(points, config.k)?;
    let mut best: Option<(f64, Vec<usize>)> = None;
    for _ in 0..config.n_restarts.max(1) {
        let (inertia, assign) = kmeans_once(points, config, rng);
        if best.as_ref().is_none_or(|(bi, _)| inertia < *bi) {
            best = Some((inertia, assign));
        }
    }
    Clustering::new(best.expect("at least one restart ran").1)
}

fn validate(points: &[Vec<f64>], k: usize) -> Result<()> {
    if points.is_empty() {
        return Err(SelectionError::Empty("points"));
    }
    if k == 0 || k > points.len() {
        return Err(SelectionError::TooManyClusters {
            points: points.len(),
            clusters: k,
        });
    }
    let dim = points[0].len();
    if dim == 0 {
        return Err(SelectionError::Empty("point dimensions"));
    }
    for p in points {
        if p.len() != dim {
            return Err(SelectionError::DimensionMismatch {
                what: "point",
                expected: dim,
                got: p.len(),
            });
        }
    }
    Ok(())
}

fn kmeans_once<R: Rng + ?Sized>(
    points: &[Vec<f64>],
    config: &KMeansConfig,
    rng: &mut R,
) -> (f64, Vec<usize>) {
    let k = config.k;
    let mut centroids = plus_plus_init(points, k, rng);
    let mut assign = vec![0usize; points.len()];
    for _ in 0..config.max_iter {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let nearest = nearest_centroid(p, &centroids);
            if assign[i] != nearest {
                assign[i] = nearest;
                changed = true;
            }
        }
        recompute_centroids(points, &assign, &mut centroids, rng);
        if !changed {
            break;
        }
    }
    let inertia = points
        .iter()
        .enumerate()
        .map(|(i, p)| sq_dist(p, &centroids[assign[i]]))
        .sum();
    (inertia, assign)
}

/// k-means++ seeding: first centroid uniform, subsequent centroids sampled
/// proportionally to squared distance from the nearest chosen centroid.
fn plus_plus_init<R: Rng + ?Sized>(points: &[Vec<f64>], k: usize, rng: &mut R) -> Vec<Vec<f64>> {
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= f64::EPSILON {
            // All points coincide with chosen centroids; fall back to uniform.
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            let d = sq_dist(p, centroids.last().expect("just pushed"));
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

fn nearest_centroid(p: &[f64], centroids: &[Vec<f64>]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = sq_dist(p, centroid);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

fn recompute_centroids<R: Rng + ?Sized>(
    points: &[Vec<f64>],
    assign: &[usize],
    centroids: &mut [Vec<f64>],
    rng: &mut R,
) {
    let dim = points[0].len();
    let k = centroids.len();
    let mut counts = vec![0usize; k];
    for c in centroids.iter_mut() {
        c.iter_mut().for_each(|x| *x = 0.0);
    }
    for (i, p) in points.iter().enumerate() {
        counts[assign[i]] += 1;
        for (acc, &x) in centroids[assign[i]].iter_mut().zip(p) {
            *acc += x;
        }
    }
    for (c, centroid) in centroids.iter_mut().enumerate() {
        if counts[c] == 0 {
            // Re-seed an empty cluster at a random point to keep k clusters.
            let p = &points[rng.gen_range(0..points.len())];
            centroid.copy_from_slice(p);
        } else {
            for x in centroid.iter_mut().take(dim) {
                *x /= counts[c] as f64;
            }
        }
    }
}

#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + 0.01 * i as f64, 0.0]);
        }
        for i in 0..10 {
            pts.push(vec![5.0 + 0.01 * i as f64, 5.0]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs();
        let mut rng = StdRng::seed_from_u64(7);
        let c = kmeans(
            &pts,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(c.n_clusters(), 2);
        let first = c.assignments()[0];
        assert!(c.assignments()[..10].iter().all(|&a| a == first));
        assert!(c.assignments()[10..].iter().all(|&a| a != first));
    }

    #[test]
    fn k_equals_n_gives_singletons() {
        let pts: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64 * 10.0]).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let c = kmeans(
            &pts,
            &KMeansConfig {
                k: 4,
                n_restarts: 4,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(c.n_clusters(), 4);
        assert!((0..4).all(|cl| c.cluster_size(cl) == 1));
    }

    #[test]
    fn rejects_bad_config() {
        let pts = vec![vec![1.0], vec![2.0]];
        let mut rng = StdRng::seed_from_u64(0);
        assert!(kmeans(
            &pts,
            &KMeansConfig {
                k: 0,
                ..Default::default()
            },
            &mut rng
        )
        .is_err());
        assert!(kmeans(
            &pts,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
            &mut rng
        )
        .is_err());
        assert!(kmeans(&[], &KMeansConfig::default(), &mut rng).is_err());
    }

    #[test]
    fn rejects_ragged_points() {
        let pts = vec![vec![1.0, 2.0], vec![1.0]];
        let mut rng = StdRng::seed_from_u64(0);
        assert!(kmeans(
            &pts,
            &KMeansConfig {
                k: 1,
                ..Default::default()
            },
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = two_blobs();
        let cfg = KMeansConfig {
            k: 2,
            ..Default::default()
        };
        let a = kmeans(&pts, &cfg, &mut StdRng::seed_from_u64(42)).unwrap();
        let b = kmeans(&pts, &cfg, &mut StdRng::seed_from_u64(42)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn identical_points_still_produce_k_clusters() {
        let pts = vec![vec![1.0, 1.0]; 5];
        let mut rng = StdRng::seed_from_u64(3);
        let c = kmeans(
            &pts,
            &KMeansConfig {
                k: 2,
                n_restarts: 1,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(c.n_models(), 5);
    }
}
