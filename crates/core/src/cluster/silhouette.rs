//! Silhouette coefficient (Rousseeuw 1987) — the clustering quality metric
//! used throughout the paper's evaluation (Tables I, X; Fig. 6).
//!
//! For each point `i` in a cluster of size > 1:
//! `a(i)` = mean distance to other members of its cluster,
//! `b(i)` = minimum over other clusters of the mean distance to that
//! cluster's members, and `s(i) = (b − a) / max(a, b)`. Points in singleton
//! clusters score 0 by convention (scikit-learn's convention as well), and
//! the coefficient is the mean of `s(i)` over all points.

use super::Clustering;
use crate::error::{Result, SelectionError};

/// Mean silhouette over all points, from a row-major `n × n` distance
/// matrix. Requires at least 2 clusters and 2 points.
pub fn silhouette(distances: &[f64], n: usize, clustering: &Clustering) -> Result<f64> {
    if clustering.n_models() != n {
        return Err(SelectionError::DimensionMismatch {
            what: "clustering vs distance points",
            expected: n,
            got: clustering.n_models(),
        });
    }
    if distances.len() != n * n {
        return Err(SelectionError::DimensionMismatch {
            what: "distance matrix",
            expected: n * n,
            got: distances.len(),
        });
    }
    if n < 2 || clustering.n_clusters() < 2 {
        return Err(SelectionError::InvalidConfig(
            "silhouette needs >= 2 points and >= 2 clusters".into(),
        ));
    }

    let k = clustering.n_clusters();
    let assign = clustering.assignments();
    let mut cluster_sizes = vec![0usize; k];
    for &a in assign {
        cluster_sizes[a] += 1;
    }

    let mut total = 0.0;
    // Reused per-point scratch: summed distance to every cluster.
    let mut sums = vec![0.0f64; k];
    for i in 0..n {
        let ci = assign[i];
        if cluster_sizes[ci] == 1 {
            // Singleton: s(i) = 0.
            continue;
        }
        sums.iter_mut().for_each(|s| *s = 0.0);
        for j in 0..n {
            if j != i {
                sums[assign[j]] += distances[i * n + j];
            }
        }
        let a = sums[ci] / (cluster_sizes[ci] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != ci && cluster_sizes[c] > 0)
            .map(|c| sums[c] / cluster_sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    Ok(total / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist_from_points(xs: &[f64]) -> Vec<f64> {
        let n = xs.len();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                d[i * n + j] = (xs[i] - xs[j]).abs();
            }
        }
        d
    }

    #[test]
    fn perfect_separation_scores_high() {
        let xs = [0.0, 0.1, 10.0, 10.1];
        let d = dist_from_points(&xs);
        let c = Clustering::new(vec![0, 0, 1, 1]).unwrap();
        let s = silhouette(&d, 4, &c).unwrap();
        assert!(s > 0.95, "got {s}");
    }

    #[test]
    fn bad_partition_scores_low() {
        let xs = [0.0, 0.1, 10.0, 10.1];
        let d = dist_from_points(&xs);
        // Pair each near point with a far point: worst possible split.
        let c = Clustering::new(vec![0, 1, 0, 1]).unwrap();
        let s = silhouette(&d, 4, &c).unwrap();
        assert!(s < 0.0, "got {s}");
    }

    #[test]
    fn bounded_in_unit_interval() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let d = dist_from_points(&xs);
        let c = Clustering::new(vec![0, 0, 1, 1, 2, 2]).unwrap();
        let s = silhouette(&d, 6, &c).unwrap();
        assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn singletons_contribute_zero() {
        let xs = [0.0, 0.1, 50.0];
        let d = dist_from_points(&xs);
        let c = Clustering::new(vec![0, 0, 1]).unwrap();
        let s = silhouette(&d, 3, &c).unwrap();
        // The two clustered points score near 1; singleton adds 0; mean ≈ 2/3.
        assert!(s > 0.6 && s < 0.7, "got {s}");
    }

    #[test]
    fn rejects_single_cluster() {
        let d = dist_from_points(&[0.0, 1.0]);
        let c = Clustering::new(vec![0, 0]).unwrap();
        assert!(silhouette(&d, 2, &c).is_err());
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let d = dist_from_points(&[0.0, 1.0]);
        let c = Clustering::new(vec![0, 1, 0]).unwrap();
        assert!(silhouette(&d, 2, &c).is_err());
        let c2 = Clustering::new(vec![0, 1]).unwrap();
        assert!(silhouette(&d[..2], 2, &c2).is_err());
    }
}
