//! Error types for the selection framework.
//!
//! The crate uses a single flat error enum: selection is a pipeline of small
//! numeric stages and callers almost always want to know *which* stage
//! rejected its input and why, not to programmatically recover per-variant.

use std::error::Error as StdError;
use std::fmt;
use std::sync::Arc;

/// Errors produced by the two-phase selection framework.
///
/// Marked `#[non_exhaustive]`: downstream crates must keep a wildcard arm,
/// so future variants (like the fault-layer ones added for the robustness
/// work) never break them.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
#[allow(missing_docs)] // field names are self-describing; variant docs carry semantics
pub enum SelectionError {
    /// A performance matrix was built with inconsistent dimensions, or an
    /// accessor was given an out-of-range model/dataset index.
    DimensionMismatch {
        what: &'static str,
        expected: usize,
        got: usize,
    },
    /// An operation that requires a non-empty collection received an empty
    /// one (e.g. clustering zero models, recalling from an empty repository).
    Empty(&'static str),
    /// A clustering was requested with more clusters than points.
    TooManyClusters { points: usize, clusters: usize },
    /// A probability/accuracy value fell outside `[0, 1]` or was not finite.
    InvalidValue { what: &'static str, value: f64 },
    /// A prediction matrix row did not form a probability distribution.
    NotADistribution { row: usize, sum: f64 },
    /// A model or dataset id referenced an entity the structure does not
    /// contain.
    UnknownId { what: &'static str, id: usize },
    /// The selection algorithm was configured inconsistently (e.g. zero
    /// stages, zero recall size).
    InvalidConfig(String),
    /// A low-level substrate condition (crashed training job, corrupted
    /// checkpoint, failed inference pass) with a free-form description.
    /// Usually appears as the `cause` of a [`SelectionError::Substrate`].
    Backend(String),
    /// A substrate call (training stage, proxy inference, feature pass)
    /// failed for one specific model. This is the only variant the
    /// resilience layer considers recoverable: `transient: true` means the
    /// same call may succeed if retried, `transient: false` means the model
    /// should be quarantined. The underlying condition is chained via
    /// [`std::error::Error::source`] (kept behind an `Arc` so the error
    /// stays `Clone + PartialEq`).
    Substrate {
        /// Whether retrying the same call may succeed.
        transient: bool,
        /// The call site that failed, e.g. `"trainer.advance"`.
        site: &'static str,
        /// Index of the model whose call failed.
        model: usize,
        /// The underlying condition.
        cause: Arc<SelectionError>,
    },
}

/// How the resilience layer should react to an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Retrying the exact same call may succeed (e.g. a transient OOM).
    Transient,
    /// The call will keep failing for this model; quarantine it and keep
    /// the run alive.
    Permanent,
    /// A configuration or programming error; abort the run as before.
    Fatal,
}

impl SelectionError {
    /// Wrap `cause` as a retryable substrate failure at `site` for `model`.
    pub fn transient_fault(site: &'static str, model: usize, cause: SelectionError) -> Self {
        SelectionError::Substrate {
            transient: true,
            site,
            model,
            cause: Arc::new(cause),
        }
    }

    /// Wrap `cause` as a non-retryable substrate failure at `site` for
    /// `model`.
    pub fn permanent_fault(site: &'static str, model: usize, cause: SelectionError) -> Self {
        SelectionError::Substrate {
            transient: false,
            site,
            model,
            cause: Arc::new(cause),
        }
    }

    /// Classify this error for the retry/quarantine logic. Only
    /// [`SelectionError::Substrate`] failures are recoverable; every other
    /// variant keeps its historical fail-fast semantics.
    pub fn classify(&self) -> FaultClass {
        match self {
            SelectionError::Substrate {
                transient: true, ..
            } => FaultClass::Transient,
            SelectionError::Substrate {
                transient: false, ..
            } => FaultClass::Permanent,
            _ => FaultClass::Fatal,
        }
    }

    /// The model a substrate failure implicates, if this is one.
    pub fn fault_model(&self) -> Option<usize> {
        match self {
            SelectionError::Substrate { model, .. } => Some(*model),
            _ => None,
        }
    }

    /// Walk the [`source`](std::error::Error::source) chain to the
    /// innermost error.
    pub fn root_cause(&self) -> &SelectionError {
        let mut cur = self;
        while let SelectionError::Substrate { cause, .. } = cur {
            cur = cause;
        }
        cur
    }

    /// The whole error chain rendered as one line
    /// (`outer: caused by: inner`), for logs and casualty records.
    pub fn chain_to_string(&self) -> String {
        let mut out = self.to_string();
        let mut cur: &dyn StdError = self;
        while let Some(next) = cur.source() {
            out.push_str(": caused by: ");
            out.push_str(&next.to_string());
            cur = next;
        }
        out
    }
}

impl fmt::Display for SelectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectionError::DimensionMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "dimension mismatch for {what}: expected {expected}, got {got}"
            ),
            SelectionError::Empty(what) => write!(f, "{what} must not be empty"),
            SelectionError::TooManyClusters { points, clusters } => {
                write!(f, "cannot form {clusters} clusters from {points} points")
            }
            SelectionError::InvalidValue { what, value } => {
                write!(f, "invalid value for {what}: {value}")
            }
            SelectionError::NotADistribution { row, sum } => {
                write!(
                    f,
                    "prediction row {row} is not a distribution (sums to {sum})"
                )
            }
            SelectionError::UnknownId { what, id } => write!(f, "unknown {what} id {id}"),
            SelectionError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SelectionError::Backend(what) => write!(f, "substrate backend failure: {what}"),
            SelectionError::Substrate {
                transient,
                site,
                model,
                ..
            } => write!(
                f,
                "{} substrate failure at {site} for model m{model}",
                if *transient { "transient" } else { "permanent" }
            ),
        }
    }
}

impl StdError for SelectionError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            SelectionError::Substrate { cause, .. } => Some(cause.as_ref()),
            _ => None,
        }
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SelectionError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SelectionError::DimensionMismatch {
            what: "performance row",
            expected: 4,
            got: 3,
        };
        let s = e.to_string();
        assert!(s.contains("performance row"));
        assert!(s.contains('4'));
        assert!(s.contains('3'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn StdError) {}
        takes_err(&SelectionError::Empty("models"));
    }

    #[test]
    fn variants_compare_by_value() {
        assert_eq!(
            SelectionError::Empty("models"),
            SelectionError::Empty("models")
        );
        assert_ne!(
            SelectionError::Empty("models"),
            SelectionError::Empty("datasets")
        );
    }

    #[test]
    fn substrate_faults_classify_and_chain() {
        let cause = SelectionError::Backend("simulated OOM".into());
        let transient = SelectionError::transient_fault("trainer.advance", 3, cause.clone());
        let permanent = SelectionError::permanent_fault("oracle.predictions", 7, cause.clone());
        assert_eq!(transient.classify(), FaultClass::Transient);
        assert_eq!(permanent.classify(), FaultClass::Permanent);
        assert_eq!(
            SelectionError::Empty("models").classify(),
            FaultClass::Fatal
        );
        assert_eq!(transient.fault_model(), Some(3));
        assert_eq!(permanent.fault_model(), Some(7));
        assert_eq!(SelectionError::Empty("models").fault_model(), None);
        // source() exposes the cause; root_cause walks to the leaf.
        let src = StdError::source(&transient).expect("has a source");
        assert_eq!(src.to_string(), cause.to_string());
        assert_eq!(transient.root_cause(), &cause);
        // Substrate errors stay Clone + PartialEq (Arc compares by value).
        assert_eq!(transient.clone(), transient);
        assert_ne!(transient, permanent);
    }

    #[test]
    fn chain_renders_every_level() {
        let e = SelectionError::permanent_fault(
            "oracle.predictions",
            2,
            SelectionError::NotADistribution { row: 0, sum: 0.0 },
        );
        let chain = e.chain_to_string();
        assert!(chain.contains("permanent substrate failure"));
        assert!(chain.contains("caused by"));
        assert!(chain.contains("not a distribution"));
        // Non-chained errors render without the separator.
        assert!(!SelectionError::Empty("models")
            .chain_to_string()
            .contains("caused by"));
    }
}
