//! Error types for the selection framework.
//!
//! The crate uses a single flat error enum: selection is a pipeline of small
//! numeric stages and callers almost always want to know *which* stage
//! rejected its input and why, not to programmatically recover per-variant.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by the two-phase selection framework.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field names are self-describing; variant docs carry semantics
pub enum SelectionError {
    /// A performance matrix was built with inconsistent dimensions, or an
    /// accessor was given an out-of-range model/dataset index.
    DimensionMismatch {
        what: &'static str,
        expected: usize,
        got: usize,
    },
    /// An operation that requires a non-empty collection received an empty
    /// one (e.g. clustering zero models, recalling from an empty repository).
    Empty(&'static str),
    /// A clustering was requested with more clusters than points.
    TooManyClusters { points: usize, clusters: usize },
    /// A probability/accuracy value fell outside `[0, 1]` or was not finite.
    InvalidValue { what: &'static str, value: f64 },
    /// A prediction matrix row did not form a probability distribution.
    NotADistribution { row: usize, sum: f64 },
    /// A model or dataset id referenced an entity the structure does not
    /// contain.
    UnknownId { what: &'static str, id: usize },
    /// The selection algorithm was configured inconsistently (e.g. zero
    /// stages, zero recall size).
    InvalidConfig(String),
}

impl fmt::Display for SelectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectionError::DimensionMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "dimension mismatch for {what}: expected {expected}, got {got}"
            ),
            SelectionError::Empty(what) => write!(f, "{what} must not be empty"),
            SelectionError::TooManyClusters { points, clusters } => {
                write!(f, "cannot form {clusters} clusters from {points} points")
            }
            SelectionError::InvalidValue { what, value } => {
                write!(f, "invalid value for {what}: {value}")
            }
            SelectionError::NotADistribution { row, sum } => {
                write!(
                    f,
                    "prediction row {row} is not a distribution (sums to {sum})"
                )
            }
            SelectionError::UnknownId { what, id } => write!(f, "unknown {what} id {id}"),
            SelectionError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl StdError for SelectionError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SelectionError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SelectionError::DimensionMismatch {
            what: "performance row",
            expected: 4,
            got: 3,
        };
        let s = e.to_string();
        assert!(s.contains("performance row"));
        assert!(s.contains('4'));
        assert!(s.contains('3'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn StdError) {}
        takes_err(&SelectionError::Empty("models"));
    }

    #[test]
    fn variants_compare_by_value() {
        assert_eq!(
            SelectionError::Empty("models"),
            SelectionError::Empty("models")
        );
        assert_ne!(
            SelectionError::Empty("models"),
            SelectionError::Empty("datasets")
        );
    }
}
