//! Epoch-equivalent accounting (paper §V-C/D).
//!
//! The paper reports "runtime" as the **total number of fine-tuning epochs**
//! across all models, since per-epoch wall time is constant given fixed
//! training settings and hardware; proxy-score inference is charged at half
//! an epoch per scored model (no backward pass). [`EpochLedger`] mirrors
//! that accounting so Table V/VI speedups are computed identically.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Running tally of epoch-equivalents spent by a selection run.
///
/// ```
/// use tps_core::budget::EpochLedger;
/// let mut ledger = EpochLedger::new();
/// ledger.charge_training(14.0); // fine-selection epochs
/// ledger.charge_proxy(5.0);     // 10 cluster representatives at 0.5 each
/// assert_eq!(ledger.total(), 19.0);
///
/// let mut brute_force = EpochLedger::new();
/// brute_force.charge_training(200.0);
/// assert!((ledger.speedup_vs(&brute_force) - 10.526).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EpochLedger {
    train_epochs: f64,
    proxy_epochs: f64,
    /// Epoch-equivalents burned waiting out retried substrate calls
    /// (deterministic backoff, see `fault::RetryPolicy`). Kept separate from
    /// `train_epochs` so the ledger still reconciles exactly against the
    /// trainer's own stage count. `#[serde(default)]` keeps pre-fault-layer
    /// JSON deserialising.
    #[serde(default)]
    retry_epochs: f64,
}

impl EpochLedger {
    /// A fresh, empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge fine-tuning epochs.
    pub fn charge_training(&mut self, epochs: f64) {
        debug_assert!(epochs >= 0.0);
        self.train_epochs += epochs;
    }

    /// Charge proxy-score inference epochs (0.5 per scored model in the
    /// paper's accounting).
    pub fn charge_proxy(&mut self, epochs: f64) {
        debug_assert!(epochs >= 0.0);
        self.proxy_epochs += epochs;
    }

    /// Charge retry-backoff epochs for a re-attempted substrate call.
    pub fn charge_retry(&mut self, epochs: f64) {
        debug_assert!(epochs >= 0.0);
        self.retry_epochs += epochs;
    }

    /// Epochs spent on fine-tuning.
    pub fn train_epochs(&self) -> f64 {
        self.train_epochs
    }

    /// Epochs spent waiting out retried substrate calls.
    pub fn retry_epochs(&self) -> f64 {
        self.retry_epochs
    }

    /// Epochs spent on proxy inference.
    pub fn proxy_epochs(&self) -> f64 {
        self.proxy_epochs
    }

    /// Total epoch-equivalents.
    pub fn total(&self) -> f64 {
        self.train_epochs + self.proxy_epochs + self.retry_epochs
    }

    /// Fold another ledger into this one.
    pub fn merge(&mut self, other: &EpochLedger) {
        self.train_epochs += other.train_epochs;
        self.proxy_epochs += other.proxy_epochs;
        self.retry_epochs += other.retry_epochs;
    }

    /// Speedup of this ledger relative to a baseline ledger
    /// (`baseline.total() / self.total()`), e.g. "vs. BF" in Table V.
    pub fn speedup_vs(&self, baseline: &EpochLedger) -> f64 {
        if self.total() == 0.0 {
            f64::INFINITY
        } else {
            baseline.total() / self.total()
        }
    }
}

impl fmt::Display for EpochLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} epochs ({:.1} train + {:.1} proxy",
            self.total(),
            self.train_epochs,
            self.proxy_epochs
        )?;
        if self.retry_epochs > 0.0 {
            write!(f, " + {:.1} retry", self.retry_epochs)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut l = EpochLedger::new();
        l.charge_training(10.0);
        l.charge_training(5.0);
        l.charge_proxy(0.5);
        assert_eq!(l.train_epochs(), 15.0);
        assert_eq!(l.proxy_epochs(), 0.5);
        assert_eq!(l.total(), 15.5);
    }

    #[test]
    fn merge_combines() {
        let mut a = EpochLedger::new();
        a.charge_training(2.0);
        let mut b = EpochLedger::new();
        b.charge_proxy(1.0);
        a.merge(&b);
        assert_eq!(a.total(), 3.0);
    }

    #[test]
    fn speedup_ratio() {
        let mut fast = EpochLedger::new();
        fast.charge_training(10.0);
        let mut slow = EpochLedger::new();
        slow.charge_training(50.0);
        assert_eq!(fast.speedup_vs(&slow), 5.0);
        assert_eq!(EpochLedger::new().speedup_vs(&slow), f64::INFINITY);
    }

    #[test]
    fn display_is_readable() {
        let mut l = EpochLedger::new();
        l.charge_training(19.0);
        l.charge_proxy(2.5);
        assert_eq!(l.to_string(), "21.5 epochs (19.0 train + 2.5 proxy)");
    }

    #[test]
    fn retry_epochs_count_toward_total_not_training() {
        let mut l = EpochLedger::new();
        l.charge_training(10.0);
        l.charge_retry(2.0);
        assert_eq!(l.train_epochs(), 10.0);
        assert_eq!(l.retry_epochs(), 2.0);
        assert_eq!(l.total(), 12.0);
        assert_eq!(
            l.to_string(),
            "12.0 epochs (10.0 train + 0.0 proxy + 2.0 retry)"
        );
        let mut other = EpochLedger::new();
        other.charge_retry(1.0);
        l.merge(&other);
        assert_eq!(l.retry_epochs(), 3.0);
        // Pre-fault-layer JSON (no retry field) still deserialises.
        let old: EpochLedger =
            serde_json::from_str(r#"{"train_epochs":5.0,"proxy_epochs":1.0}"#).unwrap();
        assert_eq!(old.retry_epochs(), 0.0);
        assert_eq!(old.total(), 6.0);
    }
}
