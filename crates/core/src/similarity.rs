//! Model-similarity measures (paper §III-A, Eq. 1; Table I "text-based").
//!
//! Two models are similar when they would achieve similar fine-tuning
//! performance on a new task. The paper measures this in a data-driven way:
//! the average of the **top-k largest** absolute accuracy differences across
//! the benchmark datasets, subtracted from 1 (Eq. 1). Focusing on the
//! largest differences makes the measure sensitive to the datasets where the
//! two models genuinely disagree while ignoring the many datasets where all
//! reasonable models score alike.
//!
//! A text-based alternative (Table I) embeds each model card into a vector
//! and compares by cosine; the paper uses SBERT, we substitute a hashed
//! bag-of-words embedding (see `DESIGN.md` §2).

use crate::error::{Result, SelectionError};
use crate::ids::ModelId;
use crate::matrix::PerformanceMatrix;
use crate::parallel::{pair_indices, try_map_indexed};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Performance-based model similarity, Eq. 1:
/// `sim(m1, m2) = 1 − avg(top_k |vec(m1) − vec(m2)|)`.
///
/// `k` is clamped to the vector length; the appendix-D experiment (Table X)
/// sweeps `k` and the paper settles on `k = 5`.
///
/// ```
/// use tps_core::similarity::performance_similarity;
/// let bert_a = [0.82, 0.90, 0.75];
/// let bert_b = [0.80, 0.91, 0.74];
/// let oddball = [0.51, 0.49, 0.40];
/// let close = performance_similarity(&bert_a, &bert_b, 2)?;
/// let far = performance_similarity(&bert_a, &oddball, 2)?;
/// assert!(close > far);
/// # Ok::<(), tps_core::error::SelectionError>(())
/// ```
pub fn performance_similarity(v1: &[f64], v2: &[f64], k: usize) -> Result<f64> {
    if v1.len() != v2.len() {
        return Err(SelectionError::DimensionMismatch {
            what: "performance vectors",
            expected: v1.len(),
            got: v2.len(),
        });
    }
    if v1.is_empty() {
        return Err(SelectionError::Empty("performance vectors"));
    }
    if k == 0 {
        return Err(SelectionError::InvalidConfig("top-k must be >= 1".into()));
    }
    let mut diffs: Vec<f64> = v1.iter().zip(v2).map(|(a, b)| (a - b).abs()).collect();
    let k = k.min(diffs.len());
    // Partial sort: only the k largest differences matter.
    diffs.sort_unstable_by(|a, b| b.total_cmp(a));
    let avg = diffs[..k].iter().sum::<f64>() / k as f64;
    Ok(1.0 - avg)
}

/// Eq. 1 similarity between two equal-length vectors, with `k` already
/// validated/clamped by the caller. Float-op sequence identical to
/// [`performance_similarity`] so dense and lazy storage agree bitwise.
#[inline]
fn eq1_similarity_unchecked(v1: &[f64], v2: &[f64], k: usize) -> f64 {
    let mut diffs: Vec<f64> = v1.iter().zip(v2).map(|(a, b)| (a - b).abs()).collect();
    let k = k.min(diffs.len());
    diffs.sort_unstable_by(|a, b| b.total_cmp(a));
    let avg = diffs[..k].iter().sum::<f64>() / k as f64;
    1.0 - avg
}

/// Backing storage for a [`SimilarityMatrix`].
enum SimStore {
    /// Row-major dense `n × n` values — the legacy layout; O(M²) memory,
    /// O(1) lookups.
    Dense(Vec<f64>),
    /// Per-model vectors plus the Eq. 1 `k`; entries are recomputed on
    /// demand. O(M·D) memory — the only layout that survives 10⁵–10⁶
    /// model zoos — at O(D log D) per lookup.
    Lazy {
        vectors: Arc<Vec<Vec<f64>>>,
        top_k: usize,
    },
}

/// A symmetric `|M| × |M|` model-similarity matrix with unit diagonal.
///
/// Two storage layouts share this one type: the legacy dense matrix, and a
/// lazy vector-backed form for index-assisted builds where materialising
/// O(M²) floats is exactly what we are trying to avoid (see
/// `DESIGN.md` §5.6).
pub struct SimilarityMatrix {
    n: usize,
    store: SimStore,
    /// Lazily-computed distance view (`1 − sim`), shared by all callers;
    /// clustering asks for the distance matrix several times per build.
    dist_cache: Mutex<Option<Arc<Vec<f64>>>>,
}

impl SimilarityMatrix {
    fn from_parts(n: usize, sim: Vec<f64>) -> Self {
        Self {
            n,
            store: SimStore::Dense(sim),
            dist_cache: Mutex::new(None),
        }
    }

    /// A lazy vector-backed matrix: Eq. 1 entries are computed on demand
    /// from the shared per-model vectors instead of being materialised.
    pub fn lazy_from_vectors(vectors: Arc<Vec<Vec<f64>>>, top_k: usize) -> Result<Self> {
        if vectors.is_empty() {
            return Err(SelectionError::Empty("model vectors"));
        }
        if top_k == 0 {
            return Err(SelectionError::InvalidConfig("top-k must be >= 1".into()));
        }
        let dims = vectors[0].len();
        if dims == 0 {
            return Err(SelectionError::Empty("performance vectors"));
        }
        for v in vectors.iter() {
            if v.len() != dims {
                return Err(SelectionError::DimensionMismatch {
                    what: "performance vectors",
                    expected: dims,
                    got: v.len(),
                });
            }
        }
        Ok(Self {
            n: vectors.len(),
            store: SimStore::Lazy { vectors, top_k },
            dist_cache: Mutex::new(None),
        })
    }

    /// Lazy [`Self::from_performance`]: O(M·D) memory instead of O(M²).
    pub fn lazy_from_performance(matrix: &PerformanceMatrix, top_k: usize) -> Result<Self> {
        Self::lazy_from_vectors(Arc::new(matrix.model_vectors()), top_k)
    }

    /// The Eq. 1 `k` of a lazy matrix; `None` for dense storage (which has
    /// forgotten the metric it was built with).
    pub fn eq1_top_k(&self) -> Option<usize> {
        match &self.store {
            SimStore::Dense(_) => None,
            SimStore::Lazy { top_k, .. } => Some(*top_k),
        }
    }

    /// Whether entries are recomputed on demand (vector-backed storage).
    pub fn is_lazy(&self) -> bool {
        matches!(self.store, SimStore::Lazy { .. })
    }

    /// Compute the Eq. 1 similarity matrix from a performance matrix.
    pub fn from_performance(matrix: &PerformanceMatrix, top_k: usize) -> Result<Self> {
        let vecs = matrix.model_vectors();
        Self::from_vectors_with(&vecs, |_, _, a, b| performance_similarity(a, b, top_k))
    }

    /// Parallel [`Self::from_performance`]: the `O(|M|²)` pairwise loop is
    /// split across `threads` workers. Bit-identical to the serial result.
    pub fn from_performance_par(
        matrix: &PerformanceMatrix,
        top_k: usize,
        threads: usize,
    ) -> Result<Self> {
        let vecs = matrix.model_vectors();
        Self::from_vectors_with_par(&vecs, threads, |_, _, a, b| {
            performance_similarity(a, b, top_k)
        })
    }

    /// Compute a similarity matrix from arbitrary model vectors via cosine —
    /// used for the text-based similarity of Table I. Per-model L2 norms
    /// are computed once up front rather than once per pair, so the O(M²)
    /// loop does O(M) norm work instead of O(M²).
    pub fn from_vectors_cosine(vecs: &[Vec<f64>]) -> Result<Self> {
        let norms = l2_norms(vecs);
        Self::from_vectors_with(vecs, |i, j, a, b| {
            Ok(cosine_similarity_prenorm(a, b, norms[i], norms[j]))
        })
    }

    /// Parallel [`Self::from_vectors_cosine`]. Bit-identical to serial.
    pub fn from_vectors_cosine_par(vecs: &[Vec<f64>], threads: usize) -> Result<Self> {
        let norms = l2_norms(vecs);
        Self::from_vectors_with_par(vecs, threads, |i, j, a, b| {
            Ok(cosine_similarity_prenorm(a, b, norms[i], norms[j]))
        })
    }

    fn from_vectors_with(
        vecs: &[Vec<f64>],
        mut f: impl FnMut(usize, usize, &[f64], &[f64]) -> Result<f64>,
    ) -> Result<Self> {
        if vecs.is_empty() {
            return Err(SelectionError::Empty("model vectors"));
        }
        let n = vecs.len();
        let mut sim = vec![0.0; n * n];
        for i in 0..n {
            sim[i * n + i] = 1.0;
            for j in (i + 1)..n {
                let s = f(i, j, &vecs[i], &vecs[j])?;
                sim[i * n + j] = s;
                sim[j * n + i] = s;
            }
        }
        Ok(Self::from_parts(n, sim))
    }

    fn from_vectors_with_par(
        vecs: &[Vec<f64>],
        threads: usize,
        f: impl Fn(usize, usize, &[f64], &[f64]) -> Result<f64> + Sync,
    ) -> Result<Self> {
        if vecs.is_empty() {
            return Err(SelectionError::Empty("model vectors"));
        }
        let n = vecs.len();
        // The pair list is enumerated in the exact order the serial double
        // loop visits it, so chunked workers also report the serial run's
        // first error.
        let pairs = pair_indices(n);
        let vals = try_map_indexed(&pairs, threads, |_, &(i, j)| f(i, j, &vecs[i], &vecs[j]))?;
        let mut sim = vec![0.0; n * n];
        for i in 0..n {
            sim[i * n + i] = 1.0;
        }
        for (&(i, j), s) in pairs.iter().zip(vals) {
            sim[i * n + j] = s;
            sim[j * n + i] = s;
        }
        Ok(Self::from_parts(n, sim))
    }

    /// Number of models.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the matrix covers no models (never constructible; kept for
    /// API completeness alongside [`Self::len`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Similarity between two models.
    #[inline]
    pub fn similarity(&self, a: ModelId, b: ModelId) -> f64 {
        match &self.store {
            SimStore::Dense(sim) => sim[a.index() * self.n + b.index()],
            SimStore::Lazy { vectors, top_k } => {
                if a == b {
                    // Matches the dense constructors' explicit unit diagonal.
                    1.0
                } else {
                    eq1_similarity_unchecked(&vectors[a.index()], &vectors[b.index()], *top_k)
                }
            }
        }
    }

    /// Distance view: `1 − sim`, floored at zero (cosine similarity can
    /// exceed-free range but Eq. 1 can go slightly negative when vectors
    /// differ by more than 1 on average — impossible for accuracies, yet we
    /// stay defensive).
    #[inline]
    pub fn distance(&self, a: ModelId, b: ModelId) -> f64 {
        (1.0 - self.similarity(a, b)).max(0.0)
    }

    /// The full distance matrix, row-major — input to clustering/silhouette.
    ///
    /// Computed once and cached; subsequent calls (clustering reads it
    /// several times per offline build) hand back the same shared buffer.
    ///
    /// On lazy storage this **materialises the dense O(M²) view** — legacy
    /// callers (exact-mode clustering, silhouette sweeps) are welcome to
    /// it at small M, but the index-assisted paths never call this.
    pub fn distance_matrix(&self) -> Arc<Vec<f64>> {
        let mut cache = self.dist_cache.lock();
        if let Some(d) = cache.as_ref() {
            return Arc::clone(d);
        }
        let d: Arc<Vec<f64>> = match &self.store {
            SimStore::Dense(sim) => Arc::new(sim.iter().map(|s| (1.0 - s).max(0.0)).collect()),
            SimStore::Lazy { .. } => {
                let n = self.n;
                let mut dist = vec![0.0; n * n];
                for i in 0..n {
                    for j in (i + 1)..n {
                        let d = self.distance(ModelId(i as u32), ModelId(j as u32));
                        dist[i * n + j] = d;
                        dist[j * n + i] = d;
                    }
                }
                Arc::new(dist)
            }
        };
        *cache = Some(Arc::clone(&d));
        d
    }
}

// The distance cache is derived state: equality, cloning, debug output, and
// the serialized form all ignore it (and the serde shim's derive has no
// `skip`, hence the manual impls). Dense storage keeps the historical
// `{"n": ..., "sim": ...}` object layout byte-for-byte; lazy storage
// serializes as `{"n": ..., "top_k": ..., "vectors": ...}` and the
// deserializer dispatches on which key is present.

impl std::fmt::Debug for SimilarityMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.store {
            SimStore::Dense(sim) => f
                .debug_struct("SimilarityMatrix")
                .field("n", &self.n)
                .field("sim", sim)
                .finish(),
            SimStore::Lazy { vectors, top_k } => f
                .debug_struct("SimilarityMatrix")
                .field("n", &self.n)
                .field("top_k", top_k)
                .field("vectors", vectors)
                .finish(),
        }
    }
}

impl Clone for SimilarityMatrix {
    fn clone(&self) -> Self {
        let store = match &self.store {
            SimStore::Dense(sim) => SimStore::Dense(sim.clone()),
            SimStore::Lazy { vectors, top_k } => SimStore::Lazy {
                vectors: Arc::clone(vectors),
                top_k: *top_k,
            },
        };
        Self {
            n: self.n,
            store,
            // Share the already-computed view instead of recomputing it.
            dist_cache: Mutex::new(self.dist_cache.lock().clone()),
        }
    }
}

impl PartialEq for SimilarityMatrix {
    fn eq(&self, other: &Self) -> bool {
        if self.n != other.n {
            return false;
        }
        match (&self.store, &other.store) {
            (SimStore::Dense(a), SimStore::Dense(b)) => a == b,
            (
                SimStore::Lazy {
                    vectors: va,
                    top_k: ka,
                },
                SimStore::Lazy {
                    vectors: vb,
                    top_k: kb,
                },
            ) => ka == kb && va == vb,
            // Mixed storage: semantic comparison, entry by entry. O(M²),
            // but mixed equality only appears in tests at small M.
            _ => (0..self.n as u32).all(|i| {
                (0..self.n as u32).all(|j| {
                    self.similarity(ModelId(i), ModelId(j))
                        == other.similarity(ModelId(i), ModelId(j))
                })
            }),
        }
    }
}

impl Serialize for SimilarityMatrix {
    fn serialize_value(&self) -> serde::value::Value {
        let mut m = serde::value::Map::new();
        m.insert("n".into(), self.n.serialize_value());
        match &self.store {
            SimStore::Dense(sim) => {
                m.insert("sim".into(), sim.serialize_value());
            }
            SimStore::Lazy { vectors, top_k } => {
                m.insert("top_k".into(), top_k.serialize_value());
                m.insert("vectors".into(), vectors.serialize_value());
            }
        }
        serde::value::Value::Object(m)
    }
}

impl Deserialize for SimilarityMatrix {
    fn deserialize_value(v: &serde::value::Value) -> std::result::Result<Self, serde::Error> {
        let m = serde::__private::expect_object(v, "SimilarityMatrix")?;
        if m.contains_key("sim") {
            Ok(Self::from_parts(
                serde::__private::field(m, "n")?,
                serde::__private::field(m, "sim")?,
            ))
        } else {
            let n: usize = serde::__private::field(m, "n")?;
            let top_k: usize = serde::__private::field(m, "top_k")?;
            let vectors: Vec<Vec<f64>> = serde::__private::field(m, "vectors")?;
            let matrix = Self::lazy_from_vectors(Arc::new(vectors), top_k)
                .map_err(|e| serde::Error::custom(format!("invalid lazy matrix: {e}")))?;
            if matrix.n != n {
                return Err(serde::Error::custom(format!(
                    "lazy matrix count mismatch: n={n} but {} vectors",
                    matrix.n
                )));
            }
            Ok(matrix)
        }
    }
}

/// Cosine similarity of two equal-length vectors; 0 for zero vectors.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// L2 norm of a vector (same accumulation order as [`cosine_similarity`]'s
/// internal norm loop, so pre-normed cosine stays bit-identical).
pub fn l2_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Per-model L2 norms, computed once for a whole vector set — the cached
/// input to [`cosine_similarity_prenorm`].
pub fn l2_norms(vecs: &[Vec<f64>]) -> Vec<f64> {
    vecs.iter().map(|v| l2_norm(v)).collect()
}

/// Cosine similarity with both norms supplied by the caller (from
/// [`l2_norms`]), so an O(M²) pairwise loop does not recompute each
/// model's norm M times. Bit-identical to [`cosine_similarity`]: the dot
/// product accumulates in the same element order and `norm_a * norm_b`
/// equals the `na.sqrt() * nb.sqrt()` it replaces.
pub fn cosine_similarity_prenorm(a: &[f64], b: &[f64], norm_a: f64, norm_b: f64) -> f64 {
    if norm_a == 0.0 || norm_b == 0.0 {
        return 0.0;
    }
    let mut dot = 0.0;
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
    }
    dot / (norm_a * norm_b)
}

/// Embed a model-card text into a fixed-size vector via hashed bag-of-words
/// (the SBERT substitute for Table I's text-based similarity).
///
/// Tokens are lowercased alphanumeric runs; each token increments one of
/// `dim` buckets chosen by an FNV-1a hash. The embedding is L2-normalised so
/// downstream cosine similarity is a true angular measure.
pub fn embed_text(card: &str, dim: usize) -> Vec<f64> {
    assert!(dim > 0, "embedding dimension must be positive");
    let mut v = vec![0.0f64; dim];
    for token in card
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
    {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in token.bytes() {
            let b = b.to_ascii_lowercase();
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        v[(h % dim as u64) as usize] += 1.0;
    }
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_identical_vectors_similarity_one() {
        let v = vec![0.5, 0.7, 0.9];
        assert!((performance_similarity(&v, &v, 2).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eq1_uses_topk_largest_differences() {
        let a = vec![0.9, 0.5, 0.5, 0.5];
        let b = vec![0.1, 0.5, 0.5, 0.5];
        // top-1 difference is 0.8 -> sim 0.2
        assert!((performance_similarity(&a, &b, 1).unwrap() - 0.2).abs() < 1e-12);
        // top-2 averages 0.8 and 0.0 -> sim 0.6
        assert!((performance_similarity(&a, &b, 2).unwrap() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn eq1_k_clamped_to_len() {
        let a = vec![0.9, 0.1];
        let b = vec![0.1, 0.9];
        let s = performance_similarity(&a, &b, 100).unwrap();
        assert!((s - (1.0 - 0.8)).abs() < 1e-12);
    }

    #[test]
    fn eq1_rejects_bad_input() {
        assert!(performance_similarity(&[0.1], &[0.1, 0.2], 1).is_err());
        assert!(performance_similarity(&[], &[], 1).is_err());
        assert!(performance_similarity(&[0.1], &[0.2], 0).is_err());
    }

    #[test]
    fn similarity_matrix_symmetric_unit_diag() {
        let m = PerformanceMatrix::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec!["d0".into(), "d1".into()],
            vec![vec![0.9, 0.8, 0.1], vec![0.85, 0.8, 0.2]],
        )
        .unwrap();
        let s = SimilarityMatrix::from_performance(&m, 2).unwrap();
        assert_eq!(s.len(), 3);
        for i in 0..3 {
            assert_eq!(s.similarity(ModelId(i as u32), ModelId(i as u32)), 1.0);
            for j in 0..3 {
                assert_eq!(
                    s.similarity(ModelId(i as u32), ModelId(j as u32)),
                    s.similarity(ModelId(j as u32), ModelId(i as u32))
                );
            }
        }
        // a and b are much more similar than a and c.
        assert!(s.similarity(ModelId(0), ModelId(1)) > s.similarity(ModelId(0), ModelId(2)));
    }

    #[test]
    fn distance_complements_similarity() {
        let m = PerformanceMatrix::new(
            vec!["a".into(), "b".into()],
            vec!["d0".into()],
            vec![vec![0.9, 0.4]],
        )
        .unwrap();
        let s = SimilarityMatrix::from_performance(&m, 1).unwrap();
        let d = s.distance(ModelId(0), ModelId(1));
        assert!((d - 0.5).abs() < 1e-12);
        assert_eq!(s.distance_matrix()[1], d);
    }

    #[test]
    fn parallel_constructors_match_serial() {
        let vecs: Vec<Vec<f64>> = (0..23)
            .map(|i| {
                (0..6)
                    .map(|j| ((i * 7 + j * 3) % 11) as f64 / 11.0)
                    .collect()
            })
            .collect();
        let serial_perf = {
            let m = PerformanceMatrix::new(
                (0..6).map(|j| format!("m{j}")).collect(),
                (0..23).map(|i| format!("d{i}")).collect(),
                vecs.clone(),
            )
            .unwrap();
            (
                SimilarityMatrix::from_performance(&m, 3).unwrap(),
                SimilarityMatrix::from_performance_par(&m, 3, 4).unwrap(),
            )
        };
        assert_eq!(serial_perf.0, serial_perf.1);
        let serial_cos = SimilarityMatrix::from_vectors_cosine(&vecs).unwrap();
        for threads in [1, 2, 4, 7] {
            let par = SimilarityMatrix::from_vectors_cosine_par(&vecs, threads).unwrap();
            assert_eq!(par, serial_cos, "threads={threads}");
        }
    }

    #[test]
    fn distance_matrix_is_cached_and_shared() {
        let m = PerformanceMatrix::new(
            vec!["a".into(), "b".into()],
            vec!["d0".into()],
            vec![vec![0.9, 0.4]],
        )
        .unwrap();
        let s = SimilarityMatrix::from_performance(&m, 1).unwrap();
        let d1 = s.distance_matrix();
        let d2 = s.distance_matrix();
        assert!(std::sync::Arc::ptr_eq(&d1, &d2));
        // Clones share the computed view rather than recomputing it.
        let c = s.clone();
        assert!(std::sync::Arc::ptr_eq(&d1, &c.distance_matrix()));
    }

    #[test]
    fn lazy_storage_matches_dense() {
        let m = PerformanceMatrix::new(
            (0..5).map(|j| format!("m{j}")).collect(),
            (0..4).map(|i| format!("d{i}")).collect(),
            (0..4)
                .map(|d| (0..5).map(|j| ((d * 5 + j) % 7) as f64 / 7.0).collect())
                .collect(),
        )
        .unwrap();
        let dense = SimilarityMatrix::from_performance(&m, 3).unwrap();
        let lazy = SimilarityMatrix::lazy_from_performance(&m, 3).unwrap();
        assert!(lazy.is_lazy() && !dense.is_lazy());
        assert_eq!(lazy.eq1_top_k(), Some(3));
        for i in 0..5u32 {
            for j in 0..5u32 {
                assert_eq!(
                    dense.similarity(ModelId(i), ModelId(j)),
                    lazy.similarity(ModelId(i), ModelId(j)),
                    "entry ({i}, {j})"
                );
            }
        }
        // Semantic cross-storage equality and identical materialised view.
        assert_eq!(dense, lazy);
        assert_eq!(*dense.distance_matrix(), *lazy.distance_matrix());
    }

    #[test]
    fn lazy_storage_serde_round_trip() {
        let m = PerformanceMatrix::new(
            vec!["a".into(), "b".into()],
            vec!["d0".into(), "d1".into()],
            vec![vec![0.9, 0.4], vec![0.7, 0.6]],
        )
        .unwrap();
        let lazy = SimilarityMatrix::lazy_from_performance(&m, 2).unwrap();
        let json = serde_json::to_string(&lazy).unwrap();
        let back: SimilarityMatrix = serde_json::from_str(&json).unwrap();
        assert!(back.is_lazy());
        assert_eq!(lazy, back);
        // Dense round trip keeps the historical layout working too.
        let dense = SimilarityMatrix::from_performance(&m, 2).unwrap();
        let djson = serde_json::to_string(&dense).unwrap();
        let dback: SimilarityMatrix = serde_json::from_str(&djson).unwrap();
        assert!(!dback.is_lazy());
        assert_eq!(dense, dback);
    }

    #[test]
    fn prenorm_cosine_matches_plain_cosine() {
        let vecs: Vec<Vec<f64>> = (0..9)
            .map(|i| (0..5).map(|j| ((i * 3 + j) % 13) as f64 / 13.0).collect())
            .collect();
        let norms = l2_norms(&vecs);
        for i in 0..vecs.len() {
            for j in 0..vecs.len() {
                let plain = cosine_similarity(&vecs[i], &vecs[j]);
                let pre = cosine_similarity_prenorm(&vecs[i], &vecs[j], norms[i], norms[j]);
                assert_eq!(plain, pre, "pair ({i}, {j})");
            }
        }
        assert_eq!(cosine_similarity_prenorm(&[0.0], &[1.0], 0.0, 1.0), 0.0);
    }

    #[test]
    fn cosine_behaviour() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn text_embedding_discriminates() {
        let bert1 = embed_text("BERT base uncased fine-tuned on QQP", 64);
        let bert2 = embed_text("BERT base fine-tuned on QQP dataset", 64);
        let vit = embed_text("Vision transformer patch16 trained on imagenet-21k", 64);
        assert!(cosine_similarity(&bert1, &bert2) > cosine_similarity(&bert1, &vit));
    }

    #[test]
    fn text_embedding_is_normalised() {
        let v = embed_text("hello world hello", 32);
        let n = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((n - 1.0).abs() < 1e-9);
    }

    #[test]
    fn text_embedding_empty_is_zero() {
        let v = embed_text("  --- ", 8);
        assert!(v.iter().all(|&x| x == 0.0));
    }
}
