//! Deterministic fault injection for the online selection pipeline.
//!
//! Production deployments of the two-phase pipeline drive real fine-tuning
//! jobs and inference passes, and those fail routinely: transient OOMs,
//! corrupted checkpoints, NaN losses. This module supplies the *injection*
//! side of the robustness story — a scripted, seeded [`FaultPlan`] plus
//! [`FaultyTrainer`] / [`FaultyOracle`] wrappers that make any substrate
//! misbehave on cue — so the resilience layer (retry + quarantine in
//! `recall`/`select`) can be exercised deterministically in tests, the
//! `repro chaos` experiment, and the CI chaos gate.
//!
//! Faults are keyed by `(site, model, attempt)`, where `attempt` counts the
//! calls the wrapper has seen for that `(site, model)` pair. Keying by
//! per-model attempt (rather than a global call counter) keeps schedules
//! deterministic under parallel fan-out: each model's attempt sequence is
//! its own, regardless of thread interleaving.
//!
//! **Zero-fault transparency**: with an empty plan every wrapper method
//! delegates directly to the wrapped substrate, so outcomes, counters and
//! histograms are bit-identical to the unwrapped run (proptested in the
//! bench crate's chaos suite).

use crate::error::{Result, SelectionError};
use crate::ids::ModelId;
use crate::proxy::PredictionMatrix;
use crate::traits::{FeatureOracle, ProxyOracle, TargetTrainer};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Call sites a fault can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// [`TargetTrainer::advance`] (and the batched `advance_many`).
    Advance,
    /// [`TargetTrainer::test`].
    Test,
    /// [`ProxyOracle::predictions`].
    Predictions,
    /// [`FeatureOracle::features`].
    Features,
}

impl FaultSite {
    /// Canonical lower-case name used by the plan text format.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultSite::Advance => "advance",
            FaultSite::Test => "test",
            FaultSite::Predictions => "predictions",
            FaultSite::Features => "features",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "advance" => Some(FaultSite::Advance),
            "test" => Some(FaultSite::Test),
            "predictions" => Some(FaultSite::Predictions),
            "features" => Some(FaultSite::Features),
            _ => None,
        }
    }
}

/// What happens when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The call fails with a retryable error (simulated OOM/timeout).
    Transient,
    /// The call fails with a non-retryable error (corrupted checkpoint).
    Permanent,
    /// The call "succeeds" but yields a NaN/out-of-range value. At trainer
    /// sites the reported accuracy is NaN; at oracle sites this degrades to
    /// [`FaultKind::CorruptRow`] (a matrix has no single value to poison).
    NanValue,
    /// The prediction matrix comes back with a corrupt (non-distribution)
    /// row, surfacing as a permanent substrate failure whose cause is
    /// [`SelectionError::NotADistribution`]. At trainer sites this degrades
    /// to an out-of-range accuracy.
    CorruptRow,
}

impl FaultKind {
    /// Canonical lower-case name used by the plan text format.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::Permanent => "permanent",
            FaultKind::NanValue => "nan",
            FaultKind::CorruptRow => "corrupt-row",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "transient" => Some(FaultKind::Transient),
            "permanent" => Some(FaultKind::Permanent),
            "nan" => Some(FaultKind::NanValue),
            "corrupt-row" => Some(FaultKind::CorruptRow),
            _ => None,
        }
    }
}

/// One scripted fault: at `model`'s `attempt`-th call (0-based) to `site`,
/// fire `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The targeted call site.
    pub site: FaultSite,
    /// The targeted model.
    pub model: ModelId,
    /// 0-based index among the wrapper-observed calls to `(site, model)`.
    pub attempt: u32,
    /// What fires.
    pub kind: FaultKind,
}

/// A deterministic fault schedule.
///
/// Built programmatically ([`FaultPlan::new`]), from a seed
/// ([`FaultPlan::seeded`]), or from the line-based text format accepted by
/// the CLI's `--fault-plan FILE` ([`FaultPlan::parse`]):
///
/// ```text
/// # site  model  attempt  kind
/// advance      m3  1  transient
/// predictions  m7  0  corrupt-row
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan that never fires — wrappers built on it are bit-identical to
    /// the unwrapped substrate.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build a plan from explicit specs. Later duplicates of the same
    /// `(site, model, attempt)` key are dropped so lookups are unambiguous.
    pub fn new(specs: Vec<FaultSpec>) -> Self {
        let mut plan = FaultPlan { specs: Vec::new() };
        for s in specs {
            plan.push(s);
        }
        plan
    }

    /// Add one spec (ignored if its key is already scheduled).
    pub fn push(&mut self, spec: FaultSpec) {
        if self.lookup(spec.site, spec.model, spec.attempt).is_none() {
            self.specs.push(spec);
        }
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// The scheduled specs, in insertion order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// The fault scheduled for `model`'s `attempt`-th call to `site`.
    pub fn lookup(&self, site: FaultSite, model: ModelId, attempt: u32) -> Option<FaultKind> {
        self.specs
            .iter()
            .find(|s| s.site == site && s.model == model && s.attempt == attempt)
            .map(|s| s.kind)
    }

    /// Generate `n_faults` pseudo-random faults over `n_models` models and
    /// attempts `< max_attempt`, deterministically from `seed` (splitmix64;
    /// no global RNG state). The same `(seed, n_models, n_faults,
    /// max_attempt)` always yields the same plan. Collisions on the
    /// `(site, model, attempt)` key are re-rolled, so the plan holds
    /// exactly `min(n_faults, reachable keys)` specs.
    pub fn seeded(seed: u64, n_models: usize, n_faults: usize, max_attempt: u32) -> Self {
        let mut plan = FaultPlan::default();
        if n_models == 0 || max_attempt == 0 {
            return plan;
        }
        let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
        let mut rolls = 0usize;
        while plan.len() < n_faults && rolls < n_faults * 64 {
            rolls += 1;
            let r = splitmix64(&mut state);
            let site = if r.is_multiple_of(4) {
                FaultSite::Predictions
            } else {
                FaultSite::Advance
            };
            let model = ModelId::from(((r >> 8) % n_models as u64) as usize);
            let attempt = ((r >> 32) % max_attempt as u64) as u32;
            let kind = match (r >> 56) % 4 {
                0 => FaultKind::Permanent,
                1 => FaultKind::NanValue,
                2 if site == FaultSite::Predictions => FaultKind::CorruptRow,
                _ => FaultKind::Transient,
            };
            plan.push(FaultSpec {
                site,
                model,
                attempt,
                kind,
            });
        }
        plan
    }

    /// Parse the text format (one `site model attempt kind` spec per line;
    /// blank lines and `#` comments ignored; the model accepts `m3` or
    /// `3`).
    pub fn parse(text: &str) -> Result<Self> {
        let mut specs = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let bad = |what: &str| {
                SelectionError::InvalidConfig(format!(
                    "fault plan line {}: {what} in `{line}`",
                    lineno + 1
                ))
            };
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 4 {
                return Err(bad("expected `site model attempt kind`"));
            }
            let site = FaultSite::parse(fields[0]).ok_or_else(|| bad("unknown site"))?;
            let model_text = fields[1].strip_prefix('m').unwrap_or(fields[1]);
            let model = model_text
                .parse::<usize>()
                .map(ModelId::from)
                .map_err(|_| bad("bad model id"))?;
            let attempt = fields[2]
                .parse::<u32>()
                .map_err(|_| bad("bad attempt index"))?;
            let kind = FaultKind::parse(fields[3]).ok_or_else(|| bad("unknown fault kind"))?;
            specs.push(FaultSpec {
                site,
                model,
                attempt,
                kind,
            });
        }
        Ok(FaultPlan::new(specs))
    }

    /// Render the plan in the text format accepted by [`FaultPlan::parse`].
    pub fn to_text(&self) -> String {
        let mut out = String::from("# site model attempt kind\n");
        for s in &self.specs {
            out.push_str(&format!(
                "{} m{} {} {}\n",
                s.site.as_str(),
                s.model.index(),
                s.attempt,
                s.kind.as_str()
            ));
        }
        out
    }
}

/// splitmix64: tiny, deterministic, and good enough for fault scheduling.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Bounded-retry policy for substrate calls, with a deterministic
/// epoch-charged backoff: every retry charges `backoff_epochs` to the run's
/// [`crate::budget::EpochLedger`], so waiting out transient failures shows
/// up in the same accounting as training itself (and can be budgeted in
/// `budgets.toml`: `retry.backoff_epochs <= retry.attempts * 1.0`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per call (first try included); `1` disables retries.
    pub max_attempts: u32,
    /// Epoch-equivalents charged per retry (the deterministic stand-in for
    /// wall-clock backoff).
    pub backoff_epochs: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_epochs: 1.0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (first failure is final).
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            backoff_epochs: 0.0,
        }
    }
}

/// A model lost to a permanent (or retry-exhausted) substrate failure,
/// recorded on `PipelineOutcome`/`TraceReport` instead of aborting the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Casualty {
    /// The quarantined model.
    pub model: ModelId,
    /// Where it was lost: `"recall"`, `"fine.stage2"`, `"sh.stage0"`,
    /// `"fine.final"` (winner's test read), …
    pub stage: String,
    /// The full error chain that killed it, rendered one-line.
    pub cause: String,
}

impl Casualty {
    /// Build a casualty record from the error that killed `model`.
    pub fn new(model: ModelId, stage: impl Into<String>, cause: &SelectionError) -> Self {
        Casualty {
            model,
            stage: stage.into(),
            cause: cause.chain_to_string(),
        }
    }
}

fn injected(kind: &str) -> SelectionError {
    SelectionError::Backend(format!("injected {kind} fault"))
}

/// A [`TargetTrainer`] wrapper that fires scripted faults.
///
/// Error faults are **transactional**: a failing `advance`/`advance_many`
/// call leaves the wrapped trainer's state completely untouched (the
/// simulated jobs crashed before committing), so the resilience layer can
/// retry or shrink the pool without stage drift. A failed `advance_many`
/// batch still consumes one attempt for *every* pool model (all jobs were
/// launched), and reports the first pool-order faulted model, matching the
/// `advance_many` contract.
#[derive(Debug)]
pub struct FaultyTrainer<T> {
    inner: T,
    plan: Arc<FaultPlan>,
    attempts: HashMap<(FaultSite, ModelId), u32>,
}

impl<T: TargetTrainer> FaultyTrainer<T> {
    /// Wrap `inner` with a fault schedule.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        Self::with_shared_plan(inner, Arc::new(plan))
    }

    /// Wrap `inner` with an already-shared plan (lets a trainer and an
    /// oracle follow one schedule).
    pub fn with_shared_plan(inner: T, plan: Arc<FaultPlan>) -> Self {
        Self {
            inner,
            plan,
            attempts: HashMap::new(),
        }
    }

    /// The wrapped trainer.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The wrapped trainer, mutably.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn next_attempt(&mut self, site: FaultSite, model: ModelId) -> u32 {
        let slot = self.attempts.entry((site, model)).or_insert(0);
        let a = *slot;
        *slot += 1;
        a
    }
}

impl<T: TargetTrainer> TargetTrainer for FaultyTrainer<T> {
    fn advance(&mut self, model: ModelId) -> Result<f64> {
        let attempt = self.next_attempt(FaultSite::Advance, model);
        match self.plan.lookup(FaultSite::Advance, model, attempt) {
            None => self.inner.advance(model),
            Some(FaultKind::Transient) => Err(SelectionError::transient_fault(
                "trainer.advance",
                model.index(),
                injected("transient"),
            )),
            Some(FaultKind::Permanent) => Err(SelectionError::permanent_fault(
                "trainer.advance",
                model.index(),
                injected("permanent"),
            )),
            // The job ran (state advances) but reported garbage.
            Some(FaultKind::NanValue) => {
                self.inner.advance(model)?;
                Ok(f64::NAN)
            }
            Some(FaultKind::CorruptRow) => {
                self.inner.advance(model)?;
                Ok(2.0) // out-of-range accuracy
            }
        }
    }

    fn test(&mut self, model: ModelId) -> Result<f64> {
        let attempt = self.next_attempt(FaultSite::Test, model);
        match self.plan.lookup(FaultSite::Test, model, attempt) {
            None => self.inner.test(model),
            Some(FaultKind::Transient) => Err(SelectionError::transient_fault(
                "trainer.test",
                model.index(),
                injected("transient"),
            )),
            Some(FaultKind::Permanent) => Err(SelectionError::permanent_fault(
                "trainer.test",
                model.index(),
                injected("permanent"),
            )),
            Some(FaultKind::NanValue | FaultKind::CorruptRow) => {
                self.inner.test(model)?;
                Ok(f64::NAN)
            }
        }
    }

    fn stages_trained(&self, model: ModelId) -> usize {
        self.inner.stages_trained(model)
    }

    fn epochs_per_stage(&self) -> f64 {
        self.inner.epochs_per_stage()
    }

    fn advance_many(&mut self, pool: &[ModelId], threads: usize) -> Result<Vec<f64>> {
        // Scan the batch for error faults first, in pool order, *before*
        // touching the wrapped trainer: the first one aborts the whole
        // batch with nobody advanced (transactional semantics).
        let first_error = pool.iter().enumerate().find_map(|(i, &m)| {
            let attempt = *self.attempts.get(&(FaultSite::Advance, m)).unwrap_or(&0);
            match self.plan.lookup(FaultSite::Advance, m, attempt) {
                Some(FaultKind::Transient) => Some((i, true)),
                Some(FaultKind::Permanent) => Some((i, false)),
                _ => None,
            }
        });
        if let Some((i, transient)) = first_error {
            for &m in pool {
                self.next_attempt(FaultSite::Advance, m);
            }
            let model = pool[i];
            let make = if transient {
                SelectionError::transient_fault
            } else {
                SelectionError::permanent_fault
            };
            return Err(make(
                "trainer.advance",
                model.index(),
                injected(if transient { "transient" } else { "permanent" }),
            ));
        }
        // No error faults this batch: delegate the full fan-out (zero-fault
        // plans take exactly the wrapped trainer's parallel path), then
        // overlay any value-corruption faults in pool order.
        let corrupt: Vec<Option<FaultKind>> = pool
            .iter()
            .map(|&m| {
                let attempt = self.next_attempt(FaultSite::Advance, m);
                self.plan.lookup(FaultSite::Advance, m, attempt)
            })
            .collect();
        let mut vals = self.inner.advance_many(pool, threads)?;
        for (v, kind) in vals.iter_mut().zip(&corrupt) {
            match kind {
                Some(FaultKind::NanValue) => *v = f64::NAN,
                Some(FaultKind::CorruptRow) => *v = 2.0,
                _ => {}
            }
        }
        Ok(vals)
    }
}

/// A [`ProxyOracle`] + [`FeatureOracle`] wrapper that fires scripted
/// faults. Thread-safe (`&self` methods guard their attempt counters with a
/// mutex), so it slots into the parallel recall fan-out; determinism holds
/// because faults are keyed per `(site, model, attempt)` — never by global
/// call order.
#[derive(Debug)]
pub struct FaultyOracle<O> {
    inner: O,
    plan: Arc<FaultPlan>,
    attempts: Mutex<HashMap<(FaultSite, ModelId), u32>>,
}

impl<O> FaultyOracle<O> {
    /// Wrap `inner` with a fault schedule.
    pub fn new(inner: O, plan: FaultPlan) -> Self {
        Self::with_shared_plan(inner, Arc::new(plan))
    }

    /// Wrap `inner` with an already-shared plan.
    pub fn with_shared_plan(inner: O, plan: Arc<FaultPlan>) -> Self {
        Self {
            inner,
            plan,
            attempts: Mutex::new(HashMap::new()),
        }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> O {
        self.inner
    }

    fn next_attempt(&self, site: FaultSite, model: ModelId) -> u32 {
        let mut attempts = self.attempts.lock();
        let slot = attempts.entry((site, model)).or_insert(0);
        let a = *slot;
        *slot += 1;
        a
    }
}

impl<O: ProxyOracle> ProxyOracle for FaultyOracle<O> {
    fn predictions(&self, model: ModelId) -> Result<PredictionMatrix> {
        let attempt = self.next_attempt(FaultSite::Predictions, model);
        match self.plan.lookup(FaultSite::Predictions, model, attempt) {
            None => self.inner.predictions(model),
            Some(FaultKind::Transient) => Err(SelectionError::transient_fault(
                "oracle.predictions",
                model.index(),
                injected("transient"),
            )),
            Some(FaultKind::Permanent) => Err(SelectionError::permanent_fault(
                "oracle.predictions",
                model.index(),
                injected("permanent"),
            )),
            // A corrupt row never survives `PredictionMatrix`'s
            // construction-time validation, so the wrapper surfaces the
            // rejection the substrate would hit: a permanent failure caused
            // by the row that stopped being a distribution.
            Some(FaultKind::NanValue | FaultKind::CorruptRow) => {
                Err(SelectionError::permanent_fault(
                    "oracle.predictions",
                    model.index(),
                    SelectionError::NotADistribution { row: 0, sum: 0.0 },
                ))
            }
        }
    }

    fn target_labels(&self) -> &[usize] {
        self.inner.target_labels()
    }

    fn n_target_labels(&self) -> usize {
        self.inner.n_target_labels()
    }
}

impl<O: FeatureOracle> FeatureOracle for FaultyOracle<O> {
    fn features(&self, model: ModelId) -> Result<(Vec<f64>, usize, usize)> {
        let attempt = self.next_attempt(FaultSite::Features, model);
        match self.plan.lookup(FaultSite::Features, model, attempt) {
            None => self.inner.features(model),
            Some(FaultKind::Transient) => Err(SelectionError::transient_fault(
                "oracle.features",
                model.index(),
                injected("transient"),
            )),
            Some(FaultKind::Permanent) => Err(SelectionError::permanent_fault(
                "oracle.features",
                model.index(),
                injected("permanent"),
            )),
            Some(FaultKind::NanValue | FaultKind::CorruptRow) => {
                let (mut feats, n, d) = self.inner.features(model)?;
                if let Some(first) = feats.first_mut() {
                    *first = f64::NAN;
                }
                Ok((feats, n, d))
            }
        }
    }
}

/// Wrap an oracle/trainer substrate pair on one shared fault schedule —
/// the standard wiring for a selection run under an optional `FaultPlan`
/// (`None` wraps with the empty plan, which is behaviourally transparent).
/// Attempt counters stay per-wrapper; only the immutable plan is shared.
pub fn wrap_pair<O, T: TargetTrainer>(
    oracle: O,
    trainer: T,
    plan: Option<&FaultPlan>,
) -> (FaultyOracle<O>, FaultyTrainer<T>) {
    let plan = Arc::new(plan.cloned().unwrap_or_default());
    (
        FaultyOracle::with_shared_plan(oracle, Arc::clone(&plan)),
        FaultyTrainer::with_shared_plan(trainer, plan),
    )
}

/// Wrap just a trainer on an optional plan with fresh attempt counters —
/// for comparisons that run several selectors against the same scripted
/// schedule, each of which must see the faults from attempt zero.
pub fn wrap_trainer<T: TargetTrainer>(trainer: T, plan: Option<&FaultPlan>) -> FaultyTrainer<T> {
    FaultyTrainer::new(trainer, plan.cloned().unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::FaultClass;
    use crate::traits::test_support::ScriptedTrainer;

    fn scripted(n: usize, stages: usize) -> ScriptedTrainer {
        let curves = (0..n)
            .map(|i| {
                (0..stages)
                    .map(|t| 0.1 * (i + 1) as f64 + 0.01 * t as f64)
                    .collect()
            })
            .collect();
        ScriptedTrainer::from_val_curves(curves)
    }

    #[test]
    fn empty_plan_is_transparent() {
        let pool: Vec<ModelId> = (0..4).map(ModelId::from).collect();
        let mut plain = scripted(4, 3);
        let mut wrapped = FaultyTrainer::new(scripted(4, 3), FaultPlan::empty());
        for _ in 0..3 {
            let a = plain.advance_many(&pool, 1).unwrap();
            let b = wrapped.advance_many(&pool, 1).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(
            plain.test(ModelId(2)).unwrap(),
            wrapped.test(ModelId(2)).unwrap()
        );
        assert_eq!(wrapped.stages_trained(ModelId(0)), 3);
    }

    #[test]
    fn scripted_faults_fire_at_their_attempt_then_clear() {
        let plan = FaultPlan::new(vec![FaultSpec {
            site: FaultSite::Advance,
            model: ModelId(1),
            attempt: 1,
            kind: FaultKind::Transient,
        }]);
        let mut t = FaultyTrainer::new(scripted(3, 4), plan);
        assert!(t.advance(ModelId(1)).is_ok()); // attempt 0
        let err = t.advance(ModelId(1)).unwrap_err(); // attempt 1: fault
        assert_eq!(err.classify(), FaultClass::Transient);
        assert_eq!(err.fault_model(), Some(1));
        // The faulted call never reached the substrate.
        assert_eq!(t.stages_trained(ModelId(1)), 1);
        // Attempt 2 (the retry) succeeds.
        assert!(t.advance(ModelId(1)).is_ok());
        assert_eq!(t.stages_trained(ModelId(1)), 2);
    }

    #[test]
    fn batch_reports_first_pool_order_fault_and_advances_nobody() {
        // Faults scripted on m3 and m1: pool order decides, not id order.
        let plan = FaultPlan::new(vec![
            FaultSpec {
                site: FaultSite::Advance,
                model: ModelId(3),
                attempt: 0,
                kind: FaultKind::Permanent,
            },
            FaultSpec {
                site: FaultSite::Advance,
                model: ModelId(1),
                attempt: 0,
                kind: FaultKind::Transient,
            },
        ]);
        let pool = vec![ModelId(0), ModelId(3), ModelId(1), ModelId(2)];
        for threads in [1, 4] {
            let mut t = FaultyTrainer::new(scripted(4, 2), plan.clone());
            let err = t.advance_many(&pool, threads).unwrap_err();
            assert_eq!(err.fault_model(), Some(3), "threads={threads}");
            assert_eq!(err.classify(), FaultClass::Permanent);
            // Transactional: nobody advanced.
            for &m in &pool {
                assert_eq!(t.stages_trained(m), 0);
            }
        }
    }

    #[test]
    fn value_faults_corrupt_but_still_train() {
        let plan = FaultPlan::new(vec![
            FaultSpec {
                site: FaultSite::Advance,
                model: ModelId(0),
                attempt: 0,
                kind: FaultKind::NanValue,
            },
            FaultSpec {
                site: FaultSite::Advance,
                model: ModelId(2),
                attempt: 0,
                kind: FaultKind::CorruptRow,
            },
        ]);
        let pool: Vec<ModelId> = (0..3).map(ModelId::from).collect();
        let mut t = FaultyTrainer::new(scripted(3, 2), plan);
        let vals = t.advance_many(&pool, 1).unwrap();
        assert!(vals[0].is_nan());
        assert!(vals[1].is_finite());
        assert!(vals[2] > 1.0);
        for &m in &pool {
            assert_eq!(t.stages_trained(m), 1, "the jobs ran, results were garbage");
        }
    }

    #[test]
    fn plan_text_round_trips() {
        let plan = FaultPlan::new(vec![
            FaultSpec {
                site: FaultSite::Advance,
                model: ModelId(3),
                attempt: 1,
                kind: FaultKind::Transient,
            },
            FaultSpec {
                site: FaultSite::Predictions,
                model: ModelId(7),
                attempt: 0,
                kind: FaultKind::CorruptRow,
            },
        ]);
        let text = plan.to_text();
        let back = FaultPlan::parse(&text).unwrap();
        assert_eq!(back, plan);
        // Bare indices and comments parse too.
        let alt = FaultPlan::parse("# hi\n\nadvance 3 1 transient # tail\n").unwrap();
        assert_eq!(
            alt.lookup(FaultSite::Advance, ModelId(3), 1),
            Some(FaultKind::Transient)
        );
    }

    #[test]
    fn plan_parse_rejects_garbage() {
        assert!(FaultPlan::parse("advance m1 0").is_err());
        assert!(FaultPlan::parse("elsewhere m1 0 transient").is_err());
        assert!(FaultPlan::parse("advance mx 0 transient").is_err());
        assert!(FaultPlan::parse("advance m1 x transient").is_err());
        assert!(FaultPlan::parse("advance m1 0 sideways").is_err());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        let a = FaultPlan::seeded(42, 10, 6, 5);
        let b = FaultPlan::seeded(42, 10, 6, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        for s in a.specs() {
            assert!(s.model.index() < 10);
            assert!(s.attempt < 5);
        }
        assert_ne!(FaultPlan::seeded(43, 10, 6, 5), a);
        assert!(FaultPlan::seeded(1, 0, 6, 5).is_empty());
    }

    #[test]
    fn duplicate_keys_keep_first_spec() {
        let plan = FaultPlan::new(vec![
            FaultSpec {
                site: FaultSite::Advance,
                model: ModelId(0),
                attempt: 0,
                kind: FaultKind::Permanent,
            },
            FaultSpec {
                site: FaultSite::Advance,
                model: ModelId(0),
                attempt: 0,
                kind: FaultKind::Transient,
            },
        ]);
        assert_eq!(plan.len(), 1);
        assert_eq!(
            plan.lookup(FaultSite::Advance, ModelId(0), 0),
            Some(FaultKind::Permanent)
        );
    }

    struct FixedOracle;

    impl ProxyOracle for FixedOracle {
        fn predictions(&self, _model: ModelId) -> Result<PredictionMatrix> {
            PredictionMatrix::new(2, vec![0.5, 0.5, 0.9, 0.1])
        }

        fn target_labels(&self) -> &[usize] {
            &[0, 1]
        }

        fn n_target_labels(&self) -> usize {
            2
        }
    }

    impl FeatureOracle for FixedOracle {
        fn features(&self, _model: ModelId) -> Result<(Vec<f64>, usize, usize)> {
            Ok((vec![1.0, 2.0], 1, 2))
        }
    }

    #[test]
    fn oracle_faults_fire_per_model_attempt() {
        let plan = FaultPlan::new(vec![
            FaultSpec {
                site: FaultSite::Predictions,
                model: ModelId(0),
                attempt: 0,
                kind: FaultKind::Transient,
            },
            FaultSpec {
                site: FaultSite::Predictions,
                model: ModelId(1),
                attempt: 0,
                kind: FaultKind::CorruptRow,
            },
            FaultSpec {
                site: FaultSite::Features,
                model: ModelId(0),
                attempt: 0,
                kind: FaultKind::NanValue,
            },
        ]);
        let oracle = FaultyOracle::new(FixedOracle, plan);
        let e0 = oracle.predictions(ModelId(0)).unwrap_err();
        assert_eq!(e0.classify(), FaultClass::Transient);
        // Retry (attempt 1) clears.
        assert!(oracle.predictions(ModelId(0)).is_ok());
        let e1 = oracle.predictions(ModelId(1)).unwrap_err();
        assert_eq!(e1.classify(), FaultClass::Permanent);
        assert_eq!(
            e1.root_cause(),
            &SelectionError::NotADistribution { row: 0, sum: 0.0 }
        );
        // Unscripted model untouched.
        assert!(oracle.predictions(ModelId(5)).is_ok());
        let (feats, _, _) = oracle.features(ModelId(0)).unwrap();
        assert!(feats[0].is_nan());
        assert_eq!(oracle.target_labels(), &[0, 1]);
        assert_eq!(oracle.n_target_labels(), 2);
    }

    #[test]
    fn wrap_pair_shares_the_plan_and_none_is_transparent() {
        let plan = FaultPlan::new(vec![FaultSpec {
            site: FaultSite::Advance,
            model: ModelId(0),
            attempt: 0,
            kind: FaultKind::Transient,
        }]);
        let (oracle, mut trainer) = wrap_pair(FixedOracle, scripted(3, 4), Some(&plan));
        assert!(oracle.predictions(ModelId(0)).is_ok());
        assert!(trainer.advance(ModelId(0)).is_err()); // scripted fault fires
        assert!(trainer.advance(ModelId(0)).is_ok()); // retry clears

        let (oracle, mut trainer) = wrap_pair(FixedOracle, scripted(3, 4), None);
        assert!(oracle.predictions(ModelId(0)).is_ok());
        let mut plain = scripted(3, 4);
        assert_eq!(
            trainer.advance(ModelId(0)).unwrap(),
            plain.advance(ModelId(0)).unwrap()
        );

        // `wrap_trainer` gives each selector its own attempt counters.
        let mut first = wrap_trainer(scripted(3, 4), Some(&plan));
        let mut second = wrap_trainer(scripted(3, 4), Some(&plan));
        assert!(first.advance(ModelId(0)).is_err());
        assert!(second.advance(ModelId(0)).is_err());
    }
}
