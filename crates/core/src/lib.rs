//! # tps-core — Two-Phase Recall-and-Select Model Selection
//!
//! A Rust implementation of the two-phase (coarse-recall + fine-selection)
//! model-selection framework of Cui et al., *"A Two-Phase Recall-and-Select
//! Framework for Fast Model Selection"* (ICDE 2024).
//!
//! Given a repository of pre-trained models and a new target task, the
//! framework picks a strong model to fine-tune **without** fine-tuning the
//! whole repository:
//!
//! 1. **Offline** — every model is fine-tuned once on a fixed set of
//!    benchmark datasets, producing a [`matrix::PerformanceMatrix`] and a
//!    [`curve::CurveSet`] of learning curves. Models are clustered by
//!    performance [`similarity`] ([`cluster`]), and each model's
//!    [`trend::ConvergenceTrends`] are mined from its curves.
//! 2. **Coarse-recall** — a LEEP [`proxy`] score is computed on the target
//!    dataset *only for each cluster's representative model*; Eq. 2–4
//!    [`recall`] scores rank the repository and the top-K advance.
//! 3. **Fine-selection** — the recalled models are fine-tuned under
//!    successive halving, augmented with trend-based final-performance
//!    prediction so that clearly-dominated models are dropped after the
//!    first validation ([`select::fine`]).
//!
//! The crate is substrate-agnostic: anything implementing
//! [`traits::TargetTrainer`] + [`traits::ProxyOracle`] can be selected
//! over. The companion crates `tps-zoo` (synthetic world model) and
//! `tps-nn` (real micro neural networks) provide two substrates.
//!
//! ## Quick start
//!
//! ```
//! use tps_core::prelude::*;
//!
//! // A 3-model, 2-dataset repository measured offline.
//! let matrix = PerformanceMatrix::new(
//!     vec!["bert-ft-qqp".into(), "bert-base".into(), "weak".into()],
//!     vec!["cola".into(), "sst2".into()],
//!     vec![vec![0.82, 0.80, 0.41], vec![0.90, 0.88, 0.47]],
//! )?;
//! let similarity = SimilarityMatrix::from_performance(&matrix, 2)?;
//! let clustering = tps_core::cluster::hierarchical::hierarchical_threshold(
//!     &similarity.distance_matrix(), 3, 0.1, Linkage::Average)?;
//! assert_eq!(clustering.cluster_of(ModelId(0)), clustering.cluster_of(ModelId(1)));
//! # Ok::<(), tps_core::error::SelectionError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ann;
pub mod benchsel;
pub mod budget;
pub mod cluster;
pub mod curve;
pub mod error;
pub mod fault;
pub mod ids;
pub mod incremental;
pub mod matrix;
pub mod parallel;
pub mod pipeline;
pub mod proxy;
pub mod recall;
pub mod select;
pub mod shard;
pub mod similarity;
pub mod stats;
pub mod stream;
pub mod telemetry;
pub mod traits;
pub mod trend;

/// One-stop imports for typical use of the framework.
pub mod prelude {
    pub use crate::ann::{AnnConfig, AnnIndex, AnnMode, AnnRepIndex};
    pub use crate::budget::EpochLedger;
    pub use crate::cluster::hierarchical::Linkage;
    pub use crate::cluster::Clustering;
    pub use crate::curve::{CurveSet, LearningCurve};
    pub use crate::error::{FaultClass, Result, SelectionError};
    pub use crate::fault::{
        Casualty, FaultKind, FaultPlan, FaultSite, FaultSpec, FaultyOracle, FaultyTrainer,
        RetryPolicy,
    };
    pub use crate::ids::{DatasetId, ModelId};
    pub use crate::incremental::{DeltaEngine, Update, UpdateReport};
    pub use crate::matrix::PerformanceMatrix;
    pub use crate::parallel::ParallelConfig;
    pub use crate::pipeline::{
        two_phase_select, two_phase_select_traced, ClusterMethod, OfflineArtifacts, OfflineConfig,
        PipelineConfig, PipelineCounters, PipelineOutcome,
    };
    pub use crate::proxy::{leep::leep, PredictionMatrix};
    pub use crate::recall::{coarse_recall, coarse_recall_par, RecallConfig, RecallOutcome};
    pub use crate::select::{
        brute::{brute_force, brute_force_par},
        fine::{fine_selection, fine_selection_par, FineSelectionConfig},
        halving::{successive_halving, successive_halving_par},
        SelectionOutcome,
    };
    pub use crate::shard::{ShardPlan, ShardSpec};
    pub use crate::similarity::SimilarityMatrix;
    pub use crate::stream::StreamingOfflineBuilder;
    pub use crate::telemetry::{RecordingSink, Telemetry, TelemetrySink, TraceReport};
    pub use crate::traits::{ProxyOracle, TargetTrainer};
    pub use crate::trend::{ConvergenceTrends, TrendBook, TrendConfig};
}
