//! Deterministic approximate-nearest-neighbour index over model embeddings.
//!
//! The paper's coarse recall proxy-scores every cluster representative and
//! its offline phase materialises the dense O(M²) similarity matrix —
//! neither survives a million-model zoo. This module provides the
//! sublinear substitute: a hand-rolled HNSW-style layered graph over model
//! performance vectors, using the paper's Eq. 1 top-k-difference metric as
//! its distance, so "near in the index" means exactly "similar under the
//! paper's similarity".
//!
//! # Determinism
//!
//! The repo's bar is bit-reproducibility for any fixed `(seed, AnnConfig,
//! threads)` triple. The index earns it three ways:
//!
//! - **Seeded levels.** Each node's layer is drawn from the
//!   [`crate::parallel::split_seed`] splitmix64 stream at its insertion
//!   index, not from a shared RNG, so levels depend only on `(seed, id)`.
//! - **Serial construction.** Insertion is sequential in id order; there
//!   is no thread interleaving to perturb the graph. Batch queries
//!   ([`AnnIndex::knn_lists`]) fan out over the *frozen* graph through
//!   [`crate::parallel::map_indexed`], which gathers in index order, so
//!   results are identical at any thread count.
//! - **Total orders everywhere.** Every comparison is `(distance via
//!   `total_cmp`, then node id)` — no float `partial_cmp` unwraps, no
//!   hash-map iteration order.
//!
//! # Exactness knob
//!
//! [`AnnMode::Exact`] keeps the legacy dense path byte-identical (the
//! index is never consulted); [`AnnMode::Indexed`] switches both phases to
//! the graph. Searching with `ef_search >= n` degrades to an exhaustive
//! scan, which is the documented "`ef_search = ∞`" exact regime used by
//! the parity tests.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::error::{Result, SelectionError};
use crate::ids::ModelId;
use crate::matrix::PerformanceMatrix;
use crate::parallel::split_seed;

/// Default construction/search seed (disjoint from the zoo's world seeds).
pub const DEFAULT_ANN_SEED: u64 = 0x5eed_0a22;

/// Hard cap on layer indices; `-ln(u) * mult` is clamped below this.
const MAX_LEVEL: usize = 24;

/// Whether the pipeline consults the ANN index or keeps the legacy
/// exhaustive path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnnMode {
    /// Legacy behaviour: dense similarity offline, every representative
    /// proxy-scored online. Outputs are byte-identical to the pre-index
    /// pipeline.
    #[default]
    Exact,
    /// Index-assisted behaviour: kNN-graph clustering offline, seeded
    /// index expansion online with O(k·log M) recall fan-out.
    Indexed,
}

impl std::str::FromStr for AnnMode {
    type Err = SelectionError;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "exact" => Ok(AnnMode::Exact),
            "indexed" => Ok(AnnMode::Indexed),
            other => Err(SelectionError::InvalidConfig(format!(
                "unknown ann mode '{other}' (expected 'exact' or 'indexed')"
            ))),
        }
    }
}

/// Tuning knobs for the ANN index, threaded through `OfflineConfig`,
/// `PipelineConfig`, the CLI (`--ann …`) and `tps serve`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnConfig {
    /// Exactness knob; `Exact` ignores every other field.
    pub mode: AnnMode,
    /// Graph degree bound per layer (level 0 allows `2 * max_degree`).
    pub max_degree: usize,
    /// Beam width while inserting nodes.
    pub ef_construction: usize,
    /// Beam width while querying; `>= n` degrades to an exhaustive scan.
    pub ef_search: usize,
    /// Neighbours requested per query (offline kNN edges and online
    /// expansion are both `k`-bounded).
    pub k: usize,
    /// Online recall: number of top-average-accuracy representatives
    /// proxy-scored as expansion seeds.
    pub seed_reps: usize,
    /// Seed for the splitmix64 level stream.
    pub seed: u64,
}

impl Default for AnnConfig {
    fn default() -> Self {
        AnnConfig {
            mode: AnnMode::Exact,
            max_degree: 12,
            ef_construction: 64,
            ef_search: 48,
            k: 8,
            seed_reps: 8,
            seed: DEFAULT_ANN_SEED,
        }
    }
}

impl AnnConfig {
    /// Validate the knobs (degree needs ≥ 2 for a meaningful level
    /// distribution; beams and k must be non-zero).
    pub fn validate(&self) -> Result<()> {
        if self.max_degree < 2 {
            return Err(SelectionError::InvalidConfig(format!(
                "ann max_degree must be >= 2, got {}",
                self.max_degree
            )));
        }
        if self.ef_construction == 0 || self.ef_search == 0 {
            return Err(SelectionError::InvalidConfig(
                "ann ef_construction and ef_search must be >= 1".to_string(),
            ));
        }
        if self.k == 0 || self.seed_reps == 0 {
            return Err(SelectionError::InvalidConfig(
                "ann k and seed_reps must be >= 1".to_string(),
            ));
        }
        Ok(())
    }
}

/// Candidate ordering: distance first (total order), node id breaks ties.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cand {
    dist: f64,
    id: u32,
}

impl Eq for Cand {}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable per-thread search scratch: a generation-stamped visited set
/// (avoids an O(n) clear per query) plus the Eq. 1 diff buffer.
struct Scratch {
    stamp: Vec<u32>,
    generation: u32,
    diffs: Vec<f64>,
}

impl Scratch {
    fn new() -> Self {
        Scratch {
            stamp: Vec::new(),
            generation: 0,
            diffs: Vec::new(),
        }
    }

    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.generation = 1;
        }
    }

    /// Mark `id` visited; returns `true` the first time.
    fn visit(&mut self, id: u32) -> bool {
        let slot = &mut self.stamp[id as usize];
        if *slot == self.generation {
            false
        } else {
            *slot = self.generation;
            true
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Eq. 1 distance between two performance vectors: `1 - sim` where
/// `sim = 1 - avg(top_k largest |Δ|)`, floored at zero.
///
/// This is the one float-op sequence every distance in the crate shares —
/// [`AnnIndex`] queries, link pruning and the incremental delta engine all
/// funnel through it, so "equal bytes" comparisons across those layers are
/// meaningful. `diffs` is caller-provided scratch (cleared here).
pub(crate) fn eq1_distance_buf(a: &[f64], b: &[f64], top_k: usize, diffs: &mut Vec<f64>) -> f64 {
    diffs.clear();
    diffs.extend(a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()));
    diffs.sort_unstable_by(|x, y| y.total_cmp(x));
    let k = top_k.min(diffs.len());
    let avg = diffs[..k].iter().sum::<f64>() / k as f64;
    let sim = 1.0 - avg;
    (1.0 - sim).max(0.0)
}

/// Allocating convenience wrapper around the shared Eq. 1 distance.
pub fn eq1_distance(a: &[f64], b: &[f64], top_k: usize) -> f64 {
    eq1_distance_buf(a, b, top_k, &mut Vec::new())
}

/// A deterministic HNSW-style layered proximity graph over fixed-length
/// embeddings, with the paper's Eq. 1 top-k-difference distance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnIndex {
    vectors: Vec<Vec<f64>>,
    /// Eq. 1 `k`: how many of the largest per-dimension differences are
    /// averaged into the distance (`OfflineConfig::similarity_top_k`).
    sim_top_k: usize,
    max_degree: usize,
    ef_construction: usize,
    seed: u64,
    /// Top layer of each node.
    levels: Vec<u8>,
    /// `links[node][layer]` — adjacency per layer, pruned to the degree
    /// bound, stored in deterministic (insertion, then prune-sorted) order.
    links: Vec<Vec<Vec<u32>>>,
    entry: u32,
    max_level: u8,
}

impl AnnIndex {
    /// An empty index expecting vectors of any (consistent) dimension.
    pub fn new(sim_top_k: usize, config: &AnnConfig) -> Result<Self> {
        config.validate()?;
        if sim_top_k == 0 {
            return Err(SelectionError::InvalidConfig(
                "ann sim_top_k must be >= 1".to_string(),
            ));
        }
        Ok(AnnIndex {
            vectors: Vec::new(),
            sim_top_k,
            max_degree: config.max_degree,
            ef_construction: config.ef_construction,
            seed: config.seed,
            levels: Vec::new(),
            links: Vec::new(),
            entry: 0,
            max_level: 0,
        })
    }

    /// Build an index over `vectors` by inserting them in order.
    pub fn build(vectors: Vec<Vec<f64>>, sim_top_k: usize, config: &AnnConfig) -> Result<Self> {
        let mut index = AnnIndex::new(sim_top_k, config)?;
        for v in vectors {
            index.insert(v)?;
        }
        Ok(index)
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the index holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// The stored embedding of node `i`.
    pub fn vector(&self, i: usize) -> &[f64] {
        &self.vectors[i]
    }

    /// The Eq. 1 `k` this index measures distance with.
    pub fn sim_top_k(&self) -> usize {
        self.sim_top_k
    }

    /// Node `id`'s layer from the splitmix64 stream: `floor(-ln(u) * mult)`
    /// with `mult = 1 / ln(max_degree)` — the standard HNSW geometric
    /// distribution, but reproducible from `(seed, id)` alone.
    fn level_for(&self, id: u32) -> usize {
        let bits = split_seed(self.seed, id as u64);
        // 53 high bits -> uniform in (0, 1].
        let u = ((bits >> 11) as f64 + 1.0) * (1.0 / 9_007_199_254_740_992.0);
        let mult = 1.0 / (self.max_degree as f64).ln();
        let level = (-u.ln() * mult).floor();
        (level as usize).min(MAX_LEVEL)
    }

    /// Eq. 1 distance from `q` to stored node `node`: `1 - sim` where
    /// `sim = 1 - avg(top_k largest |Δ|)`, floored at zero — the same
    /// float-op sequence as `SimilarityMatrix::distance` on the lazy path.
    fn node_distance(&self, q: &[f64], node: u32, diffs: &mut Vec<f64>) -> f64 {
        eq1_distance_buf(q, &self.vectors[node as usize], self.sim_top_k, diffs)
    }

    /// Beam search one layer: best-first from `entry_points`, keeping the
    /// `ef` closest visited nodes. Returns candidates sorted ascending by
    /// `(dist, id)`.
    fn search_layer(
        &self,
        q: &[f64],
        entry_points: &[u32],
        ef: usize,
        layer: usize,
        scratch: &mut Scratch,
    ) -> Vec<Cand> {
        scratch.begin(self.len());
        let mut results: BinaryHeap<Cand> = BinaryHeap::new(); // worst on top
        let mut frontier: BinaryHeap<Reverse<Cand>> = BinaryHeap::new();
        for &ep in entry_points {
            if !scratch.visit(ep) {
                continue;
            }
            let mut diffs = std::mem::take(&mut scratch.diffs);
            let dist = self.node_distance(q, ep, &mut diffs);
            scratch.diffs = diffs;
            let cand = Cand { dist, id: ep };
            results.push(cand);
            frontier.push(Reverse(cand));
        }
        while results.len() > ef {
            results.pop();
        }
        while let Some(Reverse(current)) = frontier.pop() {
            if results.len() >= ef {
                let worst = results.peek().expect("results non-empty");
                if current.dist.total_cmp(&worst.dist).is_gt() {
                    break;
                }
            }
            for &nb in &self.links[current.id as usize][layer] {
                if !scratch.visit(nb) {
                    continue;
                }
                let mut diffs = std::mem::take(&mut scratch.diffs);
                let dist = self.node_distance(q, nb, &mut diffs);
                scratch.diffs = diffs;
                let admit = if results.len() < ef {
                    true
                } else {
                    dist.total_cmp(&results.peek().expect("non-empty").dist)
                        .is_lt()
                };
                if admit {
                    let cand = Cand { dist, id: nb };
                    results.push(cand);
                    frontier.push(Reverse(cand));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out = results.into_vec();
        out.sort_unstable();
        out
    }

    /// Greedy single-step descent through layers above `target_layer`,
    /// returning the entry point for the beam phase.
    fn greedy_descend(&self, q: &[f64], target_layer: usize, scratch: &mut Scratch) -> u32 {
        let mut ep = self.entry;
        let mut diffs = std::mem::take(&mut scratch.diffs);
        let mut best = self.node_distance(q, ep, &mut diffs);
        let mut layer = self.max_level as usize;
        while layer > target_layer {
            let mut improved = true;
            while improved {
                improved = false;
                for &nb in &self.links[ep as usize][layer] {
                    let dist = self.node_distance(q, nb, &mut diffs);
                    if dist.total_cmp(&best).is_lt() {
                        best = dist;
                        ep = nb;
                        improved = true;
                    }
                }
            }
            layer -= 1;
        }
        scratch.diffs = diffs;
        ep
    }

    /// Insert one embedding; ids are assigned sequentially. Construction
    /// is serial by design — see the module docs on determinism.
    pub fn insert(&mut self, vector: Vec<f64>) -> Result<usize> {
        if vector.is_empty() {
            return Err(SelectionError::Empty("ann vector"));
        }
        if let Some(first) = self.vectors.first() {
            if vector.len() != first.len() {
                return Err(SelectionError::DimensionMismatch {
                    what: "ann vector length",
                    expected: first.len(),
                    got: vector.len(),
                });
            }
        }
        let id = u32::try_from(self.vectors.len()).map_err(|_| {
            SelectionError::InvalidConfig("ann index capacity exceeded (u32 ids)".to_string())
        })?;
        let level = self.level_for(id);
        self.vectors.push(vector);
        self.levels.push(level as u8);
        self.links.push(vec![Vec::new(); level + 1]);
        if id == 0 {
            self.entry = 0;
            self.max_level = level as u8;
            return Ok(0);
        }
        let q = self.vectors[id as usize].clone();
        SCRATCH.with(|cell| {
            let scratch = &mut cell.borrow_mut();
            let top = self.max_level as usize;
            let mut ep = if level < top {
                self.greedy_descend(&q, level, scratch)
            } else {
                self.entry
            };
            let mut layer = level.min(top);
            loop {
                let candidates = self.search_layer(&q, &[ep], self.ef_construction, layer, scratch);
                let selected: Vec<Cand> =
                    candidates.iter().copied().take(self.max_degree).collect();
                self.links[id as usize][layer] = selected.iter().map(|c| c.id).collect();
                let cap = if layer == 0 {
                    2 * self.max_degree
                } else {
                    self.max_degree
                };
                for cand in &selected {
                    let nb = cand.id as usize;
                    self.links[nb][layer].push(id);
                    if self.links[nb][layer].len() > cap {
                        self.prune_links(nb, layer, cap, scratch);
                    }
                }
                if let Some(best) = selected.first() {
                    ep = best.id;
                }
                if layer == 0 {
                    break;
                }
                layer -= 1;
            }
        });
        if level > self.max_level as usize {
            self.max_level = level as u8;
            self.entry = id;
        }
        Ok(id as usize)
    }

    /// Re-rank `node`'s layer adjacency by `(dist, id)` and keep the `cap`
    /// closest — deterministic because both keys are total orders.
    fn prune_links(&mut self, node: usize, layer: usize, cap: usize, scratch: &mut Scratch) {
        let neighbors = std::mem::take(&mut self.links[node][layer]);
        let q = &self.vectors[node];
        let mut diffs = std::mem::take(&mut scratch.diffs);
        let mut ranked: Vec<Cand> = neighbors
            .into_iter()
            .map(|nb| Cand {
                dist: eq1_distance_buf(q, &self.vectors[nb as usize], self.sim_top_k, &mut diffs),
                id: nb,
            })
            .collect();
        scratch.diffs = diffs;
        ranked.sort_unstable();
        ranked.truncate(cap);
        self.links[node][layer] = ranked.into_iter().map(|c| c.id).collect();
    }

    /// Exhaustive Eq. 1 top-`k` scan — the ground truth the parity suite
    /// measures recall against, and the `ef_search >= n` exact regime.
    pub fn exhaustive_top_k(&self, q: &[f64], k: usize) -> Vec<(u32, f64)> {
        let mut all: Vec<Cand> = SCRATCH.with(|cell| {
            let scratch = &mut cell.borrow_mut();
            let mut diffs = std::mem::take(&mut scratch.diffs);
            let out = (0..self.len() as u32)
                .map(|id| Cand {
                    dist: self.node_distance(q, id, &mut diffs),
                    id,
                })
                .collect();
            scratch.diffs = diffs;
            out
        });
        all.sort_unstable();
        all.truncate(k);
        all.into_iter().map(|c| (c.id, c.dist)).collect()
    }

    /// Query the `k` nearest stored nodes to `q` under the Eq. 1 metric,
    /// sorted ascending by `(dist, id)`. `ef >= len()` is the exact
    /// regime (exhaustive scan); otherwise a beam search with width
    /// `max(ef, k)`.
    pub fn search(&self, q: &[f64], k: usize, ef: usize) -> Vec<(u32, f64)> {
        if self.is_empty() || k == 0 {
            return Vec::new();
        }
        if ef >= self.len() {
            return self.exhaustive_top_k(q, k);
        }
        SCRATCH.with(|cell| {
            let scratch = &mut cell.borrow_mut();
            let ep = self.greedy_descend(q, 0, scratch);
            let found = self.search_layer(q, &[ep], ef.max(k), 0, scratch);
            found.into_iter().take(k).map(|c| (c.id, c.dist)).collect()
        })
    }

    /// The `k` nearest *other* nodes to stored node `i`.
    pub fn knn(&self, i: usize, k: usize, ef: usize) -> Vec<(u32, f64)> {
        let q = &self.vectors[i];
        let mut found = self.search(q, k + 1, ef.max(k + 1).min(self.len()));
        found.retain(|&(id, _)| id as usize != i);
        found.truncate(k);
        found
    }

    /// Neighbour lists for every node — the index-assisted replacement for
    /// dense similarity rows. Fans out over the frozen graph with
    /// [`crate::parallel::map_indexed`], so output is bit-identical at any
    /// thread count.
    pub fn knn_lists(&self, k: usize, ef: usize, threads: usize) -> Vec<Vec<(u32, f64)>> {
        let ids: Vec<usize> = (0..self.len()).collect();
        crate::parallel::map_indexed(&ids, threads, |_, &i| self.knn(i, k, ef))
    }
}

/// An ANN index over the *cluster representatives* that coarse recall
/// proxy-scores, plus the mapping back to cluster indices. Built offline
/// (stored in `OfflineArtifacts`) or on the fly by the pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnRepIndex {
    /// Scored-cluster index of each indexed item (ascending).
    clusters: Vec<usize>,
    /// Representative model of each indexed item (aligned with
    /// `clusters`).
    reps: Vec<ModelId>,
    index: AnnIndex,
}

impl AnnRepIndex {
    /// Index the representatives of `scored_clusters` (the clusters coarse
    /// recall would proxy-score) by their performance vectors.
    pub fn build(
        matrix: &PerformanceMatrix,
        representatives: &[ModelId],
        scored_clusters: &[usize],
        sim_top_k: usize,
        config: &AnnConfig,
    ) -> Result<Self> {
        if scored_clusters.is_empty() {
            return Err(SelectionError::Empty("scored clusters for ann rep index"));
        }
        let mut index = AnnIndex::new(sim_top_k, config)?;
        let mut reps = Vec::with_capacity(scored_clusters.len());
        for &c in scored_clusters {
            let rep = *representatives.get(c).ok_or(SelectionError::UnknownId {
                what: "cluster",
                id: c,
            })?;
            index.insert(matrix.model_vector(rep))?;
            reps.push(rep);
        }
        Ok(AnnRepIndex {
            clusters: scored_clusters.to_vec(),
            reps,
            index,
        })
    }

    /// Whether this index was built over exactly `scored_clusters`.
    pub fn matches(&self, scored_clusters: &[usize]) -> bool {
        self.clusters == scored_clusters
    }

    /// Number of indexed representatives.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether no representatives are indexed.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The scored-cluster indices nearest to `query` (a model performance
    /// vector), closest first, at most `width` of them.
    pub fn expand(&self, query: &[f64], width: usize, ef: usize) -> Vec<usize> {
        self.index
            .search(query, width, ef)
            .into_iter()
            .map(|(i, _)| self.clusters[i as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_vectors(n: usize, dims: usize, seed: u64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..dims)
                    .map(|d| {
                        let bits = split_seed(seed, (i * dims + d) as u64);
                        (bits >> 11) as f64 / 9_007_199_254_740_992.0
                    })
                    .collect()
            })
            .collect()
    }

    fn indexed_config() -> AnnConfig {
        AnnConfig {
            mode: AnnMode::Indexed,
            ..AnnConfig::default()
        }
    }

    #[test]
    fn mode_parses_and_rejects() {
        assert_eq!("exact".parse::<AnnMode>().unwrap(), AnnMode::Exact);
        assert_eq!("indexed".parse::<AnnMode>().unwrap(), AnnMode::Indexed);
        assert!("fuzzy".parse::<AnnMode>().is_err());
    }

    #[test]
    fn config_validation_catches_degenerate_knobs() {
        let mut cfg = AnnConfig::default();
        cfg.max_degree = 1;
        assert!(cfg.validate().is_err());
        cfg = AnnConfig::default();
        cfg.k = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn empty_and_mismatched_vectors_are_rejected() {
        let mut index = AnnIndex::new(3, &indexed_config()).unwrap();
        assert!(index.insert(Vec::new()).is_err());
        index.insert(vec![0.1, 0.2]).unwrap();
        assert!(index.insert(vec![0.1, 0.2, 0.3]).is_err());
    }

    #[test]
    fn construction_is_reproducible() {
        let vectors = demo_vectors(200, 6, 7);
        let a = AnnIndex::build(vectors.clone(), 3, &indexed_config()).unwrap();
        let b = AnnIndex::build(vectors, 3, &indexed_config()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn full_ef_search_matches_exhaustive_scan() {
        let vectors = demo_vectors(150, 5, 11);
        let index = AnnIndex::build(vectors.clone(), 3, &indexed_config()).unwrap();
        for probe in 0..10 {
            let q = &vectors[probe * 13 % vectors.len()];
            let exact = index.exhaustive_top_k(q, 10);
            let found = index.search(q, 10, index.len());
            assert_eq!(exact, found);
        }
    }

    #[test]
    fn beam_search_recall_is_high() {
        let vectors = demo_vectors(300, 6, 23);
        let index = AnnIndex::build(vectors.clone(), 3, &indexed_config()).unwrap();
        let mut hits = 0usize;
        let mut total = 0usize;
        for probe in 0..30 {
            let q = &vectors[(probe * 7) % vectors.len()];
            let exact: Vec<u32> = index
                .exhaustive_top_k(q, 8)
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            let found: Vec<u32> = index.search(q, 8, 48).into_iter().map(|(i, _)| i).collect();
            total += exact.len();
            hits += exact.iter().filter(|i| found.contains(i)).count();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall >= 0.95, "recall {recall} below 0.95");
    }

    #[test]
    fn knn_lists_are_thread_count_invariant() {
        let vectors = demo_vectors(120, 4, 5);
        let index = AnnIndex::build(vectors, 2, &indexed_config()).unwrap();
        let serial = index.knn_lists(6, 32, 1);
        let parallel = index.knn_lists(6, 32, 4);
        assert_eq!(serial, parallel);
        assert!(serial.iter().all(|l| l.len() <= 6));
        for (i, list) in serial.iter().enumerate() {
            assert!(list.iter().all(|&(id, _)| id as usize != i));
        }
    }

    #[test]
    fn serde_round_trip_preserves_index() {
        let vectors = demo_vectors(40, 4, 3);
        let index = AnnIndex::build(vectors, 2, &indexed_config()).unwrap();
        let json = serde_json::to_string(&index).unwrap();
        let back: AnnIndex = serde_json::from_str(&json).unwrap();
        assert_eq!(index, back);
    }
}
