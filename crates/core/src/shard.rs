//! Deterministic zoo sharding: scatter coarse recall across N partitions
//! and gather the candidates back in total order.
//!
//! A [`ShardSpec`] assigns every *cluster* (and hence every model, via its
//! cluster) to one of `N` shards. The assignment is a pure function of
//! `(seed, N)` — it touches no clock, no RNG state, no iteration order —
//! so any process that knows the spec derives the identical partition. On
//! top of the plan, [`coarse_recall_sharded_traced`] runs the paper's
//! coarse recall as scatter/gather: each shard proxy-scores the
//! representatives of its own clusters, each shard ranks the models whose
//! clusters it owns, and the gather stage merges the per-shard rankings in
//! `(score desc, id asc)` total order — the exact comparator the unsharded
//! ranking sorts with. Because the per-model score (Eq. 3/4) depends only
//! on the global normalised proxy scores — never on which shard computed
//! them — the merged outcome is byte-identical to
//! [`crate::recall::coarse_recall_par_traced`] at any shard count.
//!
//! Serving planes that want to interleave the scatter with their own
//! batching use the lower-level pieces directly: [`scatter_set`] to get the
//! scored-cluster fan-out, [`ShardPlan::partition_positions`] to split it,
//! and [`resolve_and_gather`] to turn the collected first attempts into a
//! [`RecallOutcome`].

use crate::cluster::Clustering;
use crate::error::{Result, SelectionError};
use crate::ids::ModelId;
use crate::matrix::PerformanceMatrix;
use crate::parallel::split_seed;
use crate::proxy::normalize_scores;
use crate::recall::{self, RecallConfig, RecallOutcome};
use crate::similarity::SimilarityMatrix;
use crate::telemetry::Telemetry;
use serde::{Deserialize, Serialize};

/// Default partition seed. Fixed so that every process (server, CLI,
/// tests) that does not override it derives the same partition.
pub const DEFAULT_SHARD_SEED: u64 = 0x7470_732d_7368_6172; // "tps-shar"

/// The two numbers that fully determine a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Partition seed; mixed per cluster through SplitMix64.
    pub seed: u64,
    /// Number of shards (>= 1).
    pub shards: usize,
}

impl ShardSpec {
    /// Spec with the [`DEFAULT_SHARD_SEED`].
    pub fn new(shards: usize) -> Self {
        Self {
            seed: DEFAULT_SHARD_SEED,
            shards,
        }
    }

    /// Shard owning `cluster`. Pure in `(self.seed, self.shards, cluster)`:
    /// the cluster index is mixed through the same SplitMix64 finalizer the
    /// parallel layer uses for per-item seeds, then reduced mod `shards`.
    pub fn shard_of(&self, cluster: usize) -> usize {
        (split_seed(self.seed, cluster as u64) % self.shards.max(1) as u64) as usize
    }
}

/// A materialised partition: the per-cluster shard assignment for one
/// `(spec, n_clusters)` pair, plus the per-shard cluster lists.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardPlan {
    spec: ShardSpec,
    /// `assignment[c]` = shard owning cluster `c`.
    assignment: Vec<usize>,
    /// Clusters per shard, each list ascending.
    clusters: Vec<Vec<usize>>,
}

impl ShardPlan {
    /// Build the plan for `n_clusters` clusters. Errors when `spec.shards`
    /// is zero.
    pub fn build(spec: ShardSpec, n_clusters: usize) -> Result<Self> {
        if spec.shards == 0 {
            return Err(SelectionError::InvalidConfig("shards must be >= 1".into()));
        }
        let assignment: Vec<usize> = (0..n_clusters).map(|c| spec.shard_of(c)).collect();
        let mut clusters = vec![Vec::new(); spec.shards];
        for (c, &s) in assignment.iter().enumerate() {
            clusters[s].push(c);
        }
        Ok(Self {
            spec,
            assignment,
            clusters,
        })
    }

    /// The spec this plan was built from.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.spec.shards
    }

    /// Number of clusters the plan partitions.
    pub fn n_clusters(&self) -> usize {
        self.assignment.len()
    }

    /// Per-cluster shard assignment.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Clusters owned by `shard`, ascending.
    pub fn clusters_of(&self, shard: usize) -> &[usize] {
        &self.clusters[shard]
    }

    /// Split positions `0..clusters.len()` by the shard owning each listed
    /// cluster. Returns one ascending position list per shard; every
    /// position appears in exactly one list, so a scatter computed
    /// shard-by-shard reassembles into the original order by position.
    pub fn partition_positions(&self, clusters: &[usize]) -> Vec<Vec<usize>> {
        let mut per_shard = vec![Vec::new(); self.shards()];
        for (pos, &c) in clusters.iter().enumerate() {
            per_shard[self.assignment[c]].push(pos);
        }
        per_shard
    }

    /// Validate the plan against a clustering's cluster count.
    pub fn check(&self, n_clusters: usize) -> Result<()> {
        if self.n_clusters() != n_clusters {
            return Err(SelectionError::DimensionMismatch {
                what: "shard plan vs clustering clusters",
                expected: n_clusters,
                got: self.n_clusters(),
            });
        }
        Ok(())
    }
}

/// The scatter fan-out: validated representatives plus the scored-cluster
/// set, exactly as the unsharded recall prepares them.
pub fn scatter_set(
    matrix: &PerformanceMatrix,
    clustering: &Clustering,
    similarity: &SimilarityMatrix,
    config: &RecallConfig,
) -> Result<(Vec<ModelId>, Vec<usize>)> {
    recall::prepare_recall(matrix, clustering, similarity, config)
}

/// Scatter the first proxy attempts across the plan's shards: shard `s`
/// computes `attempt(pos)` for every position of `scored` it owns, the
/// per-shard results are gathered back by position. `attempt` receives a
/// position into `scored` (so callers close over both the scored set and
/// the representatives). The returned vector is position-aligned with
/// `scored` — identical in content to the unsharded fan-out.
pub fn scatter_attempts(
    plan: &ShardPlan,
    scored: &[usize],
    threads: usize,
    attempt: impl Fn(usize) -> Result<f64> + Sync,
) -> Vec<Option<Result<f64>>> {
    let locals = plan.partition_positions(scored);
    let shard_ids: Vec<usize> = (0..plan.shards()).collect();
    let per_shard: Vec<Vec<(usize, Result<f64>)>> =
        crate::parallel::map_indexed(&shard_ids, threads, |_, &s| {
            locals[s].iter().map(|&pos| (pos, attempt(pos))).collect()
        });
    let mut firsts: Vec<Option<Result<f64>>> = (0..scored.len()).map(|_| None).collect();
    for shard_out in per_shard {
        for (pos, r) in shard_out {
            firsts[pos] = Some(r);
        }
    }
    firsts
}

/// Resolve the scattered first attempts (serial retry/quarantine pass, in
/// cluster order — identical to the unsharded path) and gather the
/// per-shard rankings into the final [`RecallOutcome`].
///
/// Each shard ranks the models whose clusters it owns using the same
/// Eq. 3/4 arithmetic as the unsharded scorer; the gather concatenates the
/// per-shard rankings and sorts by `(score desc, id asc)`. That comparator
/// is a total order over the repository (model ids are unique), so the
/// merged ranking is the unique sorted sequence — byte-identical to the
/// unsharded one regardless of shard count or merge arrival order.
///
/// Emits the standard `recall.{proxy_evals, quarantined, proxy_epochs,
/// recalled}` counters and the `recall.proxy_epochs_per_call` observation.
#[allow(clippy::too_many_arguments)]
pub fn resolve_and_gather(
    matrix: &PerformanceMatrix,
    clustering: &Clustering,
    similarity: &SimilarityMatrix,
    config: &RecallConfig,
    plan: &ShardPlan,
    representatives: Vec<ModelId>,
    scored: &[usize],
    firsts: Vec<Option<Result<f64>>>,
    retry: &mut dyn FnMut(ModelId) -> Result<f64>,
    threads: usize,
    tel: &Telemetry,
) -> Result<RecallOutcome> {
    let resolved =
        recall::resolve_scores(&representatives, scored, firsts, retry, config.retry, tel)?;
    tel.add("recall.proxy_evals", resolved.attempts as f64);
    if !resolved.casualties.is_empty() {
        tel.add("recall.quarantined", resolved.casualties.len() as f64);
    }
    let out = gather_ranking(
        matrix,
        clustering,
        similarity,
        config,
        plan,
        representatives,
        resolved,
        threads,
    )?;
    tel.add("recall.proxy_epochs", out.proxy_epochs);
    tel.add("recall.recalled", out.recalled.len() as f64);
    tel.observe("recall.proxy_epochs_per_call", out.proxy_epochs);
    Ok(out)
}

/// Per-shard Eq. 3/4 scoring + total-order gather merge.
#[allow(clippy::too_many_arguments)]
fn gather_ranking(
    matrix: &PerformanceMatrix,
    clustering: &Clustering,
    similarity: &SimilarityMatrix,
    config: &RecallConfig,
    plan: &ShardPlan,
    representatives: Vec<ModelId>,
    resolved: recall::ResolvedScores,
    threads: usize,
) -> Result<RecallOutcome> {
    plan.check(clustering.n_clusters())?;
    let recall::ResolvedScores {
        clusters: scored_clusters,
        raw,
        casualties,
        attempts,
    } = resolved;
    let n = matrix.n_models();
    let norm = normalize_scores(&raw);
    let mut cluster_proxy: Vec<Option<f64>> = vec![None; clustering.n_clusters()];
    for (&c, &p) in scored_clusters.iter().zip(&norm) {
        cluster_proxy[c] = Some(p);
    }

    // Scatter: each shard ranks its own partition — the models whose
    // cluster it owns — in ascending id order.
    let shard_ids: Vec<usize> = (0..plan.shards()).collect();
    let local_ranked: Vec<Vec<(ModelId, f64)>> =
        crate::parallel::map_indexed(&shard_ids, threads, |_, &s| {
            matrix
                .model_ids()
                .filter(|&m| plan.assignment[clustering.cluster_of(m)] == s)
                .map(|m| {
                    let score = recall::model_recall_score(
                        matrix,
                        clustering,
                        similarity,
                        &representatives,
                        &scored_clusters,
                        &norm,
                        &cluster_proxy,
                        m,
                    );
                    (m, score)
                })
                .collect()
        });

    // Gather: merge in (score desc, id asc) total order — the unsharded
    // ranking's comparator. Ids are unique, so the order is total and the
    // sorted sequence is unique: shard count and concatenation order
    // cannot leak into the result.
    let mut ranked: Vec<(ModelId, f64)> = local_ranked.into_iter().flatten().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    let recalled = ranked
        .iter()
        .take(config.top_k.min(n))
        .map(|&(m, _)| m)
        .collect();

    Ok(RecallOutcome {
        ranked,
        recalled,
        cluster_proxy,
        representatives,
        proxy_epochs: config.proxy_epoch_cost * attempts as f64,
        casualties,
    })
}

/// Sharded scatter/gather coarse recall, traced. Reference composition of
/// the pieces above; byte-identical to
/// [`crate::recall::coarse_recall_par_traced`] for any `(plan, threads)`.
///
/// Emits the standard recall counters plus — when the plan has more than
/// one shard — `shard.shards` and `shard.scatter_jobs`.
#[allow(clippy::too_many_arguments)]
pub fn coarse_recall_sharded_traced(
    matrix: &PerformanceMatrix,
    clustering: &Clustering,
    similarity: &SimilarityMatrix,
    config: &RecallConfig,
    plan: &ShardPlan,
    threads: usize,
    proxy_for: impl Fn(ModelId) -> Result<f64> + Sync,
    tel: &Telemetry,
) -> Result<RecallOutcome> {
    let _span = tel.span("recall.coarse");
    let (representatives, scored) = scatter_set(matrix, clustering, similarity, config)?;
    plan.check(clustering.n_clusters())?;
    tel.add("recall.candidates", matrix.n_models() as f64);
    tel.observe("recall.fanout_width", scored.len() as f64);
    if plan.shards() > 1 {
        tel.add("shard.shards", plan.shards() as f64);
        tel.add("shard.scatter_jobs", scored.len() as f64);
    }
    let firsts = {
        let _scoring = tel.span("recall.proxy_scoring");
        scatter_attempts(plan, &scored, threads, |pos| {
            proxy_for(representatives[scored[pos]])
        })
    };
    resolve_and_gather(
        matrix,
        clustering,
        similarity,
        config,
        plan,
        representatives,
        &scored,
        firsts,
        &mut |rep| proxy_for(rep),
        threads,
        tel,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recall::coarse_recall_par_traced;
    use crate::similarity::SimilarityMatrix;

    /// 8 models, 3 datasets: two families plus singletons, so the scored
    /// set exercises both Eq. 3 and Eq. 4 paths.
    fn fixture() -> (PerformanceMatrix, Clustering, SimilarityMatrix) {
        let names: Vec<String> = (0..8).map(|i| format!("m{i}")).collect();
        let datasets = vec!["d0".into(), "d1".into(), "d2".into()];
        let rows = vec![
            vec![0.91, 0.90, 0.89, 0.55, 0.54, 0.30, 0.70, 0.20],
            vec![0.88, 0.87, 0.86, 0.52, 0.51, 0.33, 0.66, 0.25],
            vec![0.93, 0.92, 0.91, 0.57, 0.56, 0.28, 0.72, 0.18],
        ];
        let matrix = PerformanceMatrix::new(names, datasets, rows).unwrap();
        let similarity = SimilarityMatrix::from_performance(&matrix, 3).unwrap();
        let clustering = Clustering::new(vec![0, 0, 0, 1, 1, 2, 3, 4]).unwrap();
        (matrix, clustering, similarity)
    }

    fn proxy(rep: ModelId) -> Result<f64> {
        // Deterministic, representative-dependent, non-monotone in id.
        Ok(((rep.0 as f64) * 0.37 + 0.11).sin().abs())
    }

    #[test]
    fn partition_is_pure_in_seed_and_shard_count() {
        // Rebuilding the plan from the same (seed, N) — in any process, at
        // any time — yields the identical assignment.
        for &shards in &[1usize, 2, 4, 7] {
            let a = ShardPlan::build(ShardSpec::new(shards), 64).unwrap();
            let b = ShardPlan::build(ShardSpec::new(shards), 64).unwrap();
            assert_eq!(a, b);
            // Pointwise: assignment[c] is spec.shard_of(c), nothing else.
            let spec = ShardSpec::new(shards);
            for c in 0..64 {
                assert_eq!(a.assignment()[c], spec.shard_of(c));
                assert!(a.assignment()[c] < shards);
                assert!(a.clusters_of(a.assignment()[c]).contains(&c));
            }
        }
        // Different seeds give different partitions (at 4 shards, 64
        // clusters, a collision of the full assignment is astronomically
        // unlikely — this guards against the seed being ignored).
        let a = ShardPlan::build(ShardSpec { seed: 1, shards: 4 }, 64).unwrap();
        let b = ShardPlan::build(ShardSpec { seed: 2, shards: 4 }, 64).unwrap();
        assert_ne!(a.assignment(), b.assignment());
    }

    #[test]
    fn partition_positions_cover_exactly_once() {
        let plan = ShardPlan::build(ShardSpec::new(3), 16).unwrap();
        let scored: Vec<usize> = vec![0, 2, 3, 5, 7, 11, 13, 15];
        let per_shard = plan.partition_positions(&scored);
        let mut seen: Vec<usize> = per_shard.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..scored.len()).collect::<Vec<_>>());
        for (s, positions) in per_shard.iter().enumerate() {
            for &pos in positions {
                assert_eq!(plan.assignment()[scored[pos]], s);
            }
            assert!(positions.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn zero_shards_is_rejected() {
        assert!(ShardPlan::build(ShardSpec::new(0), 8).is_err());
    }

    #[test]
    fn sharded_recall_is_byte_identical_to_unsharded() {
        let (matrix, clustering, similarity) = fixture();
        let config = RecallConfig {
            top_k: 5,
            ..RecallConfig::default()
        };
        let reference = coarse_recall_par_traced(
            &matrix,
            &clustering,
            &similarity,
            &config,
            1,
            proxy,
            &Telemetry::disabled(),
        )
        .unwrap();
        for &shards in &[1usize, 2, 4, 7] {
            for &threads in &[1usize, 4] {
                let plan =
                    ShardPlan::build(ShardSpec::new(shards), clustering.n_clusters()).unwrap();
                let out = coarse_recall_sharded_traced(
                    &matrix,
                    &clustering,
                    &similarity,
                    &config,
                    &plan,
                    threads,
                    proxy,
                    &Telemetry::disabled(),
                )
                .unwrap();
                assert_eq!(out, reference, "shards={shards} threads={threads}");
                // Byte-identical through the serialised form too.
                assert_eq!(
                    serde_json::to_string(&out).unwrap(),
                    serde_json::to_string(&reference).unwrap(),
                    "serialised mismatch at shards={shards} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn sharded_recall_counters_match_unsharded() {
        let (matrix, clustering, similarity) = fixture();
        let config = RecallConfig::default();
        let (tel_ref, sink_ref) = Telemetry::recording();
        coarse_recall_par_traced(
            &matrix,
            &clustering,
            &similarity,
            &config,
            1,
            proxy,
            &tel_ref,
        )
        .unwrap();
        let reference = sink_ref.report();
        let plan = ShardPlan::build(ShardSpec::new(4), clustering.n_clusters()).unwrap();
        let (tel, sink) = Telemetry::recording();
        coarse_recall_sharded_traced(
            &matrix,
            &clustering,
            &similarity,
            &config,
            &plan,
            4,
            proxy,
            &tel,
        )
        .unwrap();
        let report = sink.report();
        for key in [
            "recall.candidates",
            "recall.proxy_evals",
            "recall.proxy_epochs",
            "recall.recalled",
        ] {
            assert_eq!(
                report.counters.get(key),
                reference.counters.get(key),
                "{key}"
            );
        }
        assert_eq!(report.counters.get("shard.shards"), Some(&4.0));
        assert!(
            report
                .counters
                .get("shard.scatter_jobs")
                .copied()
                .unwrap_or(0.0)
                > 0.0
        );
        // The unsharded trace never mentions shard.* counters.
        assert!(reference.counters.get("shard.shards").is_none());
    }

    #[test]
    fn mismatched_plan_is_rejected() {
        let (matrix, clustering, similarity) = fixture();
        let config = RecallConfig::default();
        let plan = ShardPlan::build(ShardSpec::new(2), clustering.n_clusters() + 3).unwrap();
        let err = coarse_recall_sharded_traced(
            &matrix,
            &clustering,
            &similarity,
            &config,
            &plan,
            1,
            proxy,
            &Telemetry::disabled(),
        );
        assert!(err.is_err());
    }
}
