//! The coarse-recall phase (paper §III): cheaply shrink the repository to a
//! handful of promising candidates for fine-tuning.
//!
//! For every **non-singleton** cluster the proxy score (LEEP) is computed
//! once, for the cluster's representative model, on the target dataset.
//! Then (after min-max normalisation to `[0, 1]`):
//!
//! * Eq. 3 — a model in a non-singleton cluster scores
//!   `acc(m) · proxy(T | m(c(m)))`;
//! * Eq. 4 — a model in a singleton cluster receives the representatives'
//!   proxy scores *propagated* and decayed by model similarity:
//!   `acc(m) · (1/|C_non|) Σ_k sim(m, m(C_k)) · proxy(T | m(C_k))`.
//!
//! The top-K models by recall score advance to fine-selection.

use crate::ann::{AnnConfig, AnnMode, AnnRepIndex};
use crate::cluster::Clustering;
use crate::error::{FaultClass, Result, SelectionError};
use crate::fault::{Casualty, RetryPolicy};
use crate::ids::ModelId;
use crate::matrix::PerformanceMatrix;
use crate::proxy::normalize_scores;
use crate::similarity::SimilarityMatrix;
use crate::telemetry::Telemetry;
use serde::{Deserialize, Serialize};

/// Configuration for [`coarse_recall`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RecallConfig {
    /// How many models to recall (the paper settles on `K = 10`).
    pub top_k: usize,
    /// Epoch-equivalents charged per proxy-score computation. The paper
    /// counts inference as half a training epoch (§V-D: `0.5 · |MC|`).
    pub proxy_epoch_cost: f64,
    /// How transient proxy-eval failures are retried before the cluster is
    /// quarantined (every attempt, failed or not, is charged
    /// `proxy_epoch_cost`).
    #[serde(default)]
    pub retry: RetryPolicy,
}

impl Default for RecallConfig {
    fn default() -> Self {
        Self {
            top_k: 10,
            proxy_epoch_cost: 0.5,
            retry: RetryPolicy::default(),
        }
    }
}

/// Result of the coarse-recall phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecallOutcome {
    /// Every model with its recall score, sorted descending (ties broken by
    /// model id for determinism).
    pub ranked: Vec<(ModelId, f64)>,
    /// The top-K models — input to fine-selection, in rank order.
    pub recalled: Vec<ModelId>,
    /// Normalised proxy score per cluster (`None` for singleton clusters,
    /// whose representatives are never scored directly).
    pub cluster_proxy: Vec<Option<f64>>,
    /// Representative model per cluster.
    pub representatives: Vec<ModelId>,
    /// Epoch-equivalents spent computing proxy scores (every attempt is
    /// charged, including retried and permanently-failed ones).
    pub proxy_epochs: f64,
    /// Representatives whose proxy eval failed permanently (or exhausted
    /// retries, or returned a non-finite score). Their clusters fall back
    /// to the Eq. 4 propagated score. Empty on fault-free runs; pre-fault
    /// JSON deserialises to empty.
    #[serde(default)]
    pub casualties: Vec<Casualty>,
}

impl RecallOutcome {
    /// Rank (0-based) of a model in the recall ordering, or `None` if the
    /// model was not part of the repository. Used for Table VII's `R@CR`.
    pub fn rank_of(&self, m: ModelId) -> Option<usize> {
        self.ranked.iter().position(|&(id, _)| id == m)
    }
}

/// Run the coarse-recall phase.
///
/// `proxy_for` computes the **raw** proxy score (e.g. LEEP) of one
/// representative model on the target dataset; it is called exactly once per
/// non-singleton cluster. Raw scores are min-max normalised across the
/// scored representatives before entering Eq. 3/4.
pub fn coarse_recall(
    matrix: &PerformanceMatrix,
    clustering: &Clustering,
    similarity: &SimilarityMatrix,
    config: &RecallConfig,
    mut proxy_for: impl FnMut(ModelId) -> Result<f64>,
) -> Result<RecallOutcome> {
    let (representatives, scored_clusters) =
        prepare_recall(matrix, clustering, similarity, config)?;
    let first: Vec<Option<Result<f64>>> = vec![None; scored_clusters.len()];
    let resolved = resolve_scores(
        &representatives,
        &scored_clusters,
        first,
        &mut proxy_for,
        config.retry,
        &Telemetry::disabled(),
    )?;
    finish_recall(
        matrix,
        clustering,
        similarity,
        config,
        representatives,
        resolved,
    )
}

/// Parallel [`coarse_recall`]: the per-representative proxy scores are
/// computed across `threads` workers. Everything downstream of the raw
/// scores (normalisation, Eq. 3/4, ranking) is unchanged serial code, so
/// the outcome is bit-identical to the serial call — including which error
/// is reported when several representatives fail.
///
/// The proxy closure must be `Fn + Sync` here (the serial entry point keeps
/// accepting stateful `FnMut` closures).
pub fn coarse_recall_par(
    matrix: &PerformanceMatrix,
    clustering: &Clustering,
    similarity: &SimilarityMatrix,
    config: &RecallConfig,
    threads: usize,
    proxy_for: impl Fn(ModelId) -> Result<f64> + Sync,
) -> Result<RecallOutcome> {
    coarse_recall_par_traced(
        matrix,
        clustering,
        similarity,
        config,
        threads,
        proxy_for,
        &Telemetry::disabled(),
    )
}

/// [`coarse_recall_par`] with telemetry: a `recall.coarse` span (with a
/// `recall.proxy_scoring` child around the representative fan-out) and the
/// `recall.{candidates, proxy_evals, proxy_epochs, recalled}` counters.
/// Counter values are identical for any thread count.
#[allow(clippy::too_many_arguments)]
pub fn coarse_recall_par_traced(
    matrix: &PerformanceMatrix,
    clustering: &Clustering,
    similarity: &SimilarityMatrix,
    config: &RecallConfig,
    threads: usize,
    proxy_for: impl Fn(ModelId) -> Result<f64> + Sync,
    tel: &Telemetry,
) -> Result<RecallOutcome> {
    let _span = tel.span("recall.coarse");
    let (representatives, scored_clusters) =
        prepare_recall(matrix, clustering, similarity, config)?;
    tel.add("recall.candidates", matrix.n_models() as f64);
    // Fan-out width of the proxy-scoring stage — deterministic, so its
    // histogram participates in drift gates and serial≡parallel checks.
    tel.observe("recall.fanout_width", scored_clusters.len() as f64);
    let resolved = {
        let _scoring = tel.span("recall.proxy_scoring");
        // First attempt per representative fans out across the workers;
        // retries and quarantine decisions run serially afterwards, in
        // cluster order, so the outcome is bit-identical to the serial
        // call for any thread count.
        let first: Vec<Option<Result<f64>>> =
            crate::parallel::map_indexed(&scored_clusters, threads, |_, &c| {
                Some(proxy_for(representatives[c]))
            });
        resolve_scores(
            &representatives,
            &scored_clusters,
            first,
            &mut |rep| proxy_for(rep),
            config.retry,
            tel,
        )?
    };
    tel.add("recall.proxy_evals", resolved.attempts as f64);
    if !resolved.casualties.is_empty() {
        tel.add("recall.quarantined", resolved.casualties.len() as f64);
    }
    let out = finish_recall(
        matrix,
        clustering,
        similarity,
        config,
        representatives,
        resolved,
    )?;
    tel.add("recall.proxy_epochs", out.proxy_epochs);
    tel.add("recall.recalled", out.recalled.len() as f64);
    tel.observe("recall.proxy_epochs_per_call", out.proxy_epochs);
    Ok(out)
}

/// [`coarse_recall_par_traced`] with an ANN-index candidate stage in front
/// of proxy scoring.
///
/// With [`AnnMode::Exact`] this *is* `coarse_recall_par_traced` — same
/// code path, byte-identical outcome and trace. With [`AnnMode::Indexed`]
/// the proxy fan-out shrinks from O(#reps) to O(k·log M): the
/// `seed_reps` scored clusters whose representatives have the highest
/// benchmark average accuracy are taken as seeds, the index around the
/// best seed is expanded to at most `k·⌈log₂ M⌉` further representatives,
/// and only that candidate set is proxy-scored. Every unscored cluster
/// falls back to the paper's Eq. 4 propagation, so every model still
/// receives a recall score. Candidate choice happens *before* any proxy
/// call, and all tie-breaks are `(value via total_cmp, then id)`, so the
/// outcome is bit-identical for any fixed `(seed, AnnConfig, threads)`.
///
/// `rep_index` is the prebuilt representative index from
/// `OfflineArtifacts` (indexed builds store one); when absent or stale it
/// is rebuilt here from the matrix. Indexed mode additionally emits the
/// `ann.{seeds, expanded, candidates, k, log2_m}` counters; exact mode
/// emits nothing new, preserving the trace-drift baseline.
#[allow(clippy::too_many_arguments)]
pub fn coarse_recall_ann_traced(
    matrix: &PerformanceMatrix,
    clustering: &Clustering,
    similarity: &SimilarityMatrix,
    config: &RecallConfig,
    ann: &AnnConfig,
    rep_index: Option<&AnnRepIndex>,
    threads: usize,
    proxy_for: impl Fn(ModelId) -> Result<f64> + Sync,
    tel: &Telemetry,
) -> Result<RecallOutcome> {
    if ann.mode == AnnMode::Exact {
        return coarse_recall_par_traced(
            matrix, clustering, similarity, config, threads, proxy_for, tel,
        );
    }
    ann.validate()?;
    let _span = tel.span("recall.coarse");
    let (representatives, all_scored) = prepare_recall(matrix, clustering, similarity, config)?;
    tel.add("recall.candidates", matrix.n_models() as f64);
    let scored_clusters = ann_candidate_clusters(
        matrix,
        similarity,
        &representatives,
        &all_scored,
        ann,
        rep_index,
        tel,
    )?;
    tel.observe("recall.fanout_width", scored_clusters.len() as f64);
    let resolved = {
        let _scoring = tel.span("recall.proxy_scoring");
        let first: Vec<Option<Result<f64>>> =
            crate::parallel::map_indexed(&scored_clusters, threads, |_, &c| {
                Some(proxy_for(representatives[c]))
            });
        resolve_scores(
            &representatives,
            &scored_clusters,
            first,
            &mut |rep| proxy_for(rep),
            config.retry,
            tel,
        )?
    };
    tel.add("recall.proxy_evals", resolved.attempts as f64);
    if !resolved.casualties.is_empty() {
        tel.add("recall.quarantined", resolved.casualties.len() as f64);
    }
    let out = finish_recall(
        matrix,
        clustering,
        similarity,
        config,
        representatives,
        resolved,
    )?;
    tel.add("recall.proxy_epochs", out.proxy_epochs);
    tel.add("recall.recalled", out.recalled.len() as f64);
    tel.observe("recall.proxy_epochs_per_call", out.proxy_epochs);
    Ok(out)
}

/// `⌈log₂ max(n, 2)⌉` — the sublinearity budget's scale term.
fn ceil_log2(n: usize) -> usize {
    let n = n.max(2);
    (usize::BITS - (n - 1).leading_zeros()) as usize
}

/// Choose which clusters indexed recall proxy-scores: `seed_reps` seeds by
/// representative benchmark accuracy plus at most `k·⌈log₂ M⌉` index
/// neighbours of the best seed. Returns cluster indices sorted ascending —
/// the same iteration order the exhaustive path uses, which keeps the
/// Eq. 4 float-summation order deterministic.
fn ann_candidate_clusters(
    matrix: &PerformanceMatrix,
    similarity: &SimilarityMatrix,
    representatives: &[ModelId],
    all_scored: &[usize],
    ann: &AnnConfig,
    rep_index: Option<&AnnRepIndex>,
    tel: &Telemetry,
) -> Result<Vec<usize>> {
    let width = ann.k.saturating_mul(ceil_log2(matrix.n_models()));
    tel.add("ann.k", ann.k as f64);
    tel.add("ann.log2_m", ceil_log2(matrix.n_models()) as f64);
    if all_scored.len() <= ann.seed_reps.saturating_add(width) {
        // The zoo is small enough that "sublinear" would cover everything;
        // score all clusters, exactly like the exhaustive path.
        tel.add("ann.seeds", all_scored.len() as f64);
        tel.add("ann.expanded", 0.0);
        tel.add("ann.candidates", all_scored.len() as f64);
        return Ok(all_scored.to_vec());
    }

    // Seeds: scored clusters whose representatives lead on benchmark
    // average accuracy (ties to the lower model id).
    let mut order: Vec<usize> = all_scored.to_vec();
    order.sort_by(|&a, &b| {
        matrix
            .avg_accuracy(representatives[b])
            .total_cmp(&matrix.avg_accuracy(representatives[a]))
            .then_with(|| representatives[a].cmp(&representatives[b]))
    });
    order.truncate(ann.seed_reps);
    let seeds = order;

    // Expand the index around the best seed's representative — before any
    // proxy call, so candidate choice stays independent of proxy quality.
    let built;
    let index = match rep_index {
        Some(idx) if idx.matches(all_scored) => idx,
        _ => {
            let sim_top_k = similarity.eq1_top_k().unwrap_or(5);
            built = AnnRepIndex::build(matrix, representatives, all_scored, sim_top_k, ann)?;
            &built
        }
    };
    let query = matrix.model_vector(representatives[seeds[0]]);
    let expanded = index.expand(&query, width, ann.ef_search);

    let mut candidates: Vec<usize> = seeds
        .iter()
        .copied()
        .chain(expanded.iter().copied())
        .collect();
    candidates.sort_unstable();
    candidates.dedup();
    tel.add("ann.seeds", seeds.len() as f64);
    tel.add("ann.expanded", expanded.len() as f64);
    tel.add("ann.candidates", candidates.len() as f64);
    Ok(candidates)
}

/// Proxy scores that survived the retry/quarantine pass, plus the cost and
/// casualty bookkeeping the pass produced. Shared with the sharded
/// scatter/gather recall in [`crate::shard`].
pub(crate) struct ResolvedScores {
    /// Clusters whose representative produced a usable raw score.
    pub(crate) clusters: Vec<usize>,
    /// The raw scores, aligned with `clusters`.
    pub(crate) raw: Vec<f64>,
    /// Representatives lost on the way.
    pub(crate) casualties: Vec<Casualty>,
    /// Total proxy-eval attempts, successful or not — the quantity the
    /// paper's `0.5 · |MC|` accounting is charged on.
    pub(crate) attempts: usize,
}

/// Walk the scored clusters in order, resolving each representative's proxy
/// score with bounded retries. `first` optionally carries an already-made
/// first attempt per cluster (the parallel fan-out); `None` entries are
/// attempted lazily, which preserves the serial entry point's
/// short-circuiting. Transient failures are re-attempted via `attempt` up
/// to `retry.max_attempts` total; permanent failures, exhausted retries,
/// and non-finite scores quarantine the representative (its cluster drops
/// to the Eq. 4 fallback). Fatal errors propagate unchanged.
pub(crate) fn resolve_scores(
    representatives: &[ModelId],
    scored_clusters: &[usize],
    first: Vec<Option<Result<f64>>>,
    attempt: &mut dyn FnMut(ModelId) -> Result<f64>,
    retry: RetryPolicy,
    tel: &Telemetry,
) -> Result<ResolvedScores> {
    let mut resolved = ResolvedScores {
        clusters: Vec::with_capacity(scored_clusters.len()),
        raw: Vec::with_capacity(scored_clusters.len()),
        casualties: Vec::new(),
        attempts: 0,
    };
    for (&c, pre) in scored_clusters.iter().zip(first) {
        let rep = representatives[c];
        let mut tries = 1u32;
        let mut outcome = pre.unwrap_or_else(|| attempt(rep));
        resolved.attempts += 1;
        let quarantined_by = loop {
            match outcome {
                Ok(v) if v.is_finite() => {
                    resolved.clusters.push(c);
                    resolved.raw.push(v);
                    break None;
                }
                Ok(v) => {
                    tel.add("fault.corrupt_value", 1.0);
                    break Some(SelectionError::permanent_fault(
                        "oracle.proxy",
                        rep.index(),
                        SelectionError::InvalidValue {
                            what: "proxy score",
                            value: v,
                        },
                    ));
                }
                Err(e) => match e.classify() {
                    FaultClass::Fatal => return Err(e),
                    FaultClass::Transient if tries < retry.max_attempts => {
                        tel.add("fault.transient", 1.0);
                        tel.add("retry.attempts", 1.0);
                        tries += 1;
                        resolved.attempts += 1;
                        outcome = attempt(rep);
                    }
                    FaultClass::Transient => {
                        tel.add("fault.transient", 1.0);
                        break Some(e);
                    }
                    FaultClass::Permanent => {
                        tel.add("fault.permanent", 1.0);
                        break Some(e);
                    }
                },
            }
        };
        if let Some(cause) = quarantined_by {
            let casualty = Casualty::new(rep, "recall", &cause);
            tel.casualty(&casualty);
            resolved.casualties.push(casualty);
        }
    }
    if resolved.clusters.is_empty() {
        return Err(SelectionError::Empty("surviving proxy-scored clusters"));
    }
    Ok(resolved)
}

/// Shared validation + representative/cluster bookkeeping for both recall
/// entry points.
pub(crate) fn prepare_recall(
    matrix: &PerformanceMatrix,
    clustering: &Clustering,
    similarity: &SimilarityMatrix,
    config: &RecallConfig,
) -> Result<(Vec<ModelId>, Vec<usize>)> {
    let n = matrix.n_models();
    if clustering.n_models() != n {
        return Err(SelectionError::DimensionMismatch {
            what: "clustering vs matrix models",
            expected: n,
            got: clustering.n_models(),
        });
    }
    if similarity.len() != n {
        return Err(SelectionError::DimensionMismatch {
            what: "similarity vs matrix models",
            expected: n,
            got: similarity.len(),
        });
    }
    if config.top_k == 0 {
        return Err(SelectionError::InvalidConfig("top_k must be >= 1".into()));
    }

    let representatives = clustering.representatives(matrix)?;
    Ok((representatives, scored_cluster_set(clustering)))
}

/// The clusters whose representatives recall proxy-scores: non-singleton
/// clusters, or — when the clustering is fully singleton (degenerate) —
/// every cluster, since otherwise no model could be ranked. Shared with
/// the offline build so the stored [`AnnRepIndex`] covers exactly this
/// set.
pub(crate) fn scored_cluster_set(clustering: &Clustering) -> Vec<usize> {
    let non_singleton = clustering.non_singleton_clusters();
    if non_singleton.is_empty() {
        (0..clustering.n_clusters()).collect()
    } else {
        non_singleton
    }
}

/// Eq. 3 / Eq. 4 recall score of a single model given the normalised proxy
/// scores of the surviving clusters. Extracted so the sharded gather in
/// [`crate::shard`] ranks each partition with exactly the same float
/// arithmetic as the unsharded path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn model_recall_score(
    matrix: &PerformanceMatrix,
    clustering: &Clustering,
    similarity: &SimilarityMatrix,
    representatives: &[ModelId],
    scored_clusters: &[usize],
    norm: &[f64],
    cluster_proxy: &[Option<f64>],
    m: ModelId,
) -> f64 {
    let acc = matrix.avg_accuracy(m);
    let c = clustering.cluster_of(m);
    match cluster_proxy[c] {
        // Eq. 3: member of a scored cluster.
        Some(p) => acc * p,
        // Eq. 4: propagate from scored representatives, decayed by
        // similarity.
        None => {
            let mut sum = 0.0;
            for (&k, &p) in scored_clusters.iter().zip(norm) {
                sum += similarity.similarity(m, representatives[k]) * p;
            }
            acc * sum / scored_clusters.len() as f64
        }
    }
}

/// Turn raw representative proxy scores into the final [`RecallOutcome`].
pub(crate) fn finish_recall(
    matrix: &PerformanceMatrix,
    clustering: &Clustering,
    similarity: &SimilarityMatrix,
    config: &RecallConfig,
    representatives: Vec<ModelId>,
    resolved: ResolvedScores,
) -> Result<RecallOutcome> {
    let ResolvedScores {
        clusters: scored_clusters,
        raw,
        casualties,
        attempts,
    } = resolved;
    let n = matrix.n_models();
    let norm = normalize_scores(&raw);
    let mut cluster_proxy: Vec<Option<f64>> = vec![None; clustering.n_clusters()];
    for (&c, &p) in scored_clusters.iter().zip(&norm) {
        cluster_proxy[c] = Some(p);
    }

    // Recall scores per model.
    let mut ranked: Vec<(ModelId, f64)> = Vec::with_capacity(n);
    for m in matrix.model_ids() {
        let score = model_recall_score(
            matrix,
            clustering,
            similarity,
            &representatives,
            &scored_clusters,
            &norm,
            &cluster_proxy,
            m,
        );
        ranked.push((m, score));
    }
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    let recalled = ranked
        .iter()
        .take(config.top_k.min(n))
        .map(|&(m, _)| m)
        .collect();

    Ok(RecallOutcome {
        ranked,
        recalled,
        cluster_proxy,
        representatives,
        proxy_epochs: config.proxy_epoch_cost * attempts as f64,
        casualties,
    })
}

/// Baseline for Fig. 5: recall `top_k` models uniformly at random.
pub fn random_recall<R: rand::Rng + ?Sized>(
    n_models: usize,
    top_k: usize,
    rng: &mut R,
) -> Vec<ModelId> {
    use rand::seq::SliceRandom;
    let mut ids: Vec<ModelId> = (0..n_models).map(ModelId::from).collect();
    ids.shuffle(rng);
    ids.truncate(top_k.min(n_models));
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 models, 2 datasets. Models 0,1 form a cluster; 2,3 are singletons.
    fn fixture() -> (PerformanceMatrix, Clustering, SimilarityMatrix) {
        let matrix = PerformanceMatrix::new(
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
            vec!["d0".into(), "d1".into()],
            vec![vec![0.9, 0.8, 0.5, 0.3], vec![0.9, 0.8, 0.5, 0.3]],
        )
        .unwrap();
        let clustering = Clustering::new(vec![0, 0, 1, 2]).unwrap();
        let similarity = SimilarityMatrix::from_performance(&matrix, 2).unwrap();
        (matrix, clustering, similarity)
    }

    #[test]
    fn scores_representative_once_per_non_singleton_cluster() {
        let (m, c, s) = fixture();
        let mut calls = Vec::new();
        let out = coarse_recall(&m, &c, &s, &RecallConfig::default(), |rep| {
            calls.push(rep);
            Ok(-0.5)
        })
        .unwrap();
        // Only cluster 0 is non-singleton; its representative is model 0
        // (highest avg accuracy).
        assert_eq!(calls, vec![ModelId(0)]);
        assert_eq!(out.representatives[0], ModelId(0));
        assert_eq!(out.proxy_epochs, 0.5);
        assert!(out.cluster_proxy[0].is_some());
        assert!(out.cluster_proxy[1].is_none());
    }

    #[test]
    fn eq3_and_eq4_combine_into_ranking() {
        let (m, c, s) = fixture();
        let out = coarse_recall(
            &m,
            &c,
            &s,
            &RecallConfig {
                top_k: 2,
                ..Default::default()
            },
            |_| Ok(-0.2),
        )
        .unwrap();
        // Single scored cluster -> its normalised proxy is 0.5 (constant
        // input convention). Cluster members score acc * 0.5; singletons
        // score acc * sim * 0.5, strictly less because sim < 1.
        assert_eq!(out.ranked[0].0, ModelId(0));
        assert_eq!(out.ranked[1].0, ModelId(1));
        assert_eq!(out.recalled, vec![ModelId(0), ModelId(1)]);
        // Singleton scores are positive but lower.
        let score_c = out
            .ranked
            .iter()
            .find(|&&(id, _)| id == ModelId(2))
            .unwrap()
            .1;
        assert!(score_c > 0.0 && score_c < out.ranked[1].1);
    }

    #[test]
    fn higher_proxy_cluster_wins() {
        // Two non-singleton clusters with equal accuracy; the one whose
        // representative scores better must rank first.
        let matrix = PerformanceMatrix::new(
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
            vec!["d0".into()],
            vec![vec![0.7, 0.7, 0.7, 0.7]],
        )
        .unwrap();
        let clustering = Clustering::new(vec![0, 0, 1, 1]).unwrap();
        let sim = SimilarityMatrix::from_performance(&matrix, 1).unwrap();
        let out = coarse_recall(
            &matrix,
            &clustering,
            &sim,
            &RecallConfig::default(),
            |rep| {
                Ok(if clustering.cluster_of(rep) == 1 {
                    -0.1
                } else {
                    -0.9
                })
            },
        )
        .unwrap();
        assert!(out.ranked[0].0.index() >= 2, "cluster 1 models should lead");
        assert_eq!(out.cluster_proxy[1], Some(1.0));
        assert_eq!(out.cluster_proxy[0], Some(0.0));
    }

    #[test]
    fn all_singletons_falls_back_to_scoring_everything() {
        let matrix = PerformanceMatrix::new(
            vec!["a".into(), "b".into()],
            vec!["d0".into()],
            vec![vec![0.9, 0.3]],
        )
        .unwrap();
        let clustering = Clustering::new(vec![0, 1]).unwrap();
        let sim = SimilarityMatrix::from_performance(&matrix, 1).unwrap();
        let mut calls = 0;
        let out = coarse_recall(&matrix, &clustering, &sim, &RecallConfig::default(), |_| {
            calls += 1;
            Ok(-0.3)
        })
        .unwrap();
        assert_eq!(calls, 2);
        assert_eq!(out.proxy_epochs, 1.0);
        assert_eq!(out.ranked[0].0, ModelId(0));
    }

    #[test]
    fn rank_of_reports_position() {
        let (m, c, s) = fixture();
        let out = coarse_recall(&m, &c, &s, &RecallConfig::default(), |_| Ok(-0.2)).unwrap();
        assert_eq!(out.rank_of(ModelId(0)), Some(0));
        assert_eq!(out.rank_of(ModelId(99)), None);
    }

    #[test]
    fn top_k_clamped_to_repository() {
        let (m, c, s) = fixture();
        let out = coarse_recall(
            &m,
            &c,
            &s,
            &RecallConfig {
                top_k: 100,
                ..Default::default()
            },
            |_| Ok(-0.2),
        )
        .unwrap();
        assert_eq!(out.recalled.len(), 4);
    }

    #[test]
    fn config_and_dimension_validation() {
        let (m, c, s) = fixture();
        assert!(coarse_recall(
            &m,
            &c,
            &s,
            &RecallConfig {
                top_k: 0,
                ..Default::default()
            },
            |_| Ok(0.0)
        )
        .is_err());
        let wrong = Clustering::new(vec![0, 0]).unwrap();
        assert!(coarse_recall(&m, &wrong, &s, &RecallConfig::default(), |_| Ok(0.0)).is_err());
    }

    #[test]
    fn proxy_errors_propagate() {
        let (m, c, s) = fixture();
        let err = coarse_recall(&m, &c, &s, &RecallConfig::default(), |_| {
            Err(SelectionError::Empty("proxy"))
        })
        .unwrap_err();
        assert_eq!(err, SelectionError::Empty("proxy"));
    }

    #[test]
    fn parallel_recall_matches_serial() {
        let (m, c, s) = fixture();
        let proxy = |rep: ModelId| Ok(-0.1 * (rep.index() as f64 + 1.0));
        let serial = coarse_recall(&m, &c, &s, &RecallConfig::default(), proxy).unwrap();
        for threads in [1, 2, 4] {
            let par =
                coarse_recall_par(&m, &c, &s, &RecallConfig::default(), threads, proxy).unwrap();
            assert_eq!(par, serial, "threads={threads}");
        }
        // Errors are deterministic too.
        let fail = |_| Err(SelectionError::Empty("proxy"));
        assert_eq!(
            coarse_recall_par(&m, &c, &s, &RecallConfig::default(), 4, fail).unwrap_err(),
            coarse_recall(&m, &c, &s, &RecallConfig::default(), fail).unwrap_err(),
        );
    }

    #[test]
    fn ann_exact_mode_is_byte_identical_to_legacy_path() {
        let (m, c, s) = fixture();
        let proxy = |rep: ModelId| Ok(-0.1 * (rep.index() as f64 + 1.0));
        let legacy = coarse_recall_par(&m, &c, &s, &RecallConfig::default(), 2, proxy).unwrap();
        let ann = coarse_recall_ann_traced(
            &m,
            &c,
            &s,
            &RecallConfig::default(),
            &AnnConfig::default(), // mode = Exact
            None,
            2,
            proxy,
            &Telemetry::disabled(),
        )
        .unwrap();
        assert_eq!(ann, legacy);
        assert_eq!(
            serde_json::to_string(&ann).unwrap(),
            serde_json::to_string(&legacy).unwrap()
        );
    }

    #[test]
    fn ann_indexed_mode_small_world_scores_everything() {
        // Fewer scored clusters than seeds + width: indexed recall must
        // collapse to the exhaustive candidate set and match it exactly.
        let (m, c, s) = fixture();
        let proxy = |rep: ModelId| Ok(-0.1 * (rep.index() as f64 + 1.0));
        let exact = coarse_recall_par(&m, &c, &s, &RecallConfig::default(), 1, proxy).unwrap();
        let cfg = AnnConfig {
            mode: AnnMode::Indexed,
            ..AnnConfig::default()
        };
        let indexed = coarse_recall_ann_traced(
            &m,
            &c,
            &s,
            &RecallConfig::default(),
            &cfg,
            None,
            1,
            proxy,
            &Telemetry::disabled(),
        )
        .unwrap();
        assert_eq!(indexed, exact);
    }

    #[test]
    fn ann_indexed_mode_bounds_proxy_fanout() {
        // 60 clusters of 2 models each; indexed recall must proxy-score at
        // most seed_reps + k·⌈log₂ M⌉ representatives, not all 60.
        let n = 120usize;
        let names: Vec<String> = (0..n).map(|i| format!("m{i}")).collect();
        let rows: Vec<Vec<f64>> = (0..3)
            .map(|d| {
                (0..n)
                    .map(|i| (((i / 2) * 17 + d * 5) % 97) as f64 / 97.0)
                    .collect()
            })
            .collect();
        let matrix =
            PerformanceMatrix::new(names, (0..3).map(|d| format!("d{d}")).collect(), rows).unwrap();
        let clustering = Clustering::new((0..n).map(|i| i / 2).collect()).unwrap();
        let similarity = SimilarityMatrix::lazy_from_performance(&matrix, 2).unwrap();
        let cfg = AnnConfig {
            mode: AnnMode::Indexed,
            k: 2,
            seed_reps: 3,
            ..AnnConfig::default()
        };
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let out = coarse_recall_ann_traced(
            &matrix,
            &clustering,
            &similarity,
            &RecallConfig::default(),
            &cfg,
            None,
            1,
            |rep| {
                calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                Ok(-0.1 * (rep.index() as f64 + 1.0))
            },
            &Telemetry::disabled(),
        )
        .unwrap();
        let bound = cfg.seed_reps + cfg.k * super::ceil_log2(n);
        let scored = calls.load(std::sync::atomic::Ordering::SeqCst);
        assert!(scored <= bound, "scored {scored} > bound {bound}");
        assert!(scored < 60, "fan-out was not reduced");
        // Every model still gets ranked (Eq. 4 covers unscored clusters).
        assert_eq!(out.ranked.len(), n);
        // Deterministic across repeat runs and thread counts.
        let again = coarse_recall_ann_traced(
            &matrix,
            &clustering,
            &similarity,
            &RecallConfig::default(),
            &cfg,
            None,
            4,
            |rep| Ok(-0.1 * (rep.index() as f64 + 1.0)),
            &Telemetry::disabled(),
        )
        .unwrap();
        assert_eq!(out, again);
    }

    #[test]
    fn ceil_log2_scale_term() {
        assert_eq!(ceil_log2(0), 1);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn random_recall_returns_distinct_models() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let picked = random_recall(10, 4, &mut rng);
        assert_eq!(picked.len(), 4);
        let mut sorted = picked.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
        assert_eq!(random_recall(3, 10, &mut rng).len(), 3);
    }
}
