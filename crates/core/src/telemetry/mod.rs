//! Structured telemetry for the two-phase pipeline: span timers + named
//! counters behind a [`TelemetrySink`] trait.
//!
//! The paper's headline claim (~3× faster than successive halving, Table
//! V/VI) is an accounting statement: so many proxy evaluations in
//! coarse-recall, so many epochs of fine-tuning per halving stage, so many
//! models filtered by Eq. 5/6 at each stage. This module makes those
//! quantities observable on every run instead of recomputable only in the
//! experiment harness:
//!
//! * **Spans** — named, nested wall-clock timers (`offline.build`,
//!   `pipeline.two_phase_select`, one `select.stage` per fine-selection
//!   stage, …). Spans are opened/closed by the *orchestrating* serial code
//!   only, so the span stack is always well-formed; parallel workers never
//!   open spans.
//! * **Counters** — named monotone accumulators (`recall.proxy_evals`,
//!   `fine.stage3.survivors`, `select.train_epochs`, …). Counters may be
//!   recorded from any thread; every instrumented call site adds
//!   deterministic, integral values, so serial and parallel runs produce
//!   **identical** counter maps (only span durations are machine- and
//!   thread-dependent).
//!
//! The [`Telemetry`] handle is the unit passed through the pipeline. Its
//! default is *disabled*: no sink, no clock reads, no allocation — every
//! instrumentation point is a branch on an `Option` that the optimiser
//! hoists, so the hot paths benchmarked in `BENCH_parallel.json` are
//! unaffected when tracing is off.
//!
//! * **Histograms** — fixed-bucket distributions ([`metrics`]) recorded
//!   via [`Telemetry::observe`]. Bucket bounds come from a static spec
//!   table, so bucket *counts* are as deterministic as the observed
//!   values: histograms over deterministic quantities (pool widths,
//!   proxy costs) are serial≡parallel identical, while wall-clock
//!   histograms (unit `"us"`) are summary-only and excluded from
//!   cross-run comparisons.
//!
//! [`RecordingSink`] is the bundled in-memory implementation; it renders a
//! serializable [`TraceReport`] (the `--trace-out` JSON of the CLI).
//!
//! Companion submodules build the analysis layer on top of the report:
//! [`metrics`] (histogram specs + registry), [`analysis`] (summaries and
//! trace diffs), [`budget`] (declarative cost invariants from
//! `budgets.toml`), [`openmetrics`] (Prometheus/OpenMetrics text
//! exposition), and [`toml_lite`] (the dependency-free TOML subset parser
//! behind the budget schema).
//!
//! ```
//! use tps_core::telemetry::Telemetry;
//!
//! let (tel, sink) = Telemetry::recording();
//! {
//!     let _span = tel.span("offline.build");
//!     tel.add("offline.models", 40.0);
//! }
//! let report = sink.report();
//! assert_eq!(report.counter("offline.models"), Some(40.0));
//! assert_eq!(report.spans[0].name, "offline.build");
//! ```

pub mod analysis;
pub mod budget;
pub mod metrics;
pub mod openmetrics;
pub mod toml_lite;

use crate::fault::Casualty;
use metrics::{HistogramSnapshot, MetricsRegistry};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Version stamp written into every [`TraceReport`], so downstream tooling
/// can detect schema changes. Version 2 added `histograms` and
/// `completed`; version-1 traces deserialize with empty histograms and
/// `completed == true`. Version 3 added `casualties` (models quarantined by
/// the fault/resilience layer); version-2 traces deserialize with an empty
/// casualty list.
pub const TRACE_SCHEMA_VERSION: u32 = 3;

/// Receives telemetry events. Implementations must be thread-safe:
/// counters can be recorded from parallel workers (spans cannot — they are
/// only ever opened/closed by the orchestrating thread).
pub trait TelemetrySink: Send + Sync {
    /// A span named `name` opened; the returned token is passed back to
    /// [`span_exit`](Self::span_exit) when it closes.
    fn span_enter(&self, name: &'static str) -> u64;

    /// The span identified by `token` closed.
    fn span_exit(&self, token: u64);

    /// Add `value` to the counter named `name` (creating it at 0 first).
    fn add(&self, name: &str, value: f64);

    /// Record one observation of `value` into the histogram named `name`
    /// (bucket layout chosen by [`metrics::spec_for`]). Default is a
    /// no-op so pre-existing sinks keep compiling.
    fn observe(&self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Record a model quarantined by the resilience layer. Default is a
    /// no-op so pre-existing sinks keep compiling.
    fn casualty(&self, casualty: &Casualty) {
        let _ = casualty;
    }
}

/// Cheap, clonable handle threaded through the pipeline. Disabled by
/// default ([`Telemetry::disabled`]); every operation on a disabled handle
/// is a no-op that never reads the clock or allocates.
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<dyn TelemetrySink>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.sink.is_some() {
            "Telemetry(enabled)"
        } else {
            "Telemetry(disabled)"
        })
    }
}

impl Telemetry {
    /// The no-op handle — what every un-instrumented entry point uses.
    pub fn disabled() -> Self {
        Self { sink: None }
    }

    /// A handle feeding `sink`.
    pub fn with_sink(sink: Arc<dyn TelemetrySink>) -> Self {
        Self { sink: Some(sink) }
    }

    /// Convenience: a handle backed by a fresh [`RecordingSink`], returned
    /// alongside it for later [`RecordingSink::report`] calls.
    pub fn recording() -> (Self, Arc<RecordingSink>) {
        let sink = Arc::new(RecordingSink::default());
        (Self::with_sink(sink.clone()), sink)
    }

    /// Whether a sink is attached. Call sites use this to skip building
    /// counter names (the only allocation instrumentation could cause).
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Open a span; it closes when the returned guard drops.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span {
            active: self
                .sink
                .as_deref()
                .map(|sink| (sink, sink.span_enter(name))),
        }
    }

    /// Add `value` to the named counter.
    pub fn add(&self, name: &str, value: f64) {
        if let Some(sink) = self.sink.as_deref() {
            sink.add(name, value);
        }
    }

    /// Increment the named counter by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1.0);
    }

    /// Record one histogram observation. Like counters, observations of
    /// deterministic quantities must be made from the orchestrating
    /// thread (or bulk-recorded) so bucket counts stay serial≡parallel
    /// identical; wall-clock observations should use a `*_us` name so
    /// they are tagged as summary-only.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(sink) = self.sink.as_deref() {
            sink.observe(name, value);
        }
    }

    /// Add to a per-stage counter `"{prefix}.stage{stage}.{suffix}"`. The
    /// name is only formatted when a sink is attached.
    pub fn add_stage(&self, prefix: &str, stage: usize, suffix: &str, value: f64) {
        if let Some(sink) = self.sink.as_deref() {
            sink.add(&stage_counter(prefix, stage, suffix), value);
        }
    }

    /// Record a quarantined model on the trace.
    pub fn casualty(&self, casualty: &Casualty) {
        if let Some(sink) = self.sink.as_deref() {
            sink.casualty(casualty);
        }
    }
}

/// Build the canonical per-stage counter name
/// (`"{prefix}.stage{stage}.{suffix}"`) — shared by instrumentation and by
/// tests asserting on recorded values.
pub fn stage_counter(prefix: &str, stage: usize, suffix: &str) -> String {
    format!("{prefix}.stage{stage}.{suffix}")
}

/// RAII guard returned by [`Telemetry::span`]; closes the span on drop.
#[must_use = "a span closes when this guard drops"]
pub struct Span<'t> {
    active: Option<(&'t dyn TelemetrySink, u64)>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((sink, token)) = self.active.take() {
            sink.span_exit(token);
        }
    }
}

/// One finished span: its name, wall-clock duration, and nested children
/// in open order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span name (e.g. `select.stage`).
    pub name: String,
    /// Wall-clock duration in microseconds.
    pub elapsed_us: u64,
    /// Spans opened (and closed) while this one was open.
    pub children: Vec<SpanRecord>,
}

impl SpanRecord {
    /// Depth-first search for the first span named `name` (self included).
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// All spans named `name` in this subtree, depth-first.
    fn collect_named<'a>(&'a self, name: &str, out: &mut Vec<&'a SpanRecord>) {
        if self.name == name {
            out.push(self);
        }
        for c in &self.children {
            c.collect_named(name, out);
        }
    }
}

fn default_completed() -> bool {
    true
}

/// A fully-rendered trace: the JSON written by `--trace-out`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceReport {
    /// Schema version ([`TRACE_SCHEMA_VERSION`]).
    pub version: u32,
    /// Completed root spans, in open order.
    pub spans: Vec<SpanRecord>,
    /// Final counter values, sorted by name.
    pub counters: BTreeMap<String, f64>,
    /// Final histogram snapshots, sorted by name. Empty for version-1
    /// traces.
    #[serde(default)]
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// `false` when the traced pipeline errored out and the trace was
    /// flushed partially (`--trace-out` error path); version-1 traces
    /// default to `true`.
    #[serde(default = "default_completed")]
    pub completed: bool,
    /// Models quarantined by the fault/resilience layer, in the order they
    /// were lost. Empty on fault-free runs and for pre-version-3 traces.
    #[serde(default)]
    pub casualties: Vec<Casualty>,
}

impl TraceReport {
    /// An empty completed report at the current schema version —
    /// convenient for tests and fixtures.
    pub fn empty() -> Self {
        TraceReport {
            version: TRACE_SCHEMA_VERSION,
            spans: Vec::new(),
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            completed: true,
            casualties: Vec::new(),
        }
    }

    /// Value of a counter, if it was ever recorded.
    pub fn counter(&self, name: &str) -> Option<f64> {
        self.counters.get(name).copied()
    }

    /// First span named `name`, searching all roots depth-first.
    pub fn find_span(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find_map(|s| s.find(name))
    }

    /// Every span named `name`, depth-first across all roots.
    pub fn spans_named(&self, name: &str) -> Vec<&SpanRecord> {
        let mut out = Vec::new();
        for s in &self.spans {
            s.collect_named(name, &mut out);
        }
        out
    }

    /// Fold `other` into `self` as one nested sub-trace: `other`'s root
    /// spans become the children of a new root span named `root` (with the
    /// caller-measured `elapsed_us`), counters are summed, histograms are
    /// merged bucket-wise ([`HistogramSnapshot::merge`]), casualties are
    /// appended, and `completed` stays true only if both sides completed.
    /// This is how a resident service rolls per-request traces up into the
    /// single aggregate report it flushes at drain.
    pub fn absorb(&mut self, root: impl Into<String>, elapsed_us: u64, other: TraceReport) {
        self.spans.push(SpanRecord {
            name: root.into(),
            elapsed_us,
            children: other.spans,
        });
        for (name, value) in other.counters {
            *self.counters.entry(name).or_insert(0.0) += value;
        }
        for (name, snapshot) in other.histograms {
            match self.histograms.entry(name) {
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    slot.get_mut().merge(&snapshot)
                }
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(snapshot);
                }
            }
        }
        self.casualties.extend(other.casualties);
        self.completed &= other.completed;
    }

    /// The histograms whose values are deterministic (everything except
    /// wall-clock, see [`HistogramSnapshot::is_wall_clock`]) — the subset
    /// that drift gates and serial≡parallel comparisons may assert on.
    pub fn deterministic_histograms(&self) -> BTreeMap<String, HistogramSnapshot> {
        self.histograms
            .iter()
            .filter(|(_, h)| !h.is_wall_clock())
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

/// An open span inside [`RecordingSink`].
struct OpenSpan {
    token: u64,
    name: &'static str,
    started: Instant,
    children: Vec<SpanRecord>,
}

#[derive(Default)]
struct RecordingState {
    stack: Vec<OpenSpan>,
    roots: Vec<SpanRecord>,
    counters: BTreeMap<String, f64>,
    metrics: MetricsRegistry,
    casualties: Vec<Casualty>,
    next_token: u64,
}

impl RecordingState {
    /// Close the top of the span stack, attaching the finished record to
    /// its parent (or the roots).
    fn close_top(&mut self) {
        let top = self.stack.pop().expect("caller checked non-empty");
        let record = SpanRecord {
            name: top.name.to_string(),
            elapsed_us: top.started.elapsed().as_micros() as u64,
            children: top.children,
        };
        match self.stack.last_mut() {
            Some(parent) => parent.children.push(record),
            None => self.roots.push(record),
        }
    }
}

/// In-memory [`TelemetrySink`]: accumulates a span tree + counter map
/// behind a mutex and renders them as a [`TraceReport`].
#[derive(Default)]
pub struct RecordingSink {
    state: Mutex<RecordingState>,
}

impl RecordingSink {
    /// Snapshot the trace collected so far. Open spans are not included —
    /// take the report after the traced work finished (all guards dropped).
    pub fn report(&self) -> TraceReport {
        let state = self.state.lock();
        TraceReport {
            version: TRACE_SCHEMA_VERSION,
            spans: state.roots.clone(),
            counters: state.counters.clone(),
            histograms: state.metrics.snapshots(),
            completed: true,
            casualties: state.casualties.clone(),
        }
    }
}

impl TelemetrySink for RecordingSink {
    fn span_enter(&self, name: &'static str) -> u64 {
        let mut state = self.state.lock();
        let token = state.next_token;
        state.next_token += 1;
        state.stack.push(OpenSpan {
            token,
            name,
            started: Instant::now(),
            children: Vec::new(),
        });
        token
    }

    fn span_exit(&self, token: u64) {
        let mut state = self.state.lock();
        // Guards drop LIFO, so the token is normally on top; if a guard
        // leaked (e.g. an early `?` return skipped a child's drop glue —
        // impossible with RAII, but stay lenient), close intermediates too.
        while state.stack.iter().any(|s| s.token == token) {
            let done = state.stack.last().expect("token is in the stack").token == token;
            state.close_top();
            if done {
                break;
            }
        }
    }

    fn add(&self, name: &str, value: f64) {
        let mut state = self.state.lock();
        *state.counters.entry(name.to_string()).or_insert(0.0) += value;
    }

    fn observe(&self, name: &str, value: f64) {
        self.state.lock().metrics.observe(name, value);
    }

    fn casualty(&self, casualty: &Casualty) {
        self.state.lock().casualties.push(casualty.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.enabled());
        let _span = tel.span("anything");
        tel.add("counter", 1.0);
        tel.incr("counter");
        tel.add_stage("fine", 0, "pool", 10.0);
        // Nothing to observe — the point is that none of the above panics
        // or allocates a sink.
        assert_eq!(format!("{tel:?}"), "Telemetry(disabled)");
    }

    #[test]
    fn counters_accumulate() {
        let (tel, sink) = Telemetry::recording();
        tel.add("a", 2.0);
        tel.incr("a");
        tel.add_stage("fine", 3, "survivors", 4.0);
        let report = sink.report();
        assert_eq!(report.counter("a"), Some(3.0));
        assert_eq!(report.counter("fine.stage3.survivors"), Some(4.0));
        assert_eq!(report.counter("missing"), None);
    }

    #[test]
    fn spans_nest_in_open_order() {
        let (tel, sink) = Telemetry::recording();
        {
            let _outer = tel.span("outer");
            {
                let _a = tel.span("child-a");
            }
            {
                let _b = tel.span("child-b");
            }
        }
        let _second_root = tel.span("root-2");
        drop(_second_root);
        let report = sink.report();
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report.spans[0].name, "outer");
        let children: Vec<&str> = report.spans[0]
            .children
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(children, vec!["child-a", "child-b"]);
        assert_eq!(report.spans[1].name, "root-2");
        assert!(report.find_span("child-b").is_some());
        assert_eq!(report.spans_named("child-a").len(), 1);
    }

    #[test]
    fn open_spans_are_excluded_from_reports() {
        let (tel, sink) = Telemetry::recording();
        let _open = tel.span("still-open");
        assert!(sink.report().spans.is_empty());
        drop(_open);
        assert_eq!(sink.report().spans.len(), 1);
    }

    #[test]
    fn out_of_order_exit_closes_intermediates() {
        let sink = RecordingSink::default();
        let outer = sink.span_enter("outer");
        let _inner = sink.span_enter("inner");
        // Exit the outer token first: the inner span is closed on the way.
        sink.span_exit(outer);
        let report = sink.report();
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].name, "outer");
        assert_eq!(report.spans[0].children[0].name, "inner");
        // Exiting a token that no longer exists is a no-op.
        sink.span_exit(outer);
        assert_eq!(sink.report().spans.len(), 1);
    }

    #[test]
    fn counters_are_thread_safe() {
        let sink = Arc::new(RecordingSink::default());
        let tel = Telemetry::with_sink(sink.clone());
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                let tel = tel.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        tel.incr("hits");
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(sink.report().counter("hits"), Some(400.0));
    }

    #[test]
    fn report_round_trips_serde() {
        let (tel, sink) = Telemetry::recording();
        {
            let _s = tel.span("root");
            tel.add("k", 1.5);
        }
        let report = sink.report();
        let json = serde_json::to_string(&report).unwrap();
        let back: TraceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.version, TRACE_SCHEMA_VERSION);
    }

    #[test]
    fn stage_counter_name_is_canonical() {
        assert_eq!(stage_counter("fine", 2, "pool"), "fine.stage2.pool");
    }

    #[test]
    fn observe_records_histograms_and_disabled_is_inert() {
        let tel = Telemetry::disabled();
        tel.observe("select.stage_train_us", 123.0); // no-op, no panic
        let (tel, sink) = Telemetry::recording();
        tel.observe("recall.fanout_width", 8.0);
        tel.observe("recall.fanout_width", 9.0);
        let report = sink.report();
        let h = &report.histograms["recall.fanout_width"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 17.0);
        assert_eq!(h.counts.iter().sum::<u64>(), 2);
        assert!(!h.is_wall_clock());
    }

    #[test]
    fn version1_trace_json_deserializes_with_defaults() {
        // A trace written before histograms/completed existed.
        let json = r#"{"version":1,"spans":[],"counters":{"a":1.0}}"#;
        let report: TraceReport = serde_json::from_str(json).unwrap();
        assert!(report.completed);
        assert!(report.histograms.is_empty());
        assert!(report.casualties.is_empty());
        assert_eq!(report.counter("a"), Some(1.0));
    }

    #[test]
    fn version2_trace_json_deserializes_with_empty_casualties() {
        // A trace written before the fault layer existed.
        let json =
            r#"{"version":2,"spans":[],"counters":{"a":1.0},"histograms":{},"completed":false}"#;
        let report: TraceReport = serde_json::from_str(json).unwrap();
        assert!(!report.completed);
        assert!(report.casualties.is_empty());
        assert_eq!(report.counter("a"), Some(1.0));
    }

    #[test]
    fn casualties_record_in_loss_order_and_round_trip() {
        use crate::ids::ModelId;
        let (tel, sink) = Telemetry::recording();
        Telemetry::disabled().casualty(&Casualty {
            model: ModelId(9),
            stage: "nowhere".into(),
            cause: "ignored".into(),
        }); // disabled handle: no-op
        tel.casualty(&Casualty {
            model: ModelId(3),
            stage: "recall".into(),
            cause: "permanent substrate failure".into(),
        });
        tel.casualty(&Casualty {
            model: ModelId(1),
            stage: "fine.stage2".into(),
            cause: "retries exhausted".into(),
        });
        let report = sink.report();
        assert_eq!(report.casualties.len(), 2);
        assert_eq!(report.casualties[0].model, ModelId(3));
        assert_eq!(report.casualties[1].stage, "fine.stage2");
        let json = serde_json::to_string(&report).unwrap();
        let back: TraceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn find_prefers_shallowest_first_in_depth_first_order() {
        // Duplicate span names at different depths: `find` returns the
        // first in depth-first order; `spans_named` returns all of them.
        let (tel, sink) = Telemetry::recording();
        {
            let _outer = tel.span("stage");
            {
                let _inner = tel.span("stage");
            }
        }
        {
            let _second = tel.span("stage");
        }
        let report = sink.report();
        assert_eq!(report.spans.len(), 2);
        let found = report.find_span("stage").unwrap();
        assert_eq!(found.children.len(), 1, "dfs hits the first root first");
        assert_eq!(report.spans_named("stage").len(), 3);
        // SpanRecord::find on the root also sees its nested duplicate.
        assert!(report.spans[0].find("stage").is_some());
        assert_eq!(
            report.spans[0].children[0].find("stage").unwrap().name,
            "stage"
        );
    }

    #[test]
    fn empty_report_lookups_are_total() {
        let report = TraceReport::empty();
        assert_eq!(report.counter("anything"), None);
        assert!(report.find_span("anything").is_none());
        assert!(report.spans_named("anything").is_empty());
        assert!(report.deterministic_histograms().is_empty());
        assert!(report.completed);
    }

    #[test]
    fn deterministic_histograms_exclude_wall_clock() {
        let (tel, sink) = Telemetry::recording();
        tel.observe("select.stage_train_us", 1500.0);
        tel.observe("fine.stage_pool_width", 10.0);
        let report = sink.report();
        assert_eq!(report.histograms.len(), 2);
        let det = report.deterministic_histograms();
        assert_eq!(det.len(), 1);
        assert!(det.contains_key("fine.stage_pool_width"));
    }

    #[test]
    fn absorb_nests_spans_and_sums_counters() {
        let mut agg = TraceReport::empty();
        for round in 0..2u64 {
            let (tel, sink) = Telemetry::recording();
            {
                let _span = tel.span("two_phase_select");
                tel.add("recall.proxy_epochs", 2.5);
                tel.observe("fine.stage_pool_width", 10.0);
            }
            agg.absorb("serve.request", 40 + round, sink.report());
        }
        assert_eq!(agg.spans.len(), 2);
        assert_eq!(agg.spans[0].name, "serve.request");
        assert_eq!(agg.spans[0].elapsed_us, 40);
        assert_eq!(agg.spans[0].children[0].name, "two_phase_select");
        assert_eq!(agg.counter("recall.proxy_epochs"), Some(5.0));
        let hist = &agg.histograms["fine.stage_pool_width"];
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 20.0);
        assert_eq!(hist.counts.iter().sum::<u64>(), hist.count);
        assert!(agg.completed);
        // An incomplete sub-trace poisons the aggregate's completed flag.
        let mut partial = TraceReport::empty();
        partial.completed = false;
        agg.absorb("serve.request", 1, partial);
        assert!(!agg.completed);
    }

    #[test]
    fn histogram_merge_mismatched_layout_keeps_invariants() {
        let (tel, sink) = Telemetry::recording();
        tel.observe("fine.stage_pool_width", 3.0);
        let mut a = sink.report().histograms["fine.stage_pool_width"].clone();
        let mut b = a.clone();
        b.unit = "other".into();
        b.count = 4;
        b.sum = 12.0;
        a.merge(&b);
        assert_eq!(a.count, 5);
        assert_eq!(a.sum, 15.0);
        assert_eq!(a.counts.iter().sum::<u64>(), a.count);
    }
}
